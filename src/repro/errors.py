"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-types exist for the
three broad failure domains: machine/hardware-model configuration,
workload definition, and experiment execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MachineConfigError(ReproError):
    """An invalid hardware-model configuration (cache geometry, MSR use,
    core-binding conflicts, bandwidth parameters out of range)."""


class WorkloadError(ReproError):
    """An invalid workload definition or workload-registry lookup failure."""


class TraceError(ReproError):
    """A malformed access trace or trace-generator misuse."""


class EngineError(ReproError):
    """Failure inside the interval/co-run simulation engine, e.g. a
    fixed-point iteration that does not converge."""


class ExperimentError(ReproError):
    """Failure while assembling or running a paper experiment."""


class ScenarioError(ExperimentError):
    """An invalid consolidation scenario: bad placement spec, unknown
    LLC policy, or an identity request for an uncacheable scenario."""


class SchedError(ExperimentError):
    """An invalid scheduling request: malformed arrival trace, unknown
    placement policy, a tenant that fits no machine shape, or a cluster
    description that does not round-trip."""


class TrafficError(ExperimentError):
    """An invalid traffic-generator request: a malformed diurnal curve
    or workload mix, a traffic-model file that does not round-trip, or
    a model whose knobs generate no arrivals at all."""


class ServeError(ExperimentError):
    """A scheduler-service problem: a malformed API request or
    response, a daemon that cannot bind or is shutting down, or a
    client that cannot reach one."""


class StoreError(ReproError):
    """A persistent result-store problem: incompatible on-disk schema,
    unreadable record, or a lookup that cannot be satisfied."""


class CampaignError(StoreError):
    """A multi-process campaign problem: bad shard spec, a worker that
    died mid-campaign, or artifacts missing from the shared store when
    the manifest is frozen."""


class StoreWarning(UserWarning):
    """Non-fatal store condition worth surfacing: e.g. index lines from
    a different schema version being skipped by a reader."""
