"""Workload abstractions shared by every application model.

Two views of a workload coexist:

* the **kernel** view (:class:`Workload`) — a real, runnable algorithm
  (PageRank, Black-Scholes, an LSTM step...) that can both compute a
  checkable result and emit the memory-access trace of its execution;
* the **profile** view (:class:`WorkloadProfile`) — the analytic
  description the interval engine consumes: ordered phases (one per
  code region) with core IPC, L2 miss rate, an LLC miss-ratio curve,
  prefetchable regularity and memory-level parallelism, plus a thread-
  scaling law.

Profiles can be *derived* from kernels by the trace profiler
(:mod:`repro.trace.profiler`) or supplied by the calibration tables
(:mod:`repro.workloads.calibration`), which anchor the solo-run
characteristics to the paper's own measurements (Figs 2–4).

The key modelling assumption is the paper's own (Section VI-A): with
private per-core L1/L2 and exclusive core bindings, the *L2 miss count
per instruction is fixed* for a given thread count regardless of
co-runners; only what happens beyond L2 (LLC share, bus queueing) is
interference-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import WorkloadError
from repro.trace.mrc import MissRatioCurve
from repro.trace.stream import TraceSource
from repro.units import MiB


@dataclass(frozen=True)
class CodeRegion:
    """A source region events are attributed to (the paper's hotspot
    granularity, e.g. ``pagerank.c:63-70`` for G-PR's edge loop)."""

    name: str
    file: str
    line_lo: int
    line_hi: int

    def __post_init__(self) -> None:
        if self.line_lo <= 0 or self.line_hi < self.line_lo:
            raise WorkloadError(f"bad line span in region {self.name}")

    @property
    def label(self) -> str:
        """Compact ``file:lo-hi`` label used in reports (Fig 7's x-axis)."""
        return f"{self.file}:{self.line_lo}-{self.line_hi}"


@dataclass(frozen=True)
class RegionProfile:
    """Analytic description of one execution phase / code region.

    Attributes:
        region: Source region for attribution.
        weight: Fraction of the workload's dynamic instructions spent
            here; weights across a profile sum to 1.
        ipc_core: Core IPC assuming all memory references are served by
            the private L1/L2 (no >L2 stalls).
        l2_mpki: Demand misses past the private L2, per kilo-instruction
            (fixed w.r.t. interference; see module docstring).
        mrc: LLC miss ratio of that L2-miss traffic as a function of the
            LLC capacity the phase effectively owns.
        regularity: Fraction of the L2-miss traffic that is sequential/
            strided enough for the prefetchers to cover, in [0, 1].
        mlp: Memory-level parallelism — outstanding-miss overlap divisor
            applied to memory stall time (>= 1; pointer chases ~1).
        write_fraction: Writeback bytes per miss byte (dirty-line ratio).
        footprint_bytes: LLC capacity beyond which this phase cannot use
            more space; also caps its occupancy in the sharing model
            (Bandit's defining property is a tiny footprint).
        serial: True if the phase runs single-threaded regardless of the
            configured thread count (AMG2006's two setup phases).
        bw_efficiency: Fraction of the machine's practical peak this
            phase's access pattern can extract at saturation.  STREAM's
            four unit-stride streams define 1.0; many-stream read-write
            patterns (fotonik3d, IRSmk) lose DRAM row-buffer locality
            and bus turnaround and cap out lower — this is why their
            Fig 2 curves flatten harder than a pure roofline predicts.
    """

    region: CodeRegion
    weight: float
    ipc_core: float
    l2_mpki: float
    mrc: MissRatioCurve
    regularity: float
    mlp: float = 2.0
    write_fraction: float = 0.3
    footprint_bytes: float = 8 * MiB
    serial: bool = False
    bw_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not (0 < self.weight <= 1):
            raise WorkloadError(f"{self.region.name}: weight must be in (0, 1]")
        if self.ipc_core <= 0:
            raise WorkloadError(f"{self.region.name}: ipc_core must be positive")
        if self.l2_mpki < 0:
            raise WorkloadError(f"{self.region.name}: l2_mpki must be >= 0")
        if not (0 <= self.regularity <= 1):
            raise WorkloadError(f"{self.region.name}: regularity must be in [0, 1]")
        if self.mlp < 1:
            raise WorkloadError(f"{self.region.name}: mlp must be >= 1")
        if self.write_fraction < 0:
            raise WorkloadError(f"{self.region.name}: write_fraction must be >= 0")
        if self.footprint_bytes <= 0:
            raise WorkloadError(f"{self.region.name}: footprint must be positive")
        if not (0 < self.bw_efficiency <= 1):
            raise WorkloadError(
                f"{self.region.name}: bw_efficiency must be in (0, 1]"
            )


@dataclass(frozen=True)
class ScalingModel:
    """Thread-scaling law beyond the bandwidth effects the engine
    already models mechanistically.

    * synchronization: added CPI ``sync_cpi_coeff * (t-1)**sync_cpi_exp``
      (ATIS's barrier spin dominates above 2 threads);
    * algorithmic work inflation: total instructions multiplied by
      ``1 + work_inflation_coeff * (t-1)**work_inflation_exp``
      (P-SSSP's identical-weight redundant relaxations).
    """

    sync_cpi_coeff: float = 0.0
    sync_cpi_exp: float = 1.0
    work_inflation_coeff: float = 0.0
    work_inflation_exp: float = 1.0

    def __post_init__(self) -> None:
        if self.sync_cpi_coeff < 0 or self.work_inflation_coeff < 0:
            raise WorkloadError("scaling coefficients must be >= 0")

    def sync_cpi(self, threads: int) -> float:
        """Extra cycles-per-instruction from synchronization at ``threads``."""
        if threads <= 1:
            return 0.0
        return self.sync_cpi_coeff * (threads - 1) ** self.sync_cpi_exp

    def work_factor(self, threads: int) -> float:
        """Total-work multiplier at ``threads`` (1.0 at one thread)."""
        if threads <= 1:
            return 1.0
        return 1.0 + self.work_inflation_coeff * (threads - 1) ** self.work_inflation_exp


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the interval engine needs to simulate one application."""

    name: str
    suite: str
    #: Total dynamic kilo-instructions of one run (single-thread work).
    total_kinstr: float
    regions: tuple[RegionProfile, ...]
    scaling: ScalingModel = field(default_factory=ScalingModel)
    #: Region that receives synchronization cycles (ATIS's
    #: kmp_hyper_barrier_release); None attributes them to the phase
    #: that incurred them.
    sync_region_name: str | None = None

    def __post_init__(self) -> None:
        if self.total_kinstr <= 0:
            raise WorkloadError(f"{self.name}: total_kinstr must be positive")
        if not self.regions:
            raise WorkloadError(f"{self.name}: needs at least one region")
        total_weight = sum(r.weight for r in self.regions)
        if abs(total_weight - 1.0) > 1e-6:
            raise WorkloadError(
                f"{self.name}: region weights sum to {total_weight}, expected 1.0"
            )
        names = [r.region.name for r in self.regions]
        if len(set(names)) != len(names):
            raise WorkloadError(f"{self.name}: duplicate region names {names}")

    def region_by_name(self, name: str) -> RegionProfile:
        """Look up a phase by its region name."""
        for r in self.regions:
            if r.region.name == name:
                return r
        raise WorkloadError(f"{self.name}: no region named {name!r}")

    @property
    def dominant_region(self) -> RegionProfile:
        """The phase with the largest instruction share (hotspot)."""
        return max(self.regions, key=lambda r: r.weight)


class Workload(Protocol):
    """Kernel-side protocol every application model implements.

    ``run()`` executes the real algorithm and returns a result the test
    suite can check against a reference; ``trace()`` yields the memory
    access stream of that execution for the trace-layer profiler.
    """

    name: str
    suite: str

    def run(self) -> object:
        """Execute the kernel; returns an algorithm-specific result."""
        ...  # pragma: no cover - protocol

    def trace(self, *, max_accesses: int | None = None, seed: int = 0) -> TraceSource:
        """Memory-access trace of one execution."""
        ...  # pragma: no cover - protocol
