"""PARSEC workloads (Table I: blackscholes, freqmine, swaptions,
streamcluster)."""

from repro.workloads.parsec.blackscholes import BlackScholes, bs_price
from repro.workloads.parsec.freqmine import (
    FreqMine,
    bruteforce_itemsets,
    build_fp_tree,
    fp_growth,
)
from repro.workloads.parsec.streamcluster import StreamCluster, assign_cost
from repro.workloads.parsec.swaptions import Swaptions, vasicek_zcb_price

__all__ = [
    "BlackScholes",
    "FreqMine",
    "StreamCluster",
    "Swaptions",
    "assign_cost",
    "bruteforce_itemsets",
    "bs_price",
    "build_fp_tree",
    "fp_growth",
    "vasicek_zcb_price",
]
