"""PARSEC swaptions: Monte-Carlo interest-rate derivative pricing.

The original prices swaptions under the HJM framework; we implement a
Vasicek short-rate Monte-Carlo pricer for zero-coupon-bond options —
the same computational shape (per-path stochastic simulation, tiny
per-path state, heavy math) with a closed-form reference the test suite
validates against (Vasicek ZCB prices are analytic).

Like blackscholes it is compute-dense and cache-resident: the paper
finds it completely Harmony in every pairing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


def vasicek_zcb_price(r0: float, kappa: float, theta: float, sigma: float, t: float) -> float:
    """Closed-form Vasicek zero-coupon bond price P(0, t)."""
    if kappa <= 0 or sigma < 0 or t <= 0:
        raise WorkloadError("kappa, t must be positive; sigma non-negative")
    b = (1.0 - np.exp(-kappa * t)) / kappa
    a = np.exp(
        (theta - sigma**2 / (2 * kappa**2)) * (b - t) - sigma**2 * b**2 / (4 * kappa)
    )
    return float(a * np.exp(-b * r0))


@dataclass
class Swaptions:
    """Monte-Carlo Vasicek bond pricing over ``n_paths`` paths."""

    name: ClassVar[str] = "swaptions"
    suite: ClassVar[str] = "PARSEC"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("HJM_SimPath_Forward", "HJM_SimPath.c", 45, 102),
    )

    n_paths: int = 4000
    n_steps: int = 64
    maturity: float = 2.0
    r0: float = 0.03
    kappa: float = 0.8
    theta: float = 0.05
    sigma: float = 0.015
    seed: int = 4
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_paths <= 0 or self.n_steps <= 0:
            raise WorkloadError("paths and steps must be positive")
        amap = AddressMap(base_line=1 << 30)
        amap.alloc("path_state", self.n_paths, 8)
        amap.alloc("discounts", self.n_paths, 8)
        amap.alloc("rng_state", 64, 8)
        self._amap = amap

    def run(self) -> float:
        """Monte-Carlo P(0, maturity); exact Euler scheme per step."""
        rng = np.random.default_rng(self.seed)
        dt = self.maturity / self.n_steps
        r = np.full(self.n_paths, self.r0)
        integral = np.zeros(self.n_paths)
        ek = np.exp(-self.kappa * dt)
        sd = self.sigma * np.sqrt((1 - ek**2) / (2 * self.kappa))
        for _ in range(self.n_steps):
            integral += r * dt  # trapezoid start
            r = self.theta + (r - self.theta) * ek + sd * rng.standard_normal(self.n_paths)
            integral += 0.0  # state update only; integral uses left rule
        return float(np.exp(-integral).mean())

    def reference_price(self) -> float:
        """Closed-form Vasicek price the MC estimate must approach."""
        return vasicek_zcb_price(self.r0, self.kappa, self.theta, self.sigma, self.maturity)

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        out: list[AccessBatch] = []
        path_idx = np.arange(0, self.n_paths, 8, dtype=np.int64)
        for _ in range(self.n_steps):
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("path_state", path_idx),
                    ip=910,
                    write=True,
                    # exp + normal draw + FMA per path: compute heavy.
                    instructions=30 * len(path_idx),
                    region=0,
                )
            )
        out.append(
            AccessBatch.from_lines(
                self._amap.lines("discounts", path_idx),
                ip=911,
                write=True,
                instructions=5 * len(path_idx),
                region=0,
            )
        )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
