"""PARSEC streamcluster: online k-median clustering.

The benchmark streams blocks of points and maintains at most ``k``
medians by repeatedly evaluating the *gain* of opening a new center —
each evaluation sweeps the whole resident block computing distances.
Those repeated linear sweeps over a block much larger than the LLC are
why streamcluster is the bandwidth hog of PARSEC (Fig 3) and strongly
prefetcher-sensitive (Fig 4), saturating after 4 threads (Table II).

We implement the same structure: chunked streaming, cost-based center
opening, and a local-search refinement; the test suite checks
clustering quality against a k-means++-style baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


def assign_cost(points: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, float]:
    """Nearest-center assignment and total squared-distance cost."""
    if len(centers) == 0:
        raise WorkloadError("need at least one center")
    d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    idx = d2.argmin(axis=1)
    return idx, float(d2[np.arange(len(points)), idx].sum())


@dataclass
class StreamCluster:
    """Online k-median over a synthetic Gaussian-mixture stream."""

    name: ClassVar[str] = "streamcluster"
    suite: ClassVar[str] = "PARSEC"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("pgain", "streamcluster.cpp", 652, 744),
    )

    n_points: int = 4096
    dim: int = 16
    k: int = 8
    block: int = 1024
    seed: int = 6
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.k <= 0 or self.block <= 0:
            raise WorkloadError("k and block must be positive")
        rng = np.random.default_rng(self.seed)
        true_centers = rng.normal(0, 10, (self.k, self.dim))
        labels = rng.integers(0, self.k, self.n_points)
        self.points = true_centers[labels] + rng.normal(0, 1.0, (self.n_points, self.dim))
        amap = AddressMap(base_line=1 << 32)
        amap.alloc("block_points", self.block * self.dim, 8)
        amap.alloc("centers", self.k * self.dim, 8)
        amap.alloc("assign", self.block, 8)
        self._amap = amap

    def run(self) -> tuple[np.ndarray, float]:
        """Stream all points; returns (final centers, final cost)."""
        rng = np.random.default_rng(self.seed + 1)
        centers: list[np.ndarray] = []
        for lo in range(0, self.n_points, self.block):
            blk = self.points[lo : lo + self.block]
            if not centers:
                centers.append(blk[0].copy())
            # Gain evaluation: consider random candidates, open when the
            # cost reduction beats the opening cost (simplified pgain).
            for _ in range(3):
                _, cost = assign_cost(blk, np.array(centers))
                cand = blk[rng.integers(0, len(blk))]
                trial = np.array(centers + [cand])
                _, trial_cost = assign_cost(blk, trial)
                open_cost = cost / (2 * max(len(centers), 1))
                if len(centers) < self.k and cost - trial_cost > open_cost:
                    centers.append(cand.copy())
            # Local refinement: move each center to the mean of its
            # assigned points within the block.
            arr = np.array(centers)
            idx, _ = assign_cost(blk, arr)
            for c in range(len(centers)):
                mine = blk[idx == c]
                if len(mine):
                    centers[c] = mine.mean(axis=0)
        final = np.array(centers)
        _, cost = assign_cost(self.points, final)
        return final, cost

    def baseline_cost(self) -> float:
        """Quality baseline: cost of k uniformly sampled centers."""
        rng = np.random.default_rng(self.seed + 2)
        centers = self.points[rng.choice(self.n_points, self.k, replace=False)]
        _, cost = assign_cost(self.points, centers)
        return cost

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        out: list[AccessBatch] = []
        n_blocks = self.n_points // self.block
        pt_idx = np.arange(0, self.block * self.dim, 8, dtype=np.int64)
        c_idx = np.arange(0, self.k * self.dim, 8, dtype=np.int64)
        for _ in range(n_blocks):
            # pgain: repeated full-block sweeps (distance evaluations) —
            # streaming reads with low compute per element.
            for _sweep in range(4):
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines("block_points", pt_idx),
                        ip=930, instructions=3 * len(pt_idx), region=0,
                    )
                )
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines("centers", c_idx),
                        ip=931, instructions=2 * len(c_idx), region=0,
                    )
                )
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("assign", np.arange(0, self.block, 8, dtype=np.int64)),
                    ip=932, write=True, instructions=self.block // 8, region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
