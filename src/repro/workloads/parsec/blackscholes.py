"""PARSEC blackscholes: analytic European option pricing.

Prices a portfolio of options with the closed-form Black-Scholes
formula — the PARSEC benchmark's exact computation.  It is the
archetypal *harmless* co-runner in the paper: hundreds of FLOPs per
touched cache line, tiny working set, negligible bandwidth; neither a
victim nor an offender in any pairing (Fig 5's near-all-1.0 row and
column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np
from scipy.special import ndtr

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


def bs_price(
    spot: np.ndarray,
    strike: np.ndarray,
    rate: np.ndarray,
    vol: np.ndarray,
    expiry: np.ndarray,
    is_call: np.ndarray,
) -> np.ndarray:
    """Vectorized Black-Scholes price for calls and puts."""
    if np.any(vol <= 0) or np.any(expiry <= 0) or np.any(spot <= 0) or np.any(strike <= 0):
        raise WorkloadError("spot/strike/vol/expiry must be positive")
    sq = vol * np.sqrt(expiry)
    d1 = (np.log(spot / strike) + (rate + 0.5 * vol * vol) * expiry) / sq
    d2 = d1 - sq
    disc = strike * np.exp(-rate * expiry)
    call = spot * ndtr(d1) - disc * ndtr(d2)
    put = disc * ndtr(-d2) - spot * ndtr(-d1)
    return np.where(is_call, call, put)


@dataclass
class BlackScholes:
    """Price ``n_options`` synthetic options, ``sweeps`` times over."""

    name: ClassVar[str] = "blackscholes"
    suite: ClassVar[str] = "PARSEC"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("BlkSchlsEqEuroNoDiv", "blackscholes.c", 255, 291),
    )

    n_options: int = 4096
    sweeps: int = 4
    seed: int = 3
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        n = self.n_options
        self._spot = rng.uniform(20, 120, n)
        self._strike = rng.uniform(20, 120, n)
        self._rate = rng.uniform(0.01, 0.06, n)
        self._vol = rng.uniform(0.1, 0.6, n)
        self._expiry = rng.uniform(0.1, 2.0, n)
        self._is_call = rng.random(n) < 0.5
        amap = AddressMap(base_line=1 << 29)
        amap.alloc("inputs", 6 * n, 8)
        amap.alloc("prices", n, 8)
        self._amap = amap

    def run(self) -> np.ndarray:
        """Price the whole portfolio ``sweeps`` times; returns prices."""
        prices = None
        for _ in range(self.sweeps):
            prices = bs_price(
                self._spot, self._strike, self._rate,
                self._vol, self._expiry, self._is_call,
            )
        return prices

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        n = self.n_options
        out: list[AccessBatch] = []
        for _ in range(self.sweeps):
            idx = np.arange(0, 6 * n, 8, dtype=np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("inputs", idx),
                    ip=900,
                    # ~40 FLOPs (log/exp/erf) per option, 6 loads each:
                    # extremely compute-dense per line.
                    instructions=45 * len(idx),
                    region=0,
                )
            )
            w_idx = np.arange(0, n, 8, dtype=np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("prices", w_idx),
                    ip=901,
                    write=True,
                    instructions=2 * len(w_idx),
                    region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
