"""PARSEC freqmine: frequent-itemset mining with FP-growth.

A real FP-growth implementation: build the FP-tree over a synthetic
transaction database, then mine all itemsets above the support
threshold by recursive conditional-tree projection.  The test suite
validates the result against brute-force itemset counting.

Memory behaviour: FP-tree construction and projection chase parent/
child node links — irregular but over a modest footprint; the paper
measures low bandwidth and near-linear scalability for freqmine.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


class _FPNode:
    """FP-tree node: item id, count, parent link, children map."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int, parent: "_FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _FPNode] = {}


def build_fp_tree(
    transactions: list[list[int]], min_support: int
) -> tuple[_FPNode, dict[int, list[_FPNode]], list[int]]:
    """Build an FP-tree; returns (root, header table, frequent items)."""
    counts = Counter(item for t in transactions for item in set(t))
    frequent = [i for i, c in counts.items() if c >= min_support]
    # Order by descending support (FP-growth's canonical item order).
    frequent.sort(key=lambda i: (-counts[i], i))
    rank = {item: r for r, item in enumerate(frequent)}
    root = _FPNode(-1, None)
    header: dict[int, list[_FPNode]] = defaultdict(list)
    for t in transactions:
        items = sorted({i for i in t if i in rank}, key=lambda i: rank[i])
        node = root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                header[item].append(child)
            child.count += 1
            node = child
    return root, header, frequent


def fp_growth(transactions: list[list[int]], min_support: int) -> dict[frozenset, int]:
    """All itemsets with support >= ``min_support`` and their counts."""
    if min_support <= 0:
        raise WorkloadError("min_support must be positive")
    out: dict[frozenset, int] = {}

    def mine(trans: list[tuple[list[int], int]], suffix: frozenset) -> None:
        counts: Counter = Counter()
        for items, mult in trans:
            for i in set(items):
                counts[i] += mult
        for item, cnt in sorted(counts.items()):
            if cnt < min_support:
                continue
            itemset = suffix | {item}
            out[itemset] = cnt
            # Conditional pattern base for this item.
            cond: list[tuple[list[int], int]] = []
            for items, mult in trans:
                if item in items:
                    prefix = [i for i in items if i != item and counts[i] >= min_support and i < item]
                    if prefix:
                        cond.append((prefix, mult))
            if cond:
                mine(cond, itemset)

    mine([(list(t), 1) for t in transactions], frozenset())
    return out


def bruteforce_itemsets(
    transactions: list[list[int]], min_support: int, max_size: int = 4
) -> dict[frozenset, int]:
    """Reference: count every itemset up to ``max_size`` (tests only)."""
    from itertools import combinations

    counts: Counter = Counter()
    for t in transactions:
        uniq = sorted(set(t))
        for k in range(1, min(len(uniq), max_size) + 1):
            for combo in combinations(uniq, k):
                counts[frozenset(combo)] += 1
    return {s: c for s, c in counts.items() if c >= min_support}


@dataclass
class FreqMine:
    """FP-growth over a synthetic Zipf-distributed transaction DB."""

    name: ClassVar[str] = "freqmine"
    suite: ClassVar[str] = "PARSEC"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("FP_growth", "fp_tree.cpp", 310, 371),
    )

    n_transactions: int = 800
    n_items: int = 60
    avg_len: int = 8
    min_support: int = 40
    seed: int = 5
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        probs = 1.0 / np.arange(1, self.n_items + 1)
        probs /= probs.sum()
        self.transactions = [
            list(np.unique(rng.choice(self.n_items, size=max(1, rng.poisson(self.avg_len)), p=probs)))
            for _ in range(self.n_transactions)
        ]
        amap = AddressMap(base_line=1 << 31)
        amap.alloc("tree_nodes", 8 * self.n_transactions * self.avg_len, 8)
        amap.alloc("transactions", self.n_transactions * self.avg_len, 8)
        self._amap = amap

    def run(self) -> dict[frozenset, int]:
        """Mine all frequent itemsets."""
        return fp_growth(self.transactions, self.min_support)

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        rng = np.random.default_rng(seed)
        n_nodes = 8 * self.n_transactions * self.avg_len
        out: list[AccessBatch] = []
        # Phase 1: sequential transaction scan (tree build input).
        scan = np.arange(0, self.n_transactions * self.avg_len, 8, dtype=np.int64)
        out.append(
            AccessBatch.from_lines(
                self._amap.lines("transactions", scan),
                ip=920, instructions=6 * len(scan), region=0,
            )
        )
        # Phase 2: pointer-chasing over tree nodes during mining —
        # irregular, but with strong reuse of the hot upper tree.
        for _ in range(6):
            hot = rng.zipf(1.3, size=4000) % n_nodes
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("tree_nodes", hot.astype(np.int64)),
                    ip=921, instructions=8 * len(hot), region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
