"""SPEC CPU2017 607.cactuBSSN_s: numerical relativity stencils.

cactuBSSN evolves Einstein's equations in the BSSN formulation — its
kernels are high-order finite-difference stencils over ~25 3D grid
functions with heavy pointwise algebra.  We implement the
representative computation: 4th-order centred first/second derivatives
over several coupled fields plus a nonlinear pointwise RHS combine,
validated against an explicit-loop reference.

Systems profile: regular sweeps like fotonik3d, but with far more FLOPs
per point, so it is compute- rather than bandwidth-bound: near-linear
scaling (Fig 2e), low-mid bandwidth, Harmony in pairings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion

#: 4th-order centred first-derivative coefficients for offsets -2..2.
_D1 = np.array([1.0, -8.0, 0.0, 8.0, -1.0]) / 12.0
#: 4th-order centred second-derivative coefficients for offsets -2..2.
_D2 = np.array([-1.0, 16.0, -30.0, 16.0, -1.0]) / 12.0


def deriv4(f: np.ndarray, axis: int, h: float, *, order: int = 1) -> np.ndarray:
    """4th-order centred derivative along ``axis`` (zero at boundary).

    Args:
        f: 3-D field.
        axis: 0, 1 or 2.
        h: Grid spacing.
        order: 1 (first derivative) or 2 (second).
    """
    if order not in (1, 2):
        raise WorkloadError("order must be 1 or 2")
    if f.ndim != 3:
        raise WorkloadError("field must be 3-D")
    coeffs = _D1 if order == 1 else _D2
    scale = h if order == 1 else h * h
    out = np.zeros_like(f)
    inner = [slice(2, -2)] * 3
    acc = np.zeros_like(f[tuple(inner)])
    for k, c in zip(range(-2, 3), coeffs):
        if c == 0.0:
            continue
        idx = [slice(2, -2)] * 3
        idx[axis] = slice(2 + k, f.shape[axis] - 2 + k)
        acc += c * f[tuple(idx)]
    out[tuple(inner)] = acc / scale
    return out


def bssn_rhs(fields: dict[str, np.ndarray], h: float) -> dict[str, np.ndarray]:
    """A representative BSSN-like right-hand side.

    phi' = K; K' = laplacian(phi) - K^2; gxx' = -2 K gxx + d_x(beta).
    Not the full Einstein system, but the same computational structure:
    several coupled fields, 4th-order derivatives, nonlinear couplings.
    """
    phi, k, gxx, beta = fields["phi"], fields["K"], fields["gxx"], fields["beta"]
    lap_phi = sum(deriv4(phi, ax, h, order=2) for ax in range(3))
    return {
        "phi": k.copy(),
        "K": lap_phi - k * k,
        "gxx": -2.0 * k * gxx + deriv4(beta, 0, h),
        "beta": 0.5 * deriv4(gxx, 0, h),
    }


@dataclass
class CactuBSSN:
    """RK2 evolution of the BSSN-like system on an ``n``^3 grid."""

    name: ClassVar[str] = "cactuBSSN"
    suite: ClassVar[str] = "SPEC CPU2017"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("ML_BSSN_RHS", "ML_BSSN_EvolutionInterior.cc", 301, 402),
    )

    n: int = 20
    steps: int = 6
    dt: float = 0.01
    seed: int = 14
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        pts = self.n**3
        amap = AddressMap(base_line=1 << 41)
        for f in ("phi", "K", "gxx", "beta", "rhs"):
            amap.alloc(f, pts, 8)
        self._amap = amap

    def run(self) -> dict[str, float]:
        """Evolve; returns the max-norm of each field at the end."""
        rng = np.random.default_rng(self.seed)
        n = self.n
        h = 1.0 / n
        fields = {
            "phi": rng.normal(0, 0.01, (n, n, n)),
            "K": rng.normal(0, 0.01, (n, n, n)),
            "gxx": 1.0 + rng.normal(0, 0.01, (n, n, n)),
            "beta": rng.normal(0, 0.01, (n, n, n)),
        }
        for _ in range(self.steps):
            k1 = bssn_rhs(fields, h)
            mid = {f: fields[f] + 0.5 * self.dt * k1[f] for f in fields}
            k2 = bssn_rhs(mid, h)
            fields = {f: fields[f] + self.dt * k2[f] for f in fields}
        self._fields = fields
        return {f: float(np.abs(v).max()) for f, v in fields.items()}

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        pts = self.n**3
        idx = np.arange(0, pts, 8, dtype=np.int64)
        out: list[AccessBatch] = []
        for _ in range(self.steps):
            for f in ("phi", "K", "gxx", "beta"):
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines(f, idx),
                        ip=1020,
                        # ~60 FLOPs per point (derivative taps + algebra).
                        instructions=60 * len(idx),
                        region=0,
                    )
                )
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("rhs", idx),
                    ip=1021, write=True, instructions=4 * len(idx), region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
