"""SPEC CPU2017 workloads (Table I: mcf, fotonik3d, deepsjeng, nab,
xalancbmk, cactuBSSN)."""

from repro.workloads.spec.cactubssn import CactuBSSN, bssn_rhs, deriv4
from repro.workloads.spec.deepsjeng import (
    DeepSjeng,
    SearchStats,
    alphabeta,
    child_state,
    leaf_value,
    minimax,
)
from repro.workloads.spec.fotonik3d import Fotonik3D, field_energy, yee_step
from repro.workloads.spec.mcf import (
    MCF,
    min_cost_max_flow,
    random_transport_network,
)
from repro.workloads.spec.nab import Nab, build_cell_list, lj_energy_forces
from repro.workloads.spec.xalancbmk import (
    Rule,
    Xalancbmk,
    XmlNode,
    generate_document,
    transform,
)

__all__ = [
    "CactuBSSN",
    "DeepSjeng",
    "Fotonik3D",
    "MCF",
    "Nab",
    "Rule",
    "SearchStats",
    "Xalancbmk",
    "XmlNode",
    "alphabeta",
    "bssn_rhs",
    "build_cell_list",
    "child_state",
    "deriv4",
    "field_energy",
    "generate_document",
    "leaf_value",
    "lj_energy_forces",
    "min_cost_max_flow",
    "minimax",
    "random_transport_network",
    "transform",
    "yee_step",
]
