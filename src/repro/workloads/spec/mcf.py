"""SPEC CPU2017 605.mcf_s: minimum-cost flow.

mcf solves single-depot vehicle scheduling as min-cost network flow;
its hot loop chases arc/node pointers with no spatial locality — the
paper's Fig 3 shows it among the highest-bandwidth SPEC codes, yet it
scales well (Table II High) because each instance is independent
(SPEC-rate style).

We implement successive shortest paths with Bellman-Ford (handles the
negative reduced costs the real network simplex tolerates) on synthetic
transportation networks, validated against networkx's min-cost-flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


def min_cost_max_flow(
    n: int,
    arcs: list[tuple[int, int, int, int]],
    source: int,
    sink: int,
) -> tuple[int, int]:
    """Successive-shortest-path min-cost max-flow.

    Args:
        n: Node count.
        arcs: (u, v, capacity, cost) tuples.
        source, sink: Terminal nodes.

    Returns:
        (max flow value, total cost of that flow).
    """
    if not (0 <= source < n and 0 <= sink < n) or source == sink:
        raise WorkloadError("invalid source/sink")
    # Residual graph in adjacency-list form with paired reverse arcs.
    head: list[list[int]] = [[] for _ in range(n)]
    to: list[int] = []
    cap: list[int] = []
    cost: list[int] = []

    def add(u: int, v: int, c: int, w: int) -> None:
        head[u].append(len(to))
        to.append(v)
        cap.append(c)
        cost.append(w)
        head[v].append(len(to))
        to.append(u)
        cap.append(0)
        cost.append(-w)

    for u, v, c, w in arcs:
        if c < 0:
            raise WorkloadError("negative capacity")
        add(u, v, c, w)

    flow = total_cost = 0
    while True:
        # Bellman-Ford (SPFA) shortest path by cost in the residual net.
        dist = [float("inf")] * n
        in_q = [False] * n
        prev_arc = [-1] * n
        dist[source] = 0
        queue = [source]
        in_q[source] = True
        while queue:
            u = queue.pop(0)
            in_q[u] = False
            for e in head[u]:
                if cap[e] > 0 and dist[u] + cost[e] < dist[to[e]]:
                    dist[to[e]] = dist[u] + cost[e]
                    prev_arc[to[e]] = e
                    if not in_q[to[e]]:
                        queue.append(to[e])
                        in_q[to[e]] = True
        if dist[sink] == float("inf"):
            return flow, total_cost
        # Bottleneck along the path.
        push = float("inf")
        v = sink
        while v != source:
            e = prev_arc[v]
            push = min(push, cap[e])
            v = to[e ^ 1]
        v = sink
        while v != source:
            e = prev_arc[v]
            cap[e] -= push
            cap[e ^ 1] += push
            v = to[e ^ 1]
        flow += push
        total_cost += push * dist[sink]


def random_transport_network(
    n_nodes: int, n_arcs: int, *, seed: int = 0
) -> tuple[list[tuple[int, int, int, int]], int, int]:
    """A connected random flow network (arcs, source, sink)."""
    if n_nodes < 3:
        raise WorkloadError("need at least 3 nodes")
    rng = np.random.default_rng(seed)
    source, sink = 0, n_nodes - 1
    arcs: list[tuple[int, int, int, int]] = []
    # A backbone path guarantees source-sink connectivity.
    for u in range(n_nodes - 1):
        arcs.append((u, u + 1, int(rng.integers(5, 20)), int(rng.integers(1, 10))))
    for _ in range(max(0, n_arcs - (n_nodes - 1))):
        u, v = rng.choice(n_nodes, 2, replace=False)
        arcs.append((int(u), int(v), int(rng.integers(1, 25)), int(rng.integers(1, 15))))
    return arcs, source, sink


@dataclass
class MCF:
    """Min-cost max-flow over a batch of synthetic networks."""

    name: ClassVar[str] = "mcf"
    suite: ClassVar[str] = "SPEC CPU2017"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("primal_bea_mpp", "pbeampp.c", 165, 230),
    )

    n_nodes: int = 64
    n_arcs: int = 256
    n_networks: int = 3
    seed: int = 10
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        amap = AddressMap(base_line=1 << 36)
        amap.alloc("nodes", self.n_nodes * 8, 8)
        amap.alloc("arcs", self.n_arcs * 16, 8)
        self._amap = amap

    def run(self) -> list[tuple[int, int]]:
        """Solve all networks; returns (flow, cost) per network."""
        out = []
        for i in range(self.n_networks):
            arcs, s, t = random_transport_network(
                self.n_nodes, self.n_arcs, seed=self.seed + i
            )
            out.append(min_cost_max_flow(self.n_nodes, arcs, s, t))
        return out

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        rng = np.random.default_rng(seed + self.seed)
        out: list[AccessBatch] = []
        # Pointer chasing over arc structs: dependent irregular loads
        # (the pricing loop of primal_bea_mpp).
        n_arc_words = self.n_arcs * 16
        for _ in range(12):
            walk = rng.permutation(n_arc_words)[: n_arc_words // 2].astype(np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("arcs", walk),
                    ip=970, instructions=4 * len(walk), region=0,
                )
            )
            node_idx = rng.integers(0, self.n_nodes * 8, size=len(walk) // 4)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("nodes", node_idx.astype(np.int64)),
                    ip=971, write=True, instructions=3 * len(node_idx), region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
