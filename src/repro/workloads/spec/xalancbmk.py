"""SPEC CPU2017 623.xalancbmk_s: XSLT/XML transformation.

xalancbmk applies XSLT stylesheets to XML documents — tree walks with
pointer-chasing over heap-allocated nodes, string handling, and very
little arithmetic.  We implement a real document-tree transformer: a
node tree built from a deterministic generator, a small rule language
(rename / drop / unwrap by tag), recursive application, and
serialization.  Tests validate every rule's semantics.

Systems profile: irregular pointer chasing over a modest footprint,
low bandwidth (Fig 3), Harmony in essentially all pairings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


@dataclass
class XmlNode:
    """One element node: tag, text payload and children."""

    tag: str
    text: str = ""
    children: list["XmlNode"] = field(default_factory=list)

    def count(self) -> int:
        """Number of nodes in this subtree (including self)."""
        return 1 + sum(c.count() for c in self.children)

    def serialize(self) -> str:
        """Compact XML serialization."""
        inner = self.text + "".join(c.serialize() for c in self.children)
        return f"<{self.tag}>{inner}</{self.tag}>"


@dataclass(frozen=True)
class Rule:
    """One stylesheet rule applied to matching tags.

    ``action`` is one of ``rename`` (to ``arg``), ``drop`` (remove the
    subtree) or ``unwrap`` (replace the node by its children).
    """

    match_tag: str
    action: str
    arg: str = ""

    def __post_init__(self) -> None:
        if self.action not in {"rename", "drop", "unwrap"}:
            raise WorkloadError(f"unknown action {self.action!r}")
        if self.action == "rename" and not self.arg:
            raise WorkloadError("rename rule needs a target tag")


def transform(node: XmlNode, rules: list[Rule]) -> list[XmlNode]:
    """Apply ``rules`` bottom-up; returns the replacement node list
    (empty if dropped, multiple if unwrapped)."""
    new_children: list[XmlNode] = []
    for child in node.children:
        new_children.extend(transform(child, rules))
    out = XmlNode(node.tag, node.text, new_children)
    for rule in rules:
        if rule.match_tag != out.tag:
            continue
        if rule.action == "drop":
            return []
        if rule.action == "rename":
            out = XmlNode(rule.arg, out.text, out.children)
        elif rule.action == "unwrap":
            return out.children
    return [out]


def generate_document(
    n_nodes: int, *, tags: tuple[str, ...] = ("a", "b", "c", "d"), seed: int = 0
) -> XmlNode:
    """Deterministic random tree with ``n_nodes`` nodes."""
    if n_nodes < 1:
        raise WorkloadError("document needs at least one node")
    rng = np.random.default_rng(seed)
    root = XmlNode("root")
    pool = [root]
    for i in range(n_nodes - 1):
        parent = pool[int(rng.integers(0, len(pool)))]
        node = XmlNode(str(tags[int(rng.integers(0, len(tags)))]), text=f"t{i}")
        parent.children.append(node)
        pool.append(node)
    return root


@dataclass
class Xalancbmk:
    """Transform a synthetic document with a fixed stylesheet."""

    name: ClassVar[str] = "xalancbmk"
    suite: ClassVar[str] = "SPEC CPU2017"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("transformNode", "XSLTEngineImpl.cpp", 611, 689),
    )

    n_nodes: int = 2000
    passes: int = 4
    seed: int = 13
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.rules = [
            Rule("a", "rename", "alpha"),
            Rule("b", "drop"),
            Rule("c", "unwrap"),
        ]
        amap = AddressMap(base_line=1 << 40)
        amap.alloc("nodes", self.n_nodes * 8, 8)
        amap.alloc("strings", self.n_nodes * 16, 8)
        self._amap = amap

    def run(self) -> dict[str, int]:
        """Transform; returns node counts before/after and output size."""
        doc = generate_document(self.n_nodes, seed=self.seed)
        before = doc.count()
        result = transform(doc, self.rules)
        after = sum(n.count() for n in result)
        text = "".join(n.serialize() for n in result)
        return {"nodes_before": before, "nodes_after": after, "output_chars": len(text)}

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        rng = np.random.default_rng(seed + self.seed)
        out: list[AccessBatch] = []
        n_words = self.n_nodes * 8
        for _ in range(self.passes):
            # DFS pointer chase: parent -> child jumps over the heap.
            walk = rng.permutation(n_words).astype(np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("nodes", walk),
                    ip=1010, instructions=12 * len(walk), region=0,
                )
            )
            s_idx = rng.integers(0, self.n_nodes * 16, size=n_words // 2).astype(np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("strings", s_idx),
                    ip=1011, instructions=8 * len(s_idx), region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
