"""SPEC CPU2017 649.fotonik3d_s: FDTD electromagnetics.

fotonik3d computes photonic-waveguide transmission with the finite-
difference time-domain (Yee) method: six field arrays updated by curl
stencils every timestep, perfectly regular sweeps over data far larger
than any cache.  That makes it the paper's canonical *offender*: ~18.4
GB/s solo (Table III), strongly prefetcher-sensitive (Fig 4), scaling
collapse after 4 threads as it saturates the bus alone (Fig 2e), and
the workload that inflates G-CC's runtime to ~2x (Fig 5).  The paper's
Table IV profiles its ``UUS`` update region.

``run()`` advances a real vacuum Yee scheme; tests validate against an
explicit-loop reference and check the CFL-bounded field energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


def yee_step(
    ex: np.ndarray, ey: np.ndarray, ez: np.ndarray,
    hx: np.ndarray, hy: np.ndarray, hz: np.ndarray,
    *, courant: float = 0.4,
) -> None:
    """One in-place vacuum Yee update (E then H) on co-located grids.

    A simplified Yee scheme with fields on a common (n,n,n) grid and
    one-sided curl differences; boundaries are held at zero (PEC box).
    """
    if not (0 < courant <= 0.5):
        raise WorkloadError("courant number must be in (0, 0.5] for stability")
    c = courant
    i = slice(1, -1)
    # E += c * curl(H)
    ex[i, i, i] += c * ((hz[i, i, i] - hz[i, np.s_[:-2], i]) - (hy[i, i, i] - hy[i, i, np.s_[:-2]]))
    ey[i, i, i] += c * ((hx[i, i, i] - hx[i, i, np.s_[:-2]]) - (hz[i, i, i] - hz[np.s_[:-2], i, i]))
    ez[i, i, i] += c * ((hy[i, i, i] - hy[np.s_[:-2], i, i]) - (hx[i, i, i] - hx[i, np.s_[:-2], i]))
    # H -= c * curl(E)
    hx[i, i, i] -= c * ((ez[i, np.s_[2:], i] - ez[i, i, i]) - (ey[i, i, np.s_[2:]] - ey[i, i, i]))
    hy[i, i, i] -= c * ((ex[i, i, np.s_[2:]] - ex[i, i, i]) - (ez[np.s_[2:], i, i] - ez[i, i, i]))
    hz[i, i, i] -= c * ((ey[np.s_[2:], i, i] - ey[i, i, i]) - (ex[i, np.s_[2:], i] - ex[i, i, i]))


def field_energy(*fields: np.ndarray) -> float:
    """Sum of squared field magnitudes (discrete EM energy proxy)."""
    return float(sum((f * f).sum() for f in fields))


@dataclass
class Fotonik3D:
    """Vacuum FDTD with a Gaussian Ez source at the box centre."""

    name: ClassVar[str] = "fotonik3d"
    suite: ClassVar[str] = "SPEC CPU2017"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("UUS", "update.F90", 33, 92),
        CodeRegion("power_sum", "power.F90", 12, 30),
    )

    n: int = 24
    steps: int = 10
    courant: float = 0.4
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        pts = self.n**3
        amap = AddressMap(base_line=1 << 37)
        for f in ("ex", "ey", "ez", "hx", "hy", "hz"):
            amap.alloc(f, pts, 8)
        self._amap = amap

    def run(self) -> dict[str, float]:
        """Advance the FDTD; returns source/final energies."""
        n = self.n
        fields = [np.zeros((n, n, n)) for _ in range(6)]
        ex, ey, ez, hx, hy, hz = fields
        mid = n // 2
        ez[mid, mid, mid] = 1.0
        e0 = field_energy(*fields)
        for _ in range(self.steps):
            yee_step(ex, ey, ez, hx, hy, hz, courant=self.courant)
        self._fields = fields
        return {"initial_energy": e0, "final_energy": field_energy(*fields)}

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        pts = self.n**3
        idx = np.arange(0, pts, 8, dtype=np.int64)
        out: list[AccessBatch] = []
        for _ in range(self.steps):
            # UUS region: all six arrays swept sequentially, read+write,
            # ~2 FLOPs per point: bandwidth-bound by construction.
            for f in ("ex", "ey", "ez"):
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines(f, idx),
                        ip=980, write=True, instructions=2 * len(idx), region=0,
                    )
                )
            for f in ("hx", "hy", "hz"):
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines(f, idx),
                        ip=981, write=True, instructions=2 * len(idx), region=0,
                    )
                )
            # power_sum region: one reduction pass over E fields.
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("ez", idx),
                    ip=982, instructions=2 * len(idx), region=1,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
