"""SPEC CPU2017 644.nab_s: molecular dynamics.

nab (Nucleic Acid Builder) spends its time in non-bonded force loops.
We implement a real Lennard-Jones MD kernel — cutoff pair forces via a
cell list, velocity-Verlet integration in a periodic box — with tests
that check Newton's third law, force = -grad(energy) numerically, and
bounded energy drift.

Systems profile: neighbour gathers have decent locality (cell-sorted),
high FLOPs per byte — low bandwidth, near-linear scaling in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


def lj_energy_forces(
    pos: np.ndarray, box: float, cutoff: float, *, eps: float = 1.0, sigma: float = 1.0
) -> tuple[float, np.ndarray]:
    """Lennard-Jones energy and forces with minimum-image convention.

    O(N^2) pair loop in vectorized numpy; the cell list in
    :class:`Nab` only *orders* traversal (for the trace), physics is
    identical.

    Returns:
        (total potential energy, (N, 3) forces).
    """
    n = len(pos)
    if n < 2:
        raise WorkloadError("need at least two particles")
    if cutoff <= 0 or cutoff > box / 2:
        raise WorkloadError("cutoff must be in (0, box/2]")
    delta = pos[:, None, :] - pos[None, :, :]
    delta -= box * np.round(delta / box)  # minimum image
    r2 = (delta**2).sum(axis=2)
    np.fill_diagonal(r2, np.inf)
    mask = r2 < cutoff * cutoff
    inv_r2 = np.where(mask, (sigma * sigma) / np.maximum(r2, 1e-12), 0.0)
    inv_r6 = inv_r2**3
    energy = float(4 * eps * (inv_r6 * (inv_r6 - 1.0))[mask].sum() / 2.0)
    # F_i = sum_j 24 eps (2 r^-12 - r^-6) / r^2 * delta_ij
    coeff = 24 * eps * (2 * inv_r6 * inv_r6 - inv_r6) * np.where(mask, 1.0 / np.maximum(r2, 1e-12), 0.0) * (sigma == sigma)
    forces = (coeff[:, :, None] * delta).sum(axis=1)
    return energy, forces


def build_cell_list(pos: np.ndarray, box: float, cell: float) -> dict[tuple[int, int, int], list[int]]:
    """Bin particles into cells of side >= ``cell`` (traversal order)."""
    n_cells = max(1, int(box / cell))
    side = box / n_cells
    cells: dict[tuple[int, int, int], list[int]] = {}
    for i, p in enumerate(pos):
        key = tuple(int(c) % n_cells for c in (p // side))
        cells.setdefault(key, []).append(i)
    return cells


@dataclass
class Nab:
    """Velocity-Verlet LJ dynamics in a periodic box."""

    name: ClassVar[str] = "nab"
    suite: ClassVar[str] = "SPEC CPU2017"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("mme_nonbonded", "eff.c", 1907, 1988),
    )

    n_particles: int = 64
    steps: int = 10
    dt: float = 0.002
    box: float = 8.0
    cutoff: float = 2.5
    seed: int = 12
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        # Start from a jittered lattice to avoid overlapping particles.
        per_side = int(np.ceil(self.n_particles ** (1 / 3)))
        grid = np.stack(
            np.meshgrid(*[np.arange(per_side)] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)[: self.n_particles]
        self.pos = (grid + 0.5) * (self.box / per_side) + rng.normal(0, 0.05, (self.n_particles, 3))
        self.vel = rng.normal(0, 0.3, (self.n_particles, 3))
        self.vel -= self.vel.mean(axis=0)  # zero net momentum
        amap = AddressMap(base_line=1 << 39)
        amap.alloc("pos", self.n_particles * 3, 8)
        amap.alloc("force", self.n_particles * 3, 8)
        amap.alloc("neigh", self.n_particles * 64, 8)
        self._amap = amap

    def run(self) -> dict[str, float]:
        """Integrate; returns initial/final total energy and momentum."""
        pos, vel = self.pos.copy(), self.vel.copy()
        e_pot, forces = lj_energy_forces(pos, self.box, self.cutoff)
        e0 = e_pot + 0.5 * (vel**2).sum()
        for _ in range(self.steps):
            vel += 0.5 * self.dt * forces
            pos = (pos + self.dt * vel) % self.box
            e_pot, forces = lj_energy_forces(pos, self.box, self.cutoff)
            vel += 0.5 * self.dt * forces
        eN = e_pot + 0.5 * (vel**2).sum()
        self.final_pos, self.final_vel = pos, vel
        return {
            "initial_energy": float(e0),
            "final_energy": float(eN),
            "momentum_norm": float(np.linalg.norm(vel.sum(axis=0))),
        }

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        rng = np.random.default_rng(seed + self.seed)
        out: list[AccessBatch] = []
        n3 = self.n_particles * 3
        for _ in range(self.steps):
            # Cell-ordered neighbour gathers: piecewise-local irregular.
            order = np.concatenate(
                [np.sort(rng.choice(n3, size=16, replace=False)) for _ in range(self.n_particles)]
            ).astype(np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("pos", order % n3),
                    ip=1000,
                    instructions=25 * len(order),  # r^2, r^-6, FMA-heavy
                    region=0,
                )
            )
            idx = np.arange(0, n3, 8, dtype=np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("force", idx),
                    ip=1001, write=True, instructions=4 * len(idx), region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
