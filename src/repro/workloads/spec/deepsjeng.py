"""SPEC CPU2017 631.deepsjeng_s: game-tree search.

deepsjeng is a chess engine dominated by alpha-beta search with a
transposition table.  We implement negamax alpha-beta with a real
transposition table over a synthetic deterministic game: states are
64-bit hashes, each position offers ``branching`` moves, child states
collide intentionally (transpositions), and leaf values derive from the
state hash.  Tests prove alpha-beta returns exactly the minimax value
and that the transposition table prunes work.

Systems profile: tiny working set (TT lookups hit in cache), high IPC,
near-zero bandwidth — a perfect Harmony citizen (Fig 5) with linear
SPEC-rate scaling (Fig 2e prose).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion

_MASK = (1 << 61) - 1


def child_state(state: int, move: int) -> int:
    """Deterministic successor function with deliberate collisions."""
    return ((state * 2862933555777941757 + move * 3202034522624059733 + 1) & _MASK) % 100_003


def leaf_value(state: int) -> int:
    """Static evaluation of a terminal position in [-50, 50]."""
    return (state * 0x9E3779B97F4A7C15 & _MASK) % 101 - 50


def minimax(state: int, depth: int, branching: int) -> int:
    """Plain negamax without pruning (reference for tests)."""
    if depth == 0:
        return leaf_value(state)
    best = -(10**9)
    for move in range(branching):
        best = max(best, -minimax(child_state(state, move), depth - 1, branching))
    return best


@dataclass
class SearchStats:
    """Node/pruning accounting of one alpha-beta search."""

    nodes: int = 0
    tt_hits: int = 0
    cutoffs: int = 0


def alphabeta(
    state: int,
    depth: int,
    branching: int,
    *,
    alpha: int = -(10**9),
    beta: int = 10**9,
    tt: dict[tuple[int, int], int] | None = None,
    stats: SearchStats | None = None,
) -> int:
    """Negamax alpha-beta with an exact-depth transposition table."""
    if depth < 0 or branching <= 0:
        raise WorkloadError("depth must be >= 0, branching positive")
    if stats is not None:
        stats.nodes += 1
    if depth == 0:
        return leaf_value(state)
    key = (state, depth)
    if tt is not None and key in tt:
        if stats is not None:
            stats.tt_hits += 1
        return tt[key]
    best = -(10**9)
    a = alpha
    exact = True
    for move in range(branching):
        val = -alphabeta(
            child_state(state, move), depth - 1, branching,
            alpha=-beta, beta=-a, tt=tt, stats=stats,
        )
        best = max(best, val)
        a = max(a, val)
        if a >= beta:
            if stats is not None:
                stats.cutoffs += 1
            exact = False
            break
    # Only exact (non-cutoff) values are safe to reuse at any window.
    if tt is not None and exact:
        tt[key] = best
    return best


@dataclass
class DeepSjeng:
    """Iterative-deepening alpha-beta from a batch of root positions."""

    name: ClassVar[str] = "deepsjeng"
    suite: ClassVar[str] = "SPEC CPU2017"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("search", "search.cpp", 404, 498),
    )

    depth: int = 6
    branching: int = 6
    n_roots: int = 4
    seed: int = 11
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        amap = AddressMap(base_line=1 << 38)
        amap.alloc("tt", 100_003 * 2, 8)
        amap.alloc("board_stack", 4096, 8)
        self._amap = amap

    def run(self) -> list[int]:
        """Search every root; returns the root values."""
        rng = np.random.default_rng(self.seed)
        out = []
        for _ in range(self.n_roots):
            root = int(rng.integers(0, 100_003))
            tt: dict[tuple[int, int], int] = {}
            out.append(alphabeta(root, self.depth, self.branching, tt=tt))
        return out

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        rng = np.random.default_rng(seed + self.seed)
        out: list[AccessBatch] = []
        for _ in range(self.n_roots):
            # TT probes: random within the table (moderate footprint).
            probes = rng.integers(0, 100_003 * 2, size=5000).astype(np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("tt", probes),
                    ip=990,
                    # Search is compute-dominated: move gen, eval, etc.
                    instructions=40 * len(probes),
                    region=0,
                )
            )
            stack = rng.integers(0, 4096, size=2000).astype(np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("board_stack", stack),
                    ip=991, write=True, instructions=10 * len(stack), region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
