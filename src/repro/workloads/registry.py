"""Workload registry: one place that knows every application.

Maps each of the 27 names to (a) a factory for the real kernel
implementation and (b) its calibrated engine profile, so experiments
and examples can look workloads up uniformly:

>>> from repro.workloads.registry import get_workload, get_profile
>>> kernel = get_workload("G-PR")     # runnable algorithm + trace
>>> profile = get_profile("G-PR")     # analytic profile for the engine
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.calibration import (
    APPLICATIONS,
    MINI_BENCHMARKS,
    SUITES,
    all_profiles,
    calibrated_profile,
)


def _factories() -> dict[str, Callable[[], Workload]]:
    from repro.workloads.dl import ATIS, ConvNetCIFAR, ConvNetMNIST, LSTMAn4
    from repro.workloads.graph.gemini import (
        GeminiBC,
        GeminiBFS,
        GeminiCC,
        GeminiPageRank,
        GeminiSSSP,
    )
    from repro.workloads.graph.powergraph import (
        PowerGraphCC,
        PowerGraphPageRank,
        PowerGraphSSSP,
    )
    from repro.workloads.hpc import AMG2006, IRSmk, Lulesh
    from repro.workloads.micro import Bandit, StreamBench
    from repro.workloads.parsec import (
        BlackScholes,
        FreqMine,
        StreamCluster,
        Swaptions,
    )
    from repro.workloads.spec import (
        MCF,
        CactuBSSN,
        DeepSjeng,
        Fotonik3D,
        Nab,
        Xalancbmk,
    )

    return {
        "G-PR": GeminiPageRank,
        "G-BFS": GeminiBFS,
        "G-CC": GeminiCC,
        "G-SSSP": GeminiSSSP,
        "G-BC": GeminiBC,
        "P-PR": PowerGraphPageRank,
        "P-SSSP": PowerGraphSSSP,
        "P-CC": PowerGraphCC,
        "CIFAR": ConvNetCIFAR,
        "MNIST": ConvNetMNIST,
        "LSTM": LSTMAn4,
        "ATIS": ATIS,
        "blackscholes": BlackScholes,
        "freqmine": FreqMine,
        "swaptions": Swaptions,
        "streamcluster": StreamCluster,
        "lulesh": Lulesh,
        "IRSmk": IRSmk,
        "AMG2006": AMG2006,
        "mcf": MCF,
        "fotonik3d": Fotonik3D,
        "deepsjeng": DeepSjeng,
        "nab": Nab,
        "xalancbmk": Xalancbmk,
        "cactuBSSN": CactuBSSN,
        "Stream": StreamBench,
        "Bandit": Bandit,
    }


_FACTORY_CACHE: dict[str, Callable[[], Workload]] | None = None


def _factory_map() -> dict[str, Callable[[], Workload]]:
    global _FACTORY_CACHE
    if _FACTORY_CACHE is None:
        _FACTORY_CACHE = _factories()
    return _FACTORY_CACHE


def list_workloads(*, include_mini: bool = True) -> list[str]:
    """Names of all registered workloads in Table I order."""
    names = list(APPLICATIONS)
    if include_mini:
        names.extend(MINI_BENCHMARKS)
    return names


def suite_of(name: str) -> str:
    """Which benchmark suite a workload belongs to."""
    for suite, members in SUITES.items():
        if name in members:
            return suite
    if name in MINI_BENCHMARKS:
        return "mini-benchmarks"
    raise WorkloadError(f"unknown workload {name!r}")


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate the real kernel for ``name`` (kwargs go to its
    constructor, e.g. ``scale=`` for graph workloads)."""
    try:
        factory = _factory_map()[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {list_workloads()}"
        ) from None
    return factory(**kwargs)


def get_profile(name: str) -> WorkloadProfile:
    """The calibrated engine profile for ``name``."""
    return calibrated_profile(name)


def get_all_profiles() -> dict[str, WorkloadProfile]:
    """All calibrated profiles keyed by name."""
    return all_profiles()
