"""Address-space layout helper for kernel trace generation.

Kernels emit the cache-line addresses their data structures would
occupy.  :class:`AddressMap` hands each named array a disjoint,
page-aligned line range so traces from different arrays never alias,
and converts element indices to line addresses in one vectorized step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.units import CACHE_LINE

#: Line-granular alignment for each allocated region (64 lines = 4 KiB).
_REGION_ALIGN_LINES = 64


class AddressMap:
    """Bump allocator over a synthetic line-address space."""

    def __init__(self, base_line: int = 1 << 20) -> None:
        if base_line < 0:
            raise TraceError("base_line must be non-negative")
        self._next = base_line
        self._arrays: dict[str, tuple[int, int, int]] = {}

    def alloc(self, name: str, n_elems: int, elem_bytes: int) -> None:
        """Reserve a region for ``n_elems`` elements of ``elem_bytes``."""
        if name in self._arrays:
            raise TraceError(f"array {name!r} already allocated")
        if n_elems <= 0 or elem_bytes <= 0:
            raise TraceError(f"array {name!r}: sizes must be positive")
        n_lines = -(-n_elems * elem_bytes // CACHE_LINE)  # ceil div
        n_lines = -(-n_lines // _REGION_ALIGN_LINES) * _REGION_ALIGN_LINES
        self._arrays[name] = (self._next, elem_bytes, n_elems)
        self._next += n_lines

    def lines(self, name: str, indices: np.ndarray | int) -> np.ndarray:
        """Line addresses of elements ``indices`` of array ``name``."""
        try:
            base, elem_bytes, n_elems = self._arrays[name]
        except KeyError:
            raise TraceError(f"unknown array {name!r}") from None
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= n_elems):
            raise TraceError(
                f"array {name!r}: index out of bounds [0, {n_elems})"
            )
        return base + (idx * elem_bytes) // CACHE_LINE

    def span_lines(self, name: str) -> tuple[int, int]:
        """(first line, one-past-last line) of an array's region."""
        base, elem_bytes, n_elems = self._arrays[name]
        return base, base + -(-n_elems * elem_bytes // CACHE_LINE)

    @property
    def total_lines(self) -> int:
        """Lines allocated so far (footprint upper bound)."""
        return self._next
