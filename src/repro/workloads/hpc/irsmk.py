"""IRSmk: the LLNL implicit-radiation-solver matrix-multiply kernel.

The real IRSmk is a banded 27-point matrix-vector product written as
nested do-loops: for every interior grid point, accumulate 27
coefficient*neighbour products, with a *separate coefficient array per
stencil point*.  That layout means ~29 simultaneous sequential streams
(27 coefficient arrays + x + b) — the reason IRSmk consumes ~18 GB/s,
is among the most prefetcher-sensitive codes in the paper (Fig 4),
saturates after ~6 threads (Fig 2f) and is a chronic *offender*
(Table III, Fig 5).

``run()`` computes the real product (validated against an explicit
triple-loop reference in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion

#: The 27 stencil offsets in (dz, dy, dx) raster order.
OFFSETS: tuple[tuple[int, int, int], ...] = tuple(
    (dz, dy, dx) for dz in (-1, 0, 1) for dy in (-1, 0, 1) for dx in (-1, 0, 1)
)


def irsmk_matmul(coef: np.ndarray, x: np.ndarray) -> np.ndarray:
    """27-point banded matvec: ``b = A(coef) @ x`` on the interior.

    Args:
        coef: (27, nz, ny, nx) per-point stencil coefficients.
        x: (nz, ny, nx) input vector on the grid.

    Returns:
        (nz, ny, nx) output, zero on the boundary shell.
    """
    if coef.shape[0] != 27 or coef.shape[1:] != x.shape:
        raise WorkloadError("coef must be (27, nz, ny, nx) matching x")
    nz, ny, nx = x.shape
    if min(nz, ny, nx) < 3:
        raise WorkloadError("grid must be at least 3^3")
    b = np.zeros_like(x)
    inner = (slice(1, nz - 1), slice(1, ny - 1), slice(1, nx - 1))
    for m, (dz, dy, dx) in enumerate(OFFSETS):
        shifted = x[
            1 + dz : nz - 1 + dz,
            1 + dy : ny - 1 + dy,
            1 + dx : nx - 1 + dx,
        ]
        b[inner] += coef[m][inner] * shifted
    return b


def irsmk_matmul_reference(coef: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Explicit-loop reference implementation (tests only)."""
    nz, ny, nx = x.shape
    b = np.zeros_like(x)
    for k in range(1, nz - 1):
        for j in range(1, ny - 1):
            for i in range(1, nx - 1):
                acc = 0.0
                for m, (dz, dy, dx) in enumerate(OFFSETS):
                    acc += coef[m, k, j, i] * x[k + dz, j + dy, i + dx]
                b[k, j, i] = acc
    return b


@dataclass
class IRSmk:
    """Repeated 27-point matvec sweeps over a 3D grid."""

    name: ClassVar[str] = "IRSmk"
    suite: ClassVar[str] = "HPC"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("rmatmult3", "irsmk.c", 37, 118),
    )

    n: int = 24
    sweeps: int = 4
    seed: int = 8
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.coef = rng.uniform(-1, 1, (27, self.n, self.n, self.n))
        self.x = rng.uniform(-1, 1, (self.n, self.n, self.n))
        pts = self.n**3
        amap = AddressMap(base_line=1 << 33)
        amap.alloc("coef", 27 * pts, 8)
        amap.alloc("x", pts, 8)
        amap.alloc("b", pts, 8)
        self._amap = amap

    def run(self) -> np.ndarray:
        """Apply the operator ``sweeps`` times (b <- A x, x <- b/||b||)."""
        x = self.x
        b = x
        for _ in range(self.sweeps):
            b = irsmk_matmul(self.coef, x)
            norm = np.abs(b).max()
            x = b / norm if norm > 0 else b
        return b

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        pts = self.n**3
        out: list[AccessBatch] = []
        x_idx = np.arange(0, pts, 8, dtype=np.int64)
        for _ in range(self.sweeps):
            # 27 coefficient streams + the x stream + the b write stream,
            # all sequential: the most regular, heaviest traffic pattern.
            coef_idx = np.arange(0, 27 * pts, 8, dtype=np.int64)
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("coef", coef_idx),
                    ip=940, instructions=2 * len(coef_idx), region=0,
                )
            )
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("x", x_idx),
                    ip=941, instructions=2 * len(x_idx), region=0,
                )
            )
            out.append(
                AccessBatch.from_lines(
                    self._amap.lines("b", x_idx),
                    ip=942, write=True, instructions=len(x_idx), region=0,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
