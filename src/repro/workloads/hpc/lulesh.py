"""LULESH: the Sedov-blast shock-hydrodynamics proxy app.

LULESH solves the Sedov point-blast problem for one material on a 3D
mesh.  We implement a genuine (if simplified) compressible-Euler solver
with the same problem setup: an ideal-gas Lax-Friedrichs finite-volume
scheme on a structured 3D grid, energy deposited at the corner cell,
shock expanding outward.  The tests verify conservation of mass and the
outward motion of the blast front — the physics LULESH exists to model.

Memory behaviour: several full-grid field sweeps per timestep with
neighbour reads (regular, prefetchable) and moderate FLOPs per point —
the paper measures good scalability (Fig 2f) and mid-range bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion

GAMMA = 1.4


def _flux(u: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Euler fluxes along each axis for state u = (rho, mx, my, mz, E)."""
    rho = np.maximum(u[0], 1e-12)
    vx, vy, vz = u[1] / rho, u[2] / rho, u[3] / rho
    p = np.maximum((GAMMA - 1.0) * (u[4] - 0.5 * rho * (vx**2 + vy**2 + vz**2)), 1e-12)
    fx = np.stack([u[1], u[1] * vx + p, u[2] * vx, u[3] * vx, (u[4] + p) * vx])
    fy = np.stack([u[2], u[1] * vy, u[2] * vy + p, u[3] * vy, (u[4] + p) * vy])
    fz = np.stack([u[3], u[1] * vz, u[2] * vz, u[3] * vz + p, (u[4] + p) * vz])
    return fx, fy, fz


def lax_friedrichs_step(u: np.ndarray, dt_dx: float) -> np.ndarray:
    """One Lax-Friedrichs step with outflow boundaries.

    ``u`` has shape (5, n, n, n); returns the advanced state.
    """
    if u.shape[0] != 5:
        raise WorkloadError("state must have 5 conserved components")
    if dt_dx <= 0 or dt_dx > 0.5:
        raise WorkloadError("dt/dx must be in (0, 0.5] for stability")
    fx, fy, fz = _flux(u)
    new = u.copy()
    c = (slice(None), slice(1, -1), slice(1, -1), slice(1, -1))

    def sh(a, axis, d):
        idx = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
        idx[axis] = slice(1 + d, a.shape[axis] - 1 + d)
        return a[tuple(idx)]

    avg = (
        sh(u, 1, 1) + sh(u, 1, -1)
        + sh(u, 2, 1) + sh(u, 2, -1)
        + sh(u, 3, 1) + sh(u, 3, -1)
    ) / 6.0
    div = (
        (sh(fx, 1, 1) - sh(fx, 1, -1))
        + (sh(fy, 2, 1) - sh(fy, 2, -1))
        + (sh(fz, 3, 1) - sh(fz, 3, -1))
    ) * (0.5 * dt_dx)
    new[c] = avg - div
    # Outflow: copy the adjacent interior cell into the boundary shell.
    for axis in (1, 2, 3):
        lo = [slice(None)] * 4
        hi = [slice(None)] * 4
        lo[axis], hi[axis] = 0, -1
        lo_src, hi_src = list(lo), list(hi)
        lo_src[axis], hi_src[axis] = 1, -2
        new[tuple(lo)] = new[tuple(lo_src)]
        new[tuple(hi)] = new[tuple(hi_src)]
    return new


def sedov_initial_state(n: int, blast_energy: float = 100.0) -> np.ndarray:
    """Uniform cold gas with ``blast_energy`` deposited at the corner
    cell — LULESH's standard Sedov setup (one octant symmetry)."""
    if n < 4:
        raise WorkloadError("grid must be at least 4^3")
    u = np.zeros((5, n, n, n))
    u[0] = 1.0  # density
    u[4] = 1e-3  # background internal energy
    u[4, 1, 1, 1] = blast_energy
    return u


@dataclass
class Lulesh:
    """Sedov blast on an ``n``^3 grid for ``steps`` timesteps."""

    name: ClassVar[str] = "lulesh"
    suite: ClassVar[str] = "HPC"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("CalcHourglassControlForElems", "lulesh.cc", 714, 760),
        CodeRegion("EvalEOSForElems", "lulesh.cc", 1260, 1308),
    )

    n: int = 24
    steps: int = 12
    dt_dx: float = 0.1
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        pts = self.n**3
        amap = AddressMap(base_line=1 << 34)
        amap.alloc("state", 5 * pts, 8)
        amap.alloc("flux", 5 * pts, 8)
        amap.alloc("scratch", 5 * pts, 8)
        self._amap = amap

    def run(self) -> np.ndarray:
        """Advance the Sedov problem; returns the final state."""
        u = sedov_initial_state(self.n)
        for _ in range(self.steps):
            u = lax_friedrichs_step(u, self.dt_dx)
        return u

    @staticmethod
    def blast_radius(u: np.ndarray) -> float:
        """Excess-energy-weighted mean distance (in cells) from the
        blast corner — grows as the shock expands."""
        background = float(np.median(u[4]))
        w = np.maximum(u[4] - background, 0.0)
        total = w.sum()
        if total <= 0:
            return 0.0
        n = u.shape[1]
        zz, yy, xx = np.meshgrid(*[np.arange(n)] * 3, indexing="ij")
        r = np.sqrt(zz**2 + yy**2 + xx**2)
        return float((w * r).sum() / total)

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        pts = self.n**3
        out: list[AccessBatch] = []
        for _ in range(self.steps):
            for arr, ip, wr, ipa in (
                ("state", 950, False, 6),
                ("flux", 951, True, 4),
                ("state", 952, False, 6),
                ("scratch", 953, True, 3),
            ):
                idx = np.arange(0, 5 * pts, 8, dtype=np.int64)
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines(arr, idx),
                        ip=ip, write=wr, instructions=ipa * len(idx),
                        region=0 if not wr else 1,
                    )
                )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
