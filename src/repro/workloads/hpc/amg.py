"""AMG2006: the LLNL parallel algebraic multigrid solver.

A real geometric-multigrid Poisson solver with AMG2006's three-phase
structure that the paper calls out (Sections IV-A, V-A):

1. **setup phase 1** (serial): fine-grid operator and right-hand side
   construction;
2. **setup phase 2** (serial): coarse-grid hierarchy construction;
3. **solve phase** (parallel): V-cycle iterations — weighted-Jacobi
   smoothing, full-weighting restriction, bilinear prolongation — with
   intensive, regular memory traffic.

Because only the last phase parallelizes and it is bandwidth-hungry,
AMG2006 lands in the paper's Low-scalability class while still showing
a short high-bandwidth burst (its "exception" behaviour as an offender
in Fig 5's discussion).

The solver itself is validated against ``scipy.sparse`` direct solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


def poisson_apply(x: np.ndarray, h: float) -> np.ndarray:
    """Matrix-free 5-point Laplacian (Dirichlet) on an (n, n) grid."""
    out = np.zeros_like(x)
    out[1:-1, 1:-1] = (
        4.0 * x[1:-1, 1:-1]
        - x[:-2, 1:-1]
        - x[2:, 1:-1]
        - x[1:-1, :-2]
        - x[1:-1, 2:]
    ) / (h * h)
    return out


def jacobi_smooth(x: np.ndarray, b: np.ndarray, h: float, *, iters: int, omega: float = 0.8) -> np.ndarray:
    """Weighted-Jacobi smoothing for the 5-point Poisson operator."""
    diag = 4.0 / (h * h)
    for _ in range(iters):
        r = b - poisson_apply(x, h)
        x = x + omega * r / diag
    return x


def restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the (n//2+1)-point coarse grid."""
    n = fine.shape[0]
    if (n - 1) % 2:
        raise WorkloadError("grid must have 2^k+1 points per side")
    nc = (n - 1) // 2 + 1
    coarse = np.zeros((nc, nc))
    f = fine
    coarse[1:-1, 1:-1] = (
        4 * f[2:-2:2, 2:-2:2]
        + 2 * (f[1:-3:2, 2:-2:2] + f[3:-1:2, 2:-2:2] + f[2:-2:2, 1:-3:2] + f[2:-2:2, 3:-1:2])
        + (f[1:-3:2, 1:-3:2] + f[1:-3:2, 3:-1:2] + f[3:-1:2, 1:-3:2] + f[3:-1:2, 3:-1:2])
    ) / 16.0
    return coarse


def prolong_bilinear(coarse: np.ndarray, n_fine: int) -> np.ndarray:
    """Bilinear interpolation back to the fine grid."""
    fine = np.zeros((n_fine, n_fine))
    fine[::2, ::2] = coarse
    fine[1::2, ::2] = 0.5 * (coarse[:-1, :] + coarse[1:, :])
    fine[::2, 1::2] = 0.5 * (coarse[:, :-1] + coarse[:, 1:])
    fine[1::2, 1::2] = 0.25 * (
        coarse[:-1, :-1] + coarse[1:, :-1] + coarse[:-1, 1:] + coarse[1:, 1:]
    )
    return fine


def v_cycle(x: np.ndarray, b: np.ndarray, h: float, *, pre: int = 2, post: int = 2) -> np.ndarray:
    """One recursive V-cycle on the (n, n) grid (n = 2^k + 1)."""
    n = x.shape[0]
    if n <= 5:
        return jacobi_smooth(x, b, h, iters=60)
    x = jacobi_smooth(x, b, h, iters=pre)
    r = b - poisson_apply(x, h)
    rc = restrict_full_weighting(r)
    ec = v_cycle(np.zeros_like(rc), rc, 2 * h, pre=pre, post=post)
    x = x + prolong_bilinear(ec, n)
    x[0, :] = x[-1, :] = 0.0
    x[:, 0] = x[:, -1] = 0.0
    return jacobi_smooth(x, b, h, iters=post)


@dataclass
class AMG2006:
    """Multigrid Poisson solve with AMG2006's three-phase shape."""

    name: ClassVar[str] = "AMG2006"
    suite: ClassVar[str] = "HPC"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("setup_fine_grid", "amg_setup.c", 120, 168, ),
        CodeRegion("setup_coarse_hierarchy", "amg_setup.c", 200, 266),
        CodeRegion("vcycle_solve", "amg_solve.c", 77, 140),
    )

    k: int = 6  # grid = (2^k + 1)^2
    cycles: int = 6
    seed: int = 9
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.n = (1 << self.k) + 1
        pts = self.n * self.n
        amap = AddressMap(base_line=1 << 35)
        amap.alloc("rhs", pts, 8)
        amap.alloc("x", pts, 8)
        amap.alloc("residual", pts, 8)
        amap.alloc("hierarchy", 2 * pts, 8)
        self._amap = amap

    def _problem(self) -> tuple[np.ndarray, float]:
        """Phase 1: build the fine-grid RHS (smooth manufactured source)."""
        n = self.n
        h = 1.0 / (n - 1)
        xs = np.linspace(0, 1, n)
        xx, yy = np.meshgrid(xs, xs, indexing="ij")
        b = np.sin(np.pi * xx) * np.sin(np.pi * yy)
        b[0, :] = b[-1, :] = b[:, 0] = b[:, -1] = 0.0
        return b, h

    def run(self) -> dict[str, float]:
        """Solve; returns initial/final residual norms and the count of
        V-cycles (the reduction factor is the test's contract)."""
        b, h = self._problem()
        x = np.zeros_like(b)
        r0 = float(np.linalg.norm(b - poisson_apply(x, h)))
        for _ in range(self.cycles):
            x = v_cycle(x, b, h)
        rN = float(np.linalg.norm(b - poisson_apply(x, h)))
        self._solution = x
        return {"initial_residual": r0, "final_residual": rN, "cycles": float(self.cycles)}

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        pts = self.n * self.n
        idx = np.arange(0, pts, 8, dtype=np.int64)
        out: list[AccessBatch] = []
        # Phase 1 (serial): RHS construction — one sequential pass.
        out.append(
            AccessBatch.from_lines(
                self._amap.lines("rhs", idx),
                ip=960, write=True, instructions=8 * len(idx), region=0,
            )
        )
        # Phase 2 (serial): hierarchy construction — two passes.
        h_idx = np.arange(0, 2 * pts, 8, dtype=np.int64)
        out.append(
            AccessBatch.from_lines(
                self._amap.lines("hierarchy", h_idx),
                ip=961, write=True, instructions=5 * len(h_idx), region=1,
            )
        )
        # Phase 3 (parallel): V-cycles — repeated full-grid sweeps with
        # low compute per point: the high-bandwidth burst.
        for _ in range(self.cycles):
            for arr, ip, wr in (("x", 962, False), ("residual", 963, True), ("x", 964, True)):
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines(arr, idx),
                        ip=ip, write=wr, instructions=2 * len(idx), region=2,
                    )
                )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
