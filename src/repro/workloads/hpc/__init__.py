"""HPC workloads (LLNL suite of Table I: lulesh, IRSmk, AMG2006)."""

from repro.workloads.hpc.amg import (
    AMG2006,
    jacobi_smooth,
    poisson_apply,
    prolong_bilinear,
    restrict_full_weighting,
    v_cycle,
)
from repro.workloads.hpc.irsmk import (
    OFFSETS,
    IRSmk,
    irsmk_matmul,
    irsmk_matmul_reference,
)
from repro.workloads.hpc.lulesh import (
    Lulesh,
    lax_friedrichs_step,
    sedov_initial_state,
)

__all__ = [
    "AMG2006",
    "IRSmk",
    "Lulesh",
    "OFFSETS",
    "irsmk_matmul",
    "irsmk_matmul_reference",
    "jacobi_smooth",
    "lax_friedrichs_step",
    "poisson_apply",
    "prolong_bilinear",
    "restrict_full_weighting",
    "sedov_initial_state",
    "v_cycle",
]
