"""Bandit: the cache-conflict bandwidth mini-benchmark (Xu et al.,
IPDPS'17 — the same authors' Dr-BW work).

Bandit issues memory requests where *every access conflicts with the
previous one in the caches*: consecutive addresses map to the same set,
so each access evicts its predecessor and goes to DRAM.  The result is
pure bandwidth pressure (~18 GB/s at 4 threads) with an almost-zero
cache footprint — unlike STREAM it neither benefits from prefetchers
nor pollutes the LLC, which is exactly why the paper finds co-running
with Bandit far gentler than with STREAM (Fig 6a vs 6b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.trace.synth import conflict_chase
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


@dataclass
class Bandit:
    """Same-set conflict chase sized against a target LLC geometry."""

    name: ClassVar[str] = "Bandit"
    suite: ClassVar[str] = "mini-benchmarks"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("conflict_loop", "bandit.c", 22, 41),
    )

    #: LLC set count of the target machine (Xeon E5-4650 LLC: 16384).
    llc_sets: int = 16384
    n_accesses: int = 200_000
    seed: int = 15

    def __post_init__(self) -> None:
        if self.llc_sets <= 0 or self.n_accesses <= 0:
            raise WorkloadError("llc_sets and n_accesses must be positive")
        # One line per access, all in set 0 of the LLC: the footprint
        # that matters (LLC occupancy) is a single set's worth of lines.
        self._amap = AddressMap(base_line=0)

    def run(self) -> int:
        """Execute the chase arithmetic (checksum of touched offsets)."""
        # The real Bandit reads memory; the computation is trivially a
        # running XOR so the loop cannot be optimized away.
        offsets = (np.arange(self.n_accesses, dtype=np.int64) * self.llc_sets)
        return int(np.bitwise_xor.reduce(offsets % (1 << 31)))

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        return list(
            conflict_chase(
                self.n_accesses, n_sets=self.llc_sets,
                ip=1040, instructions_per_access=1.2, region=0, seed=seed,
            )
        )

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
