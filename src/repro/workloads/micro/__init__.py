"""Memory-stressing mini-benchmarks (Section III-B: Bandit, Stream)."""

from repro.workloads.micro.bandit import Bandit
from repro.workloads.micro.stream_bench import StreamBench

__all__ = ["Bandit", "StreamBench"]
