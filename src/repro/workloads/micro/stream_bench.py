"""McCalpin STREAM: the canonical bandwidth mini-benchmark.

Copy / Scale / Add / Triad over arrays far larger than any cache.  The
paper uses STREAM as the *heavy* interference generator (Fig 6b): its
perfectly regular pattern is amplified by the hardware prefetchers to
~24.5 GB/s at 4 threads (of ~28 GB/s practical peak), and its streaming
insertions continuously flush the shared LLC — the combination that
slows GeminiGraph applications to ~208% of their solo runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion


@dataclass
class StreamBench:
    """STREAM's four kernels over ``n_elems`` float64 per array."""

    name: ClassVar[str] = "Stream"
    suite: ClassVar[str] = "mini-benchmarks"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("triad", "stream.c", 345, 348),
    )

    n_elems: int = 1 << 18
    repetitions: int = 2
    scalar: float = 3.0
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_elems <= 0:
            raise WorkloadError("n_elems must be positive")
        amap = AddressMap(base_line=1 << 42)
        amap.alloc("a", self.n_elems, 8)
        amap.alloc("b", self.n_elems, 8)
        amap.alloc("c", self.n_elems, 8)
        self._amap = amap

    def run(self) -> dict[str, float]:
        """Execute copy/scale/add/triad; returns checksums per kernel."""
        a = np.arange(self.n_elems, dtype=np.float64)
        b = np.full(self.n_elems, 2.0)
        c = np.zeros(self.n_elems)
        for _ in range(self.repetitions):
            c[:] = a                      # copy
            b[:] = self.scalar * c        # scale
            c[:] = a + b                  # add
            a[:] = b + self.scalar * c    # triad
        return {
            "copy": float(c.sum()),
            "scale": float(b.sum()),
            "triad": float(a.sum()),
        }

    def expected_triad(self) -> float:
        """Closed-form checksum of the triad result (test contract)."""
        a = np.arange(self.n_elems, dtype=np.float64)
        b = np.full(self.n_elems, 2.0)
        c = np.zeros(self.n_elems)
        for _ in range(self.repetitions):
            c = a.copy()
            b = self.scalar * c
            c = a + b
            a = b + self.scalar * c
        return float(a.sum())

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        idx = np.arange(0, self.n_elems, 8, dtype=np.int64)
        out: list[AccessBatch] = []
        for _ in range(self.repetitions):
            for reads, writes, ip in (
                (("a",), ("c",), 1030),          # copy
                (("c",), ("b",), 1031),          # scale
                (("a", "b"), ("c",), 1032),      # add
                (("b", "c"), ("a",), 1033),      # triad
            ):
                for r in reads:
                    out.append(
                        AccessBatch.from_lines(
                            self._amap.lines(r, idx),
                            ip=ip, instructions=2 * len(idx), region=0,
                        )
                    )
                for w in writes:
                    out.append(
                        AccessBatch.from_lines(
                            self._amap.lines(w, idx),
                            ip=ip + 100, write=True,
                            instructions=len(idx), region=0,
                        )
                    )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one run."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
