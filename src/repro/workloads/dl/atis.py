"""ATIS: the CNTK natural-language (air-travel information) model.

A slot-tagging network — embedding lookup, one LSTM layer, per-token
linear head — trained on synthetic token sequences.  Computationally it
is tiny; its defining systems property in the paper is *synchronization-
bound scaling*: above 2 threads, 80% of CPU cycles land in OpenMP's
``kmp_hyper_barrier_release`` (Section IV-A), so ATIS shows *no*
scalability and nearly zero bandwidth (Fig 2c, Fig 3).  We expose that
barrier as a first-class code region; the calibrated profile gives it
the paper's cycle shares via the scaling model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion
from repro.workloads.dl import tensor as T
from repro.workloads.dl.convnet import _gemm_trace_batches


@dataclass
class ATIS:
    """Embedding + LSTM + per-token tag head, trained with SGD."""

    name: ClassVar[str] = "ATIS"
    suite: ClassVar[str] = "CNTK"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("tagger_forward", "atis.cpp", 44, 71),
        CodeRegion("kmp_hyper_barrier_release", "kmp_barrier.cpp", 1, 1),
    )

    vocab: int = 512
    seq_len: int = 12
    embed_dim: int = 32
    hidden: int = 48
    n_tags: int = 16
    batch: int = 8
    lr: float = 0.2
    steps: int = 3
    seed: int = 2
    params: dict = field(init=False, repr=False)
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        d, h = self.embed_dim, self.hidden
        self.params = {
            "emb": rng.normal(0, 0.1, (self.vocab, d)),
            "wx": rng.normal(0, 0.1, (d, 4 * h)),
            "wh": rng.normal(0, 0.1, (h, 4 * h)),
            "b": np.zeros(4 * h),
            "wo": rng.normal(0, 0.1, (h, self.n_tags)),
            "bo": np.zeros(self.n_tags),
        }
        self._tokens = rng.integers(0, self.vocab, (self.seq_len, self.batch))
        self._tags = rng.integers(0, self.n_tags, (self.seq_len, self.batch))
        amap = AddressMap(base_line=1 << 28)
        amap.alloc("emb", self.vocab * d, 8)
        amap.alloc("wx", d * 4 * h, 8)
        amap.alloc("wh", h * 4 * h, 8)
        amap.alloc("h_state", self.batch * h, 8)
        amap.alloc("gates", self.batch * 4 * h, 8)
        amap.alloc("barrier_flags", 64, 8)
        self._amap = amap

    def train_step(self) -> float:
        """One training step; returns the mean per-token loss."""
        p = self.params
        n, h = self.batch, self.hidden
        hs, cs = np.zeros((n, h)), np.zeros((n, h))
        caches, hs_seq, tok_seq = [], [], []
        total_loss = 0.0
        dlogits_seq = []
        for t in range(self.seq_len):
            toks = self._tokens[t]
            x = p["emb"][toks]
            hs, cs, cache = T.lstm_cell_forward(x, hs, cs, p["wx"], p["wh"], p["b"])
            caches.append(cache)
            hs_seq.append(hs)
            tok_seq.append(toks)
            logits = T.linear_forward(hs, p["wo"], p["bo"])
            loss, dlogits = T.softmax_cross_entropy(logits, self._tags[t])
            total_loss += loss
            dlogits_seq.append(dlogits)

        demb = np.zeros_like(p["emb"])
        dwx = np.zeros_like(p["wx"])
        dwh = np.zeros_like(p["wh"])
        db = np.zeros_like(p["b"])
        dwo = np.zeros_like(p["wo"])
        dbo = np.zeros_like(p["bo"])
        dh_next = np.zeros((n, h))
        dc_next = np.zeros((n, h))
        for t in reversed(range(self.seq_len)):
            dh_t, dwo_t, dbo_t = T.linear_backward(
                dlogits_seq[t], hs_seq[t], p["wo"]
            )
            dwo += dwo_t
            dbo += dbo_t
            dx, dh_prev, dc_prev, dwx_t, dwh_t, db_t = T.lstm_cell_backward(
                dh_next + dh_t, dc_next, caches[t]
            )
            dwx += dwx_t
            dwh += dwh_t
            db += db_t
            np.add.at(demb, tok_seq[t], dx)
            dh_next, dc_next = dh_prev, dc_prev

        T.sgd_update(
            p,
            {"emb": demb, "wx": dwx, "wh": dwh, "b": db, "wo": dwo, "bo": dbo},
            self.lr,
        )
        return total_loss / self.seq_len

    def run(self) -> list[float]:
        """Train ``steps`` iterations; returns per-step mean losses."""
        return [self.train_step() for _ in range(self.steps)]

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        rng = np.random.default_rng(seed)
        out: list[AccessBatch] = []
        for _ in range(self.steps):
            for t in range(self.seq_len):
                # Embedding gather: irregular but tiny footprint.
                toks = self._tokens[t]
                idx = (toks[:, None] * self.embed_dim + np.arange(0, self.embed_dim, 8)).ravel()
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines("emb", idx),
                        ip=800,
                        instructions=2 * len(idx),
                        region=0,
                    )
                )
                out.extend(
                    _gemm_trace_batches(
                        self._amap, "h_state", "wh", "gates",
                        m=self.batch, k=self.hidden, n=4 * self.hidden,
                        region=0, ip_base=810,
                    )
                )
                # Barrier spin: hammering a handful of flag lines —
                # (nearly) zero bandwidth, pure synchronization cycles.
                spin = rng.integers(0, 64, size=200)
                out.append(
                    AccessBatch.from_lines(
                        self._amap.lines("barrier_flags", spin),
                        ip=820,
                        instructions=20 * len(spin),
                        region=1,
                    )
                )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of the training loop."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
