"""Minimal tensor operations for the deep-learning workload models.

Implements exactly what the three CNTK applications need — dense layers,
im2col convolution, 2x2 max-pooling, ReLU, softmax cross-entropy and an
LSTM cell — each with a hand-written backward pass.  The test suite
validates every gradient against numerical differentiation, so the
training loops of the ConvNet/LSTM/ATIS models are real optimizers, not
mockups.

All tensors are numpy float64 (gradient checks need the precision);
layout is NCHW for images.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def _out_dim(size: int, k: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - k) // stride + 1
    if out <= 0:
        raise WorkloadError(f"kernel {k} too large for size {size} (pad {pad})")
    return out


# -- dense -----------------------------------------------------------------


def linear_forward(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    """y = x @ w + b with x:(N,D), w:(D,M), b:(M,)."""
    return x @ w + b


def linear_backward(
    dy: np.ndarray, x: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (dx, dw, db)."""
    return dy @ w.T, x.T @ dy, dy.sum(axis=0)


# -- activations -------------------------------------------------------------


def relu_forward(x: np.ndarray) -> np.ndarray:
    """Elementwise max(x, 0)."""
    return np.maximum(x, 0.0)


def relu_backward(dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient through ReLU given the forward input."""
    return dy * (x > 0)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and dloss/dlogits for integer labels."""
    if logits.ndim != 2:
        raise WorkloadError("logits must be (N, K)")
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    nll = -np.log(np.maximum(probs[np.arange(n), labels], 1e-300))
    dlogits = probs.copy()
    dlogits[np.arange(n), labels] -= 1.0
    return float(nll.mean()), dlogits / n


# -- convolution --------------------------------------------------------------


def im2col(
    x: np.ndarray, kh: int, kw: int, *, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold (N,C,H,W) into (N, C*kh*kw, Ho*Wo) patch columns."""
    n, c, h, w = x.shape
    ho, wo = _out_dim(h, kh, stride, pad), _out_dim(w, kw, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c * kh * kw, ho * wo), dtype=x.dtype)
    idx = 0
    for ci in range(c):
        for i in range(kh):
            for j in range(kw):
                patch = xp[:, ci, i : i + stride * ho : stride, j : j + stride * wo : stride]
                cols[:, idx, :] = patch.reshape(n, -1)
                idx += 1
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    *,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to (N,C,H,W)."""
    n, c, h, w = x_shape
    ho, wo = _out_dim(h, kh, stride, pad), _out_dim(w, kw, stride, pad)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    idx = 0
    for ci in range(c):
        for i in range(kh):
            for j in range(kw):
                patch = cols[:, idx, :].reshape(n, ho, wo)
                xp[:, ci, i : i + stride * ho : stride, j : j + stride * wo : stride] += patch
                idx += 1
    if pad:
        return xp[:, :, pad:-pad, pad:-pad]
    return xp


def conv2d_forward(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray,
    *,
    stride: int = 1,
    pad: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Convolution via im2col + GEMM.

    Args:
        x: (N, C, H, W) input.
        w: (F, C, kh, kw) filters.
        b: (F,) bias.

    Returns:
        (y, cols): y is (N, F, Ho, Wo); cols is the im2col buffer kept
        for the backward pass (the CNTK-style workspace that dominates
        the model's memory traffic).
    """
    n, c, h, wd = x.shape
    f, c2, kh, kw = w.shape
    if c != c2:
        raise WorkloadError(f"channel mismatch: x has {c}, filters expect {c2}")
    cols = im2col(x, kh, kw, stride=stride, pad=pad)
    wm = w.reshape(f, -1)
    ho, wo = _out_dim(h, kh, stride, pad), _out_dim(wd, kw, stride, pad)
    y = np.einsum("fk,nkp->nfp", wm, cols) + b[None, :, None]
    return y.reshape(n, f, ho, wo), cols


def conv2d_backward(
    dy: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    w: np.ndarray,
    *,
    stride: int = 1,
    pad: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (dx, dw, db) for :func:`conv2d_forward`."""
    n, f = dy.shape[0], dy.shape[1]
    _, c, kh, kw = w.shape
    dyf = dy.reshape(n, f, -1)
    wm = w.reshape(f, -1)
    dwm = np.einsum("nfp,nkp->fk", dyf, cols)
    db = dyf.sum(axis=(0, 2))
    dcols = np.einsum("fk,nfp->nkp", wm, dyf)
    dx = col2im(dcols, x_shape, kh, kw, stride=stride, pad=pad)
    return dx, dwm.reshape(w.shape), db


# -- pooling -------------------------------------------------------------------


def maxpool2x2_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """2x2/stride-2 max pooling; returns (y, argmax mask for backward)."""
    n, c, h, w = x.shape
    if h % 2 or w % 2:
        raise WorkloadError("maxpool2x2 requires even spatial dims")
    xr = x.reshape(n, c, h // 2, 2, w // 2, 2).transpose(0, 1, 2, 4, 3, 5)
    flat = xr.reshape(n, c, h // 2, w // 2, 4)
    arg = flat.argmax(axis=-1)
    y = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return y, arg


def maxpool2x2_backward(dy: np.ndarray, arg: np.ndarray, x_shape: tuple) -> np.ndarray:
    """Scatter gradients back to the argmax positions."""
    n, c, h, w = x_shape
    flat = np.zeros((n, c, h // 2, w // 2, 4), dtype=dy.dtype)
    np.put_along_axis(flat, arg[..., None], dy[..., None], axis=-1)
    xr = flat.reshape(n, c, h // 2, w // 2, 2, 2).transpose(0, 1, 2, 4, 3, 5)
    return xr.reshape(n, c, h, w)


# -- LSTM ------------------------------------------------------------------------


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


def lstm_cell_forward(
    x: np.ndarray,
    h: np.ndarray,
    c: np.ndarray,
    wx: np.ndarray,
    wh: np.ndarray,
    b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, tuple]:
    """One LSTM step.

    Args:
        x: (N, D) input; h, c: (N, H) previous states.
        wx: (D, 4H), wh: (H, 4H), b: (4H,) packed [i, f, o, g] gates.

    Returns:
        (h_next, c_next, cache) with cache for the backward pass.
    """
    hs = h.shape[1]
    gates = x @ wx + h @ wh + b
    i = _sigmoid(gates[:, :hs])
    f = _sigmoid(gates[:, hs : 2 * hs])
    o = _sigmoid(gates[:, 2 * hs : 3 * hs])
    g = np.tanh(gates[:, 3 * hs :])
    c_next = f * c + i * g
    tc = np.tanh(c_next)
    h_next = o * tc
    cache = (x, h, c, wx, wh, i, f, o, g, c_next, tc)
    return h_next, c_next, cache


def lstm_cell_backward(
    dh_next: np.ndarray, dc_next: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Returns (dx, dh, dc, dwx, dwh, db)."""
    x, h, c, wx, wh, i, f, o, g, c_next, tc = cache
    do = dh_next * tc
    dc_total = dc_next + dh_next * o * (1 - tc * tc)
    di = dc_total * g
    df = dc_total * c
    dg = dc_total * i
    dc = dc_total * f
    dgi = di * i * (1 - i)
    dgf = df * f * (1 - f)
    dgo = do * o * (1 - o)
    dgg = dg * (1 - g * g)
    dgates = np.concatenate([dgi, dgf, dgo, dgg], axis=1)
    dx = dgates @ wx.T
    dh = dgates @ wh.T
    dwx = x.T @ dgates
    dwh = h.T @ dgates
    db = dgates.sum(axis=0)
    return dx, dh, dc, dwx, dwh, db


# -- optimizer ----------------------------------------------------------------


def sgd_update(params: dict[str, np.ndarray], grads: dict[str, np.ndarray], lr: float) -> None:
    """In-place SGD step over matching param/grad dictionaries."""
    if lr <= 0:
        raise WorkloadError("learning rate must be positive")
    for k, p in params.items():
        if k not in grads:
            raise WorkloadError(f"missing gradient for parameter {k!r}")
        p -= lr * grads[k]
