"""ConvNet workloads: the CNTK image-recognition models (CIFAR, MNIST).

Real training: im2col convolutions, max-pooling, a dense classifier and
SGD, on synthetic image batches (CIFAR-10 and MNIST are not
redistributable offline; deterministic random images exercise the same
compute and memory paths — the paper only measures the training phase's
performance, not accuracy).

The memory behaviour that matters for interference: the im2col
workspace is streamed sequentially (GEMM-friendly, moderately
prefetchable), weights are small and heavily reused (cache-resident),
so ConvNet-CIFAR lands at ~7.3 GB/s solo — an *offender* against graph
workloads yet much milder than fotonik3d/IRSmk (paper Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion
from repro.workloads.dl import tensor as T


def _gemm_trace_batches(
    amap: AddressMap,
    a_name: str,
    b_name: str,
    c_name: str,
    m: int,
    k: int,
    n: int,
    *,
    elem: int = 8,
    tile: int = 64,
    region: int = 0,
    ip_base: int = 700,
) -> list[AccessBatch]:
    """Blocked-GEMM access pattern: stream B per row-tile of A, then
    write the C tile.  A-tiles are re-read (reuse), B streams (regular)."""
    out: list[AccessBatch] = []
    a_elems, b_elems, c_elems = m * k, k * n, m * n
    for row0 in range(0, m, tile):
        rows = min(tile, m - row0)
        a_idx = (row0 * k + np.arange(0, rows * k, max(elem, 1))) % a_elems
        out.append(
            AccessBatch.from_lines(
                amap.lines(a_name, a_idx),
                ip=ip_base,
                instructions=4 * len(a_idx),
                region=region,
            )
        )
        b_idx = np.arange(0, b_elems, 8, dtype=np.int64)  # one touch per line
        out.append(
            AccessBatch.from_lines(
                amap.lines(b_name, b_idx),
                ip=ip_base + 1,
                instructions=6 * len(b_idx),
                region=region,
            )
        )
        c_idx = (row0 * n + np.arange(0, rows * n, 8, dtype=np.int64)) % c_elems
        out.append(
            AccessBatch.from_lines(
                amap.lines(c_name, c_idx),
                ip=ip_base + 2,
                write=True,
                instructions=2 * len(c_idx),
                region=region,
            )
        )
    return out


@dataclass
class ConvNet:
    """Two-conv-layer classifier trained with SGD on synthetic images."""

    name: ClassVar[str] = "ConvNet"
    suite: ClassVar[str] = "CNTK"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("im2col_gemm", "convolution.cpp", 112, 140),
        CodeRegion("sgd_update", "learner.cpp", 88, 95),
    )

    in_channels: int = 3
    image_size: int = 32
    n_classes: int = 10
    batch: int = 16
    filters1: int = 8
    filters2: int = 16
    lr: float = 0.05
    steps: int = 3
    seed: int = 0
    params: dict = field(init=False, repr=False)
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        c, s = self.in_channels, self.image_size
        f1, f2 = self.filters1, self.filters2
        fc_in = f2 * (s // 4) * (s // 4)
        self.params = {
            "w1": rng.normal(0, 0.1, (f1, c, 3, 3)),
            "b1": np.zeros(f1),
            "w2": rng.normal(0, 0.1, (f2, f1, 3, 3)),
            "b2": np.zeros(f2),
            "w3": rng.normal(0, 0.1, (fc_in, self.n_classes)),
            "b3": np.zeros(self.n_classes),
        }
        self._x = rng.normal(0, 1, (self.batch, c, s, s))
        self._y = rng.integers(0, self.n_classes, self.batch)
        amap = AddressMap(base_line=1 << 26)
        # im2col workspaces and weight arrays drive the trace.
        cols1 = self.batch * c * 9 * s * s
        cols2 = self.batch * f1 * 9 * (s // 2) * (s // 2)
        amap.alloc("cols1", cols1, 8)
        amap.alloc("w1", f1 * c * 9, 8)
        amap.alloc("act1", self.batch * f1 * s * s, 8)
        amap.alloc("cols2", cols2, 8)
        amap.alloc("w2", f2 * f1 * 9, 8)
        amap.alloc("act2", self.batch * f2 * (s // 2) * (s // 2), 8)
        amap.alloc("fc_w", fc_in * self.n_classes, 8)
        amap.alloc("logits", self.batch * self.n_classes, 8)
        self._amap = amap

    def train_step(self) -> float:
        """One full forward/backward/SGD step; returns the loss."""
        p = self.params
        x, y = self._x, self._y
        a1, cols1 = T.conv2d_forward(x, p["w1"], p["b1"], pad=1)
        r1 = T.relu_forward(a1)
        p1, arg1 = T.maxpool2x2_forward(r1)
        a2, cols2 = T.conv2d_forward(p1, p["w2"], p["b2"], pad=1)
        r2 = T.relu_forward(a2)
        p2, arg2 = T.maxpool2x2_forward(r2)
        flat = p2.reshape(self.batch, -1)
        logits = T.linear_forward(flat, p["w3"], p["b3"])
        loss, dlogits = T.softmax_cross_entropy(logits, y)

        dflat, dw3, db3 = T.linear_backward(dlogits, flat, p["w3"])
        dp2 = dflat.reshape(p2.shape)
        dr2 = T.maxpool2x2_backward(dp2, arg2, r2.shape)
        da2 = T.relu_backward(dr2, a2)
        dp1, dw2, db2 = T.conv2d_backward(da2, cols2, p1.shape, p["w2"], pad=1)
        dr1 = T.maxpool2x2_backward(dp1, arg1, r1.shape)
        da1 = T.relu_backward(dr1, a1)
        _, dw1, db1 = T.conv2d_backward(da1, cols1, x.shape, p["w1"], pad=1)

        T.sgd_update(
            p,
            {"w1": dw1, "b1": db1, "w2": dw2, "b2": db2, "w3": dw3, "b3": db3},
            self.lr,
        )
        return loss

    def run(self) -> list[float]:
        """Train ``steps`` iterations; returns per-step losses."""
        return [self.train_step() for _ in range(self.steps)]

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        s, c = self.image_size, self.in_channels
        f1, f2 = self.filters1, self.filters2
        out: list[AccessBatch] = []
        for _ in range(self.steps):
            # conv1 GEMM: (f1) x (c*9) @ (c*9) x (s*s*batch)
            out.extend(
                _gemm_trace_batches(
                    self._amap, "cols1", "w1", "act1",
                    m=self.batch * s * s, k=c * 9, n=f1, region=0,
                )
            )
            out.extend(
                _gemm_trace_batches(
                    self._amap, "cols2", "w2", "act2",
                    m=self.batch * (s // 2) ** 2, k=f1 * 9, n=f2, region=0,
                    ip_base=710,
                )
            )
            out.extend(
                _gemm_trace_batches(
                    self._amap, "act2", "fc_w", "logits",
                    m=self.batch, k=f2 * (s // 4) ** 2, n=self.n_classes,
                    region=1, ip_base=720,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of the training loop."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)


@dataclass
class ConvNetCIFAR(ConvNet):
    """ConvNet on CIFAR-shaped inputs (3x32x32, 10 classes)."""

    name: ClassVar[str] = "CIFAR"


@dataclass
class ConvNetMNIST(ConvNet):
    """ConvNet on MNIST-shaped inputs (1x28x28, 10 classes)."""

    name: ClassVar[str] = "MNIST"

    in_channels: int = 1
    image_size: int = 28
