"""LSTM-AN4: the CNTK speech model (LSTM over CMU-AN4-shaped input).

A real single-layer LSTM trained by backpropagation-through-time on
synthetic MFCC-like sequences (the AN4 audio corpus is not available
offline; deterministic random features exercise identical compute and
memory paths for the training-phase measurement the paper performs).

Memory behaviour: the recurrent weight matrices are re-read every
timestep (strong LLC reuse, small footprint), activations stream per
step — medium bandwidth, good scalability (paper: LSTM scales to ~6.3x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion
from repro.workloads.dl import tensor as T
from repro.workloads.dl.convnet import _gemm_trace_batches


@dataclass
class LSTMAn4:
    """Sequence classifier: LSTM -> mean pool -> linear -> softmax."""

    name: ClassVar[str] = "LSTM"
    suite: ClassVar[str] = "CNTK"
    regions: ClassVar[tuple[CodeRegion, ...]] = (
        CodeRegion("lstm_step_gemm", "recurrentnodes.cpp", 204, 231),
        CodeRegion("bptt_accumulate", "recurrentnodes.cpp", 260, 288),
    )

    seq_len: int = 20
    input_dim: int = 64
    hidden: int = 96
    n_classes: int = 8
    batch: int = 8
    lr: float = 0.2
    steps: int = 3
    seed: int = 1
    params: dict = field(init=False, repr=False)
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        d, h = self.input_dim, self.hidden
        self.params = {
            "wx": rng.normal(0, 0.08, (d, 4 * h)),
            "wh": rng.normal(0, 0.08, (h, 4 * h)),
            "b": np.zeros(4 * h),
            "wo": rng.normal(0, 0.08, (h, self.n_classes)),
            "bo": np.zeros(self.n_classes),
        }
        self._x = rng.normal(0, 1, (self.seq_len, self.batch, d))
        self._y = rng.integers(0, self.n_classes, self.batch)
        amap = AddressMap(base_line=1 << 27)
        amap.alloc("wx", d * 4 * h, 8)
        amap.alloc("wh", h * 4 * h, 8)
        amap.alloc("x_seq", self.seq_len * self.batch * d, 8)
        amap.alloc("h_state", self.batch * h, 8)
        amap.alloc("gates", self.batch * 4 * h, 8)
        self._amap = amap

    def train_step(self) -> float:
        """One BPTT step over the full sequence; returns the loss."""
        p = self.params
        n, h = self.batch, self.hidden
        hs = np.zeros((n, h))
        cs = np.zeros((n, h))
        caches = []
        h_sum = np.zeros((n, h))
        for t in range(self.seq_len):
            hs, cs, cache = T.lstm_cell_forward(
                self._x[t], hs, cs, p["wx"], p["wh"], p["b"]
            )
            caches.append(cache)
            h_sum += hs
        h_mean = h_sum / self.seq_len
        logits = T.linear_forward(h_mean, p["wo"], p["bo"])
        loss, dlogits = T.softmax_cross_entropy(logits, self._y)

        dh_mean, dwo, dbo = T.linear_backward(dlogits, h_mean, p["wo"])
        dh_shared = dh_mean / self.seq_len  # every step fed the mean pool
        dwx = np.zeros_like(p["wx"])
        dwh = np.zeros_like(p["wh"])
        db = np.zeros_like(p["b"])
        dh_next = np.zeros((n, h))
        dc_next = np.zeros((n, h))
        for t in reversed(range(self.seq_len)):
            _, dh_prev, dc_prev, dwx_t, dwh_t, db_t = T.lstm_cell_backward(
                dh_next + dh_shared, dc_next, caches[t]
            )
            dwx += dwx_t
            dwh += dwh_t
            db += db_t
            dh_next, dc_next = dh_prev, dc_prev

        T.sgd_update(p, {"wx": dwx, "wh": dwh, "b": db, "wo": dwo, "bo": dbo}, self.lr)
        return loss

    def run(self) -> list[float]:
        """Train ``steps`` iterations; returns per-step losses."""
        return [self.train_step() for _ in range(self.steps)]

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        out: list[AccessBatch] = []
        for _ in range(self.steps):
            for _t in range(self.seq_len):
                # gates = x @ wx + h @ wh : two GEMMs re-reading weights.
                out.extend(
                    _gemm_trace_batches(
                        self._amap, "x_seq", "wx", "gates",
                        m=self.batch, k=self.input_dim, n=4 * self.hidden,
                        region=0, ip_base=730,
                    )
                )
                out.extend(
                    _gemm_trace_batches(
                        self._amap, "h_state", "wh", "gates",
                        m=self.batch, k=self.hidden, n=4 * self.hidden,
                        region=1, ip_base=740,
                    )
                )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of the training loop."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)
