"""Deep-learning workloads (the CNTK suite of Table I)."""

from repro.workloads.dl.atis import ATIS
from repro.workloads.dl.convnet import ConvNet, ConvNetCIFAR, ConvNetMNIST
from repro.workloads.dl.lstm import LSTMAn4

__all__ = ["ATIS", "ConvNet", "ConvNetCIFAR", "ConvNetMNIST", "LSTMAn4"]
