"""Workload models: the 25 applications of Table I plus the two
mini-benchmarks, each as a real kernel with a trace generator, plus the
calibrated analytic profiles the interval engine consumes."""

from repro.workloads.base import (
    CodeRegion,
    RegionProfile,
    ScalingModel,
    Workload,
    WorkloadProfile,
)

__all__ = [
    "CodeRegion",
    "RegionProfile",
    "ScalingModel",
    "Workload",
    "WorkloadProfile",
]
