"""Calibrated analytic profiles for the 25 applications + 2 mini-benchmarks.

Every entry anchors an application's *solo-run* characteristics to the
paper's own measurements:

* memory bandwidth at 1/4/8 threads (Fig 3, Table III),
* thread-scaling class and curve shape (Fig 2, Table II),
* prefetcher sensitivity (Fig 4),
* solo CPI / LLC MPKI / L2_PCP where reported (Table IV, Fig 7/8
  "no interference" bars).

Only solo behaviour is calibrated.  All co-running outcomes — the 625-
pair heat map, the mini-benchmark slowdowns, the metric inflations —
emerge from the engine's LLC-sharing and bus-contention mechanics.

Parameter provenance (how each field was chosen):

* ``l2_mpki`` and ``write_fraction`` are solved so that 4-thread solo
  bandwidth matches Fig 3 / Table III given the CPI implied by the
  other fields;
* ``mrc`` slopes encode how much each app benefits from LLC capacity:
  flat-high for pure streams (STREAM, fotonik3d, IRSmk), steep for
  graph analytics (the paper's victims), low floors for cache-resident
  codes;
* ``regularity`` encodes Fig 4: ~0.9 for the prefetcher-sensitive set
  (streamcluster, HPC, fotonik3d), ~0.1-0.25 for graph/ML/pointer codes;
* ``mlp`` separates throughput-optimized engines (Gemini ~6) from
  dependent-load chasers (mcf, xalancbmk ~2);
* ``scaling`` encodes the two algorithmic pathologies the paper calls
  out: ATIS's barrier (sync CPI) and P-SSSP's identical-weight
  redundancy (work inflation), plus AMG's serial setup phases.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.trace.mrc import MissRatioCurve
from repro.units import KiB, MiB
from repro.workloads.base import (
    CodeRegion,
    RegionProfile,
    ScalingModel,
    WorkloadProfile,
)


def _mrc(*points: tuple[float, float]) -> MissRatioCurve:
    return MissRatioCurve.from_points(list(points))


def _one_region(
    name: str,
    suite: str,
    region: CodeRegion,
    *,
    kinstr: float,
    ipc: float,
    mpki: float,
    mrc: MissRatioCurve,
    reg: float,
    mlp: float,
    wf: float = 0.25,
    fp: float = 8 * MiB,
    bw_eff: float = 1.0,
    scaling: ScalingModel | None = None,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite=suite,
        total_kinstr=kinstr,
        regions=(
            RegionProfile(
                region=region, weight=1.0, ipc_core=ipc, l2_mpki=mpki,
                mrc=mrc, regularity=reg, mlp=mlp, write_fraction=wf,
                footprint_bytes=fp, bw_efficiency=bw_eff,
            ),
        ),
        scaling=scaling if scaling is not None else ScalingModel(),
    )


#: Steep graph-analytics MRC: big win from LLC capacity, the paper's
#: victim mechanism (Figs 7c/8c).
_GRAPH_MRC = _mrc((512 * KiB, 0.95), (2 * MiB, 0.86), (6 * MiB, 0.72), (20 * MiB, 0.36))
_GRAPH_MRC_LIGHT = _mrc((512 * KiB, 0.97), (2 * MiB, 0.85), (6 * MiB, 0.58), (20 * MiB, 0.28))


def _build_profiles() -> dict[str, WorkloadProfile]:
    p: dict[str, WorkloadProfile] = {}

    # ---------------- GeminiGraph ----------------
    gem = ScalingModel()
    p["G-PR"] = _one_region(
        "G-PR", "GeminiGraph", CodeRegion("pull_edge_loop", "pagerank.c", 63, 70),
        kinstr=3.6e8, ipc=2.2, mpki=65, mrc=_GRAPH_MRC, reg=0.15, mlp=8.0,
        fp=26 * MiB, scaling=gem,
    )
    p["G-CC"] = _one_region(
        "G-CC", "GeminiGraph", CodeRegion("label_propagate", "cc.c", 64, 72),
        kinstr=3.2e8, ipc=2.2, mpki=72, mrc=_GRAPH_MRC, reg=0.15, mlp=8.0,
        fp=28 * MiB, scaling=gem,
    )
    p["G-BC"] = _one_region(
        "G-BC", "GeminiGraph", CodeRegion("dependency_accum", "bc.c", 76, 88),
        kinstr=4.0e8, ipc=2.2, mpki=52, mrc=_GRAPH_MRC_LIGHT, reg=0.15, mlp=7.5,
        fp=24 * MiB, scaling=gem,
    )
    p["G-BFS"] = _one_region(
        "G-BFS", "GeminiGraph", CodeRegion("frontier_expand", "bfs.c", 53, 61),
        kinstr=2.4e8, ipc=2.3, mpki=40, mrc=_GRAPH_MRC_LIGHT, reg=0.15, mlp=6.5,
        fp=22 * MiB, scaling=gem,
    )
    p["G-SSSP"] = _one_region(
        "G-SSSP", "GeminiGraph", CodeRegion("relax_edges", "sssp.c", 65, 74),
        kinstr=3.0e8, ipc=2.2, mpki=42, mrc=_GRAPH_MRC, reg=0.12, mlp=4.0,
        fp=24 * MiB,
        scaling=ScalingModel(work_inflation_coeff=0.06, work_inflation_exp=1.0),
    )

    # ---------------- PowerGraph ----------------
    p["P-PR"] = _one_region(
        "P-PR", "PowerGraph", CodeRegion("gather", "pagerank.c", 63, 66),
        kinstr=5.5e8, ipc=1.6, mpki=34, mrc=_mrc(
            (512 * KiB, 0.9), (2 * MiB, 0.8), (6 * MiB, 0.66), (20 * MiB, 0.42)
        ),
        reg=0.12, mlp=4.0, fp=22 * MiB,
    )
    p["P-CC"] = _one_region(
        "P-CC", "PowerGraph", CodeRegion("gather_min_label", "cc.c", 55, 62),
        kinstr=5.0e8, ipc=1.6, mpki=30, mrc=_mrc(
            (512 * KiB, 0.88), (2 * MiB, 0.76), (6 * MiB, 0.62), (20 * MiB, 0.4)
        ),
        reg=0.12, mlp=4.0, fp=20 * MiB,
    )
    p["P-SSSP"] = _one_region(
        "P-SSSP", "PowerGraph", CodeRegion("gather_min_dist", "sssp.c", 58, 66),
        kinstr=4.5e8, ipc=1.6, mpki=26, mrc=_mrc(
            (512 * KiB, 0.85), (6 * MiB, 0.6), (20 * MiB, 0.42)
        ),
        reg=0.12, mlp=3.6, fp=20 * MiB,
        scaling=ScalingModel(work_inflation_coeff=0.48, work_inflation_exp=1.0),
    )

    # ---------------- CNTK ----------------
    p["CIFAR"] = _one_region(
        "CIFAR", "CNTK", CodeRegion("im2col_gemm", "convolution.cpp", 112, 140),
        kinstr=6.0e8, ipc=2.8, mpki=11.5, mrc=_mrc(
            (1 * MiB, 0.75), (4 * MiB, 0.55), (16 * MiB, 0.38)
        ),
        reg=0.3, mlp=6.0, fp=14 * MiB,
        scaling=ScalingModel(sync_cpi_coeff=0.01, sync_cpi_exp=1.4),
    )
    p["MNIST"] = _one_region(
        "MNIST", "CNTK", CodeRegion("im2col_gemm", "convolution.cpp", 112, 140),
        kinstr=4.5e8, ipc=2.8, mpki=7, mrc=_mrc(
            (1 * MiB, 0.7), (4 * MiB, 0.5), (12 * MiB, 0.33)
        ),
        reg=0.3, mlp=6.0, fp=10 * MiB,
    )
    p["LSTM"] = _one_region(
        "LSTM", "CNTK", CodeRegion("lstm_step_gemm", "recurrentnodes.cpp", 204, 231),
        kinstr=5.0e8, ipc=2.6, mpki=7.5, mrc=_mrc(
            (1 * MiB, 0.6), (4 * MiB, 0.35), (8 * MiB, 0.22)
        ),
        reg=0.3, mlp=5.0, fp=6 * MiB,
        scaling=ScalingModel(sync_cpi_coeff=0.008, sync_cpi_exp=1.4),
    )
    p["ATIS"] = WorkloadProfile(
        name="ATIS", suite="CNTK", total_kinstr=2.2e8,
        regions=(
            RegionProfile(
                region=CodeRegion("tagger_forward", "atis.cpp", 44, 71),
                weight=0.97, ipc_core=2.4, l2_mpki=4.0,
                mrc=_mrc((512 * KiB, 0.5), (4 * MiB, 0.2)),
                regularity=0.3, mlp=3.0, footprint_bytes=3 * MiB,
            ),
            RegionProfile(
                region=CodeRegion("kmp_hyper_barrier_release", "kmp_barrier.cpp", 1, 1),
                weight=0.03, ipc_core=2.4, l2_mpki=0.2,
                mrc=MissRatioCurve.constant(0.1),
                regularity=0.0, mlp=2.0, footprint_bytes=64 * KiB,
            ),
        ),
        scaling=ScalingModel(sync_cpi_coeff=0.45, sync_cpi_exp=1.05),
        sync_region_name="kmp_hyper_barrier_release",
    )

    # ---------------- PARSEC ----------------
    p["blackscholes"] = _one_region(
        "blackscholes", "PARSEC",
        CodeRegion("BlkSchlsEqEuroNoDiv", "blackscholes.c", 255, 291),
        kinstr=9.0e8, ipc=3.2, mpki=0.4, mrc=MissRatioCurve.constant(0.3),
        reg=0.6, mlp=4.0, fp=1 * MiB,
    )
    p["freqmine"] = _one_region(
        "freqmine", "PARSEC", CodeRegion("FP_growth", "fp_tree.cpp", 310, 371),
        kinstr=7.0e8, ipc=2.2, mpki=2.0,
        mrc=_mrc((1 * MiB, 0.45), (8 * MiB, 0.25)), reg=0.2, mlp=3.0, fp=6 * MiB,
    )
    p["swaptions"] = _one_region(
        "swaptions", "PARSEC", CodeRegion("HJM_SimPath_Forward", "HJM_SimPath.c", 45, 102),
        kinstr=9.0e8, ipc=3.0, mpki=0.3, mrc=MissRatioCurve.constant(0.25),
        reg=0.5, mlp=4.0, fp=1 * MiB,
    )
    p["streamcluster"] = _one_region(
        "streamcluster", "PARSEC", CodeRegion("pgain", "streamcluster.cpp", 652, 744),
        kinstr=5.0e8, ipc=2.0, mpki=20, mrc=_mrc(
            (1 * MiB, 0.95), (8 * MiB, 0.85), (20 * MiB, 0.74)
        ),
        reg=0.6, mlp=7.0, wf=0.2, fp=32 * MiB, bw_eff=0.75,
    )

    # ---------------- HPC ----------------
    p["lulesh"] = _one_region(
        "lulesh", "HPC", CodeRegion("EvalEOSForElems", "lulesh.cc", 1260, 1308),
        kinstr=6.5e8, ipc=2.4, mpki=10, mrc=_mrc(
            (1 * MiB, 0.8), (8 * MiB, 0.55), (20 * MiB, 0.42)
        ),
        reg=0.75, mlp=6.0, wf=0.2, fp=24 * MiB,
    )
    p["IRSmk"] = _one_region(
        "IRSmk", "HPC", CodeRegion("rmatmult3", "irsmk.c", 37, 118),
        kinstr=4.2e8, ipc=2.0, mpki=19, mrc=_mrc(
            (1 * MiB, 0.95), (20 * MiB, 0.86)
        ),
        reg=0.6, mlp=8.0, wf=0.15, fp=40 * MiB, bw_eff=0.8,
    )
    p["AMG2006"] = WorkloadProfile(
        name="AMG2006", suite="HPC", total_kinstr=4.0e8,
        regions=(
            RegionProfile(
                region=CodeRegion("setup_fine_grid", "amg_setup.c", 120, 168),
                weight=0.21, ipc_core=2.2, l2_mpki=3.0,
                mrc=_mrc((1 * MiB, 0.6), (8 * MiB, 0.3)),
                regularity=0.6, mlp=4.0, footprint_bytes=8 * MiB, serial=True,
            ),
            RegionProfile(
                region=CodeRegion("setup_coarse_hierarchy", "amg_setup.c", 200, 266),
                weight=0.18, ipc_core=2.2, l2_mpki=5.0,
                mrc=_mrc((1 * MiB, 0.65), (8 * MiB, 0.35)),
                regularity=0.6, mlp=4.0, footprint_bytes=8 * MiB, serial=True,
            ),
            RegionProfile(
                region=CodeRegion("vcycle_solve", "amg_solve.c", 77, 140),
                weight=0.61, ipc_core=2.0, l2_mpki=21,
                mrc=_mrc((1 * MiB, 0.9), (8 * MiB, 0.75), (20 * MiB, 0.62)),
                regularity=0.6, mlp=7.0, footprint_bytes=30 * MiB,
                bw_efficiency=0.85,
            ),
        ),
    )

    # ---------------- SPEC CPU2017 ----------------
    p["cactuBSSN"] = _one_region(
        "cactuBSSN", "SPEC CPU2017",
        CodeRegion("ML_BSSN_RHS", "ML_BSSN_EvolutionInterior.cc", 301, 402),
        kinstr=8.0e8, ipc=2.6, mpki=6, mrc=_mrc((1 * MiB, 0.7), (16 * MiB, 0.4)),
        reg=0.35, mlp=6.0, fp=16 * MiB,
    )
    p["xalancbmk"] = _one_region(
        "xalancbmk", "SPEC CPU2017",
        CodeRegion("transformNode", "XSLTEngineImpl.cpp", 611, 689),
        kinstr=6.0e8, ipc=2.0, mpki=5, mrc=_mrc((1 * MiB, 0.55), (8 * MiB, 0.25)),
        reg=0.1, mlp=1.8, fp=8 * MiB,
        scaling=ScalingModel(sync_cpi_coeff=0.02, sync_cpi_exp=1.3),
    )
    p["deepsjeng"] = _one_region(
        "deepsjeng", "SPEC CPU2017", CodeRegion("search", "search.cpp", 404, 498),
        kinstr=8.0e8, ipc=2.8, mpki=1.2, mrc=_mrc((1 * MiB, 0.35), (4 * MiB, 0.15)),
        reg=0.1, mlp=3.0, fp=3 * MiB,
    )
    p["fotonik3d"] = WorkloadProfile(
        name="fotonik3d", suite="SPEC CPU2017", total_kinstr=3.6e8,
        regions=(
            RegionProfile(
                region=CodeRegion("UUS", "update.F90", 33, 92),
                weight=0.9, ipc_core=1.0, l2_mpki=52,
                mrc=_mrc((1 * MiB, 0.92), (20 * MiB, 0.8)),
                regularity=0.55, mlp=5.0, write_fraction=0.35,
                footprint_bytes=48 * MiB, bw_efficiency=0.73,
            ),
            RegionProfile(
                region=CodeRegion("power_sum", "power.F90", 12, 30),
                weight=0.1, ipc_core=1.6, l2_mpki=12,
                mrc=_mrc((1 * MiB, 0.9), (20 * MiB, 0.8)),
                regularity=0.55, mlp=5.0, footprint_bytes=24 * MiB,
                bw_efficiency=0.73,
            ),
        ),
    )
    p["mcf"] = _one_region(
        "mcf", "SPEC CPU2017", CodeRegion("primal_bea_mpp", "pbeampp.c", 165, 230),
        kinstr=5.0e8, ipc=1.6, mpki=45, mrc=_mrc(
            (1 * MiB, 0.75), (8 * MiB, 0.5), (20 * MiB, 0.35)
        ),
        reg=0.25, mlp=5.0, fp=28 * MiB, bw_eff=0.85,
    )
    p["nab"] = _one_region(
        "nab", "SPEC CPU2017", CodeRegion("mme_nonbonded", "eff.c", 1907, 1988),
        kinstr=9.0e8, ipc=3.0, mpki=1.0, mrc=_mrc((1 * MiB, 0.6), (8 * MiB, 0.3)),
        reg=0.4, mlp=3.0, fp=8 * MiB,
    )

    # ---------------- mini-benchmarks ----------------
    p["Stream"] = _one_region(
        "Stream", "mini-benchmarks", CodeRegion("triad", "stream.c", 345, 348),
        kinstr=3.0e8, ipc=1.8, mpki=14.5, mrc=MissRatioCurve.constant(1.0),
        reg=1.0, mlp=10.0, wf=0.5, fp=64 * MiB,
    )
    p["Bandit"] = _one_region(
        "Bandit", "mini-benchmarks", CodeRegion("conflict_loop", "bandit.c", 22, 41),
        kinstr=3.0e8, ipc=2.0, mpki=40, mrc=MissRatioCurve.constant(1.0),
        reg=0.0, mlp=10.0, wf=0.0, fp=64 * KiB, bw_eff=0.82,
    )
    return p


_PROFILES: dict[str, WorkloadProfile] = _build_profiles()

#: The 25 applications of Table I, grouped by suite (display order).
SUITES: dict[str, tuple[str, ...]] = {
    "GeminiGraph": ("G-BC", "G-BFS", "G-CC", "G-PR", "G-SSSP"),
    "PowerGraph": ("P-CC", "P-PR", "P-SSSP"),
    "CNTK": ("CIFAR", "MNIST", "LSTM", "ATIS"),
    "PARSEC": ("blackscholes", "freqmine", "swaptions", "streamcluster"),
    "HPC": ("lulesh", "IRSmk", "AMG2006"),
    "SPEC CPU2017": ("cactuBSSN", "xalancbmk", "deepsjeng", "fotonik3d", "mcf", "nab"),
}

#: Table I's full roster (application order used on figure axes).
APPLICATIONS: tuple[str, ...] = tuple(
    name for suite in SUITES.values() for name in suite
)

#: Mini-benchmarks (Section III-B).
MINI_BENCHMARKS: tuple[str, ...] = ("Bandit", "Stream")


def calibrated_profile(name: str) -> WorkloadProfile:
    """The calibrated engine profile of one application."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"no calibrated profile for {name!r}; known: {sorted(_PROFILES)}"
        ) from None


def all_profiles() -> dict[str, WorkloadProfile]:
    """All 27 calibrated profiles keyed by name."""
    return dict(_PROFILES)
