"""GeminiGraph-style workloads: G-PR, G-BFS, G-CC, G-SSSP, G-BC.

Gemini (Zhu et al., OSDI'16) is a computation-centric graph system with
chunk-based vertex partitioning and a dense (pull) / sparse (push) dual
engine.  We model its five applications from the paper with real
algorithms over a CSR graph:

* **G-PR** — pull-mode PageRank.  The hot loop is the paper's Fig 9
  listing (``pagerank.c:63-70``): for every destination vertex, walk the
  in-edge list and gather ``curr[src]`` — sequential index reads plus an
  irregular value gather, the access pattern that makes graph analytics
  LLC/bandwidth victims.
* **G-BFS** — top-down frontier BFS.
* **G-CC**  — connected components by label propagation (on the
  symmetrized graph).
* **G-SSSP** — frontier Bellman-Ford with real edge weights.
* **G-BC**  — Brandes betweenness from sampled sources.

``run()`` executes the real algorithm (validated against networkx in the
test suite); ``trace()`` replays the same traversal as a line-address
stream for the trace-layer profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion
from repro.workloads.graph.csr import CSRGraph
from repro.workloads.graph.generate import friendster_mini

#: Instructions per traversed edge (index load, value load, ALU, branch).
_EDGE_IPA = 6.0
#: Vertices per emitted trace chunk.
_CHUNK = 512


def _gather_batches(
    amap: AddressMap,
    csr: CSRGraph,
    vertices: np.ndarray,
    *,
    value_array: str,
    region: int,
    write_array: str | None = None,
    ip_base: int = 100,
) -> list[AccessBatch]:
    """Trace of one pull-style edge sweep over ``vertices``.

    Per chunk: sequential ``indptr`` reads, sequential ``indices`` reads,
    an irregular gather from ``value_array`` and (optionally) a write per
    vertex to ``write_array`` — exactly the Fig 9 loop structure.
    """
    out: list[AccessBatch] = []
    for lo in range(0, len(vertices), _CHUNK):
        chunk = vertices[lo : lo + _CHUNK]
        out.append(
            AccessBatch.from_lines(
                amap.lines("indptr", chunk),
                ip=ip_base,
                instructions=2 * len(chunk),
                region=region,
            )
        )
        # Edge positions of the whole chunk, in traversal order.
        spans = [np.arange(csr.indptr[v], csr.indptr[v + 1]) for v in chunk]
        if spans:
            pos = np.concatenate(spans) if len(spans) > 1 else spans[0]
        else:  # pragma: no cover - empty chunk cannot happen
            pos = np.empty(0, dtype=np.int64)
        if len(pos):
            out.append(
                AccessBatch.from_lines(
                    amap.lines("indices", pos),
                    ip=ip_base + 1,
                    instructions=len(pos),
                    region=region,
                )
            )
            neigh = csr.indices[pos]
            out.append(
                AccessBatch.from_lines(
                    amap.lines(value_array, neigh),
                    ip=ip_base + 2,
                    instructions=int(len(neigh) * (_EDGE_IPA - 2)),
                    region=region,
                )
            )
        if write_array is not None:
            out.append(
                AccessBatch.from_lines(
                    amap.lines(write_array, chunk),
                    ip=ip_base + 3,
                    write=True,
                    instructions=2 * len(chunk),
                    region=region,
                )
            )
    return out


@dataclass
class GeminiWorkload:
    """Base class for the five Gemini applications."""

    name: ClassVar[str] = "G-BASE"
    suite: ClassVar[str] = "GeminiGraph"
    regions: ClassVar[tuple[CodeRegion, ...]] = ()

    graph: CSRGraph | None = None
    scale: float = 1.0
    seed: int = 7
    _amap: AddressMap = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.graph is None:
            self.graph = CSRGraph.from_edges(
                friendster_mini(self.scale, seed=self.seed), sort_neighbours=False
            )
        g = self.graph
        amap = AddressMap()
        amap.alloc("indptr", g.n_vertices + 1, 8)
        amap.alloc("indices", max(g.n_edges, 1), 8)
        amap.alloc("curr", g.n_vertices, 8)
        amap.alloc("next", g.n_vertices, 8)
        amap.alloc("weights", max(g.n_edges, 1), 8)
        self._amap = amap

    # Subclasses override:
    def run(self) -> object:  # pragma: no cover - abstract
        raise NotImplementedError

    def _trace_batches(self, seed: int) -> list[AccessBatch]:  # pragma: no cover
        raise NotImplementedError

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one execution."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)


class GeminiPageRank(GeminiWorkload):
    """G-PR: pull-mode PageRank with dangling-mass redistribution."""

    name = "G-PR"
    regions = (CodeRegion("pull_edge_loop", "pagerank.c", 63, 70),)

    damping: float = 0.85
    iterations: int = 10

    def run(self) -> np.ndarray:
        """Return the PageRank vector after ``iterations`` rounds."""
        g = self.graph
        n = g.n_vertices
        out_deg = g.out_degree().astype(np.float64)
        in_csr = g.reversed()
        rank = np.full(n, 1.0 / n)
        dangling = out_deg == 0
        for _ in range(self.iterations):
            contrib_per_v = np.where(dangling, 0.0, rank / np.maximum(out_deg, 1))
            contrib = contrib_per_v[in_csr.indices]
            sums = np.zeros(n)
            nonempty = np.flatnonzero(np.diff(in_csr.indptr) > 0)
            if len(nonempty):
                sums[nonempty] = np.add.reduceat(
                    contrib, in_csr.indptr[nonempty]
                )
            dangling_mass = rank[dangling].sum() / n
            rank = (1 - self.damping) / n + self.damping * (sums + dangling_mass)
        return rank

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        in_csr = self.graph.reversed()
        vertices = np.arange(self.graph.n_vertices, dtype=np.int64)
        out: list[AccessBatch] = []
        for _ in range(self.iterations):
            out.extend(
                _gather_batches(
                    self._amap, in_csr, vertices, value_array="curr",
                    write_array="next", region=0,
                )
            )
        return out


class GeminiBFS(GeminiWorkload):
    """G-BFS: direction-optimizing breadth-first search from ``root``.

    Gemini's dual engine switches between sparse (top-down push: scan
    the frontier's out-edges) and dense (bottom-up pull: every
    unvisited vertex scans its in-edges for a visited parent) — the
    Beamer-style optimization its near-linear scalability relies on.
    The switch triggers when the frontier exceeds ``dense_threshold``
    of the vertices.  Both modes produce identical levels (tested), and
    :attr:`mode_history` records the decision per depth.
    """

    name = "G-BFS"
    regions = (CodeRegion("frontier_expand", "bfs.c", 53, 61),)

    root: int = 0
    dense_threshold: float = 0.05

    def run(self) -> np.ndarray:
        """Return per-vertex BFS level (-1 = unreachable)."""
        g = self.graph
        rev = g.reversed()
        n = g.n_vertices
        level = np.full(n, -1, dtype=np.int64)
        level[self.root] = 0
        frontier = np.array([self.root], dtype=np.int64)
        depth = 0
        self.mode_history: list[str] = []
        while len(frontier):
            depth += 1
            if len(frontier) > self.dense_threshold * n:
                # Dense / bottom-up pull: unvisited vertices look for a
                # parent on the current frontier via their in-edges.
                self.mode_history.append("pull")
                on_frontier = np.zeros(n, dtype=bool)
                on_frontier[frontier] = True
                nxt: list[int] = []
                for v in np.flatnonzero(level < 0):
                    for u in rev.neighbours(int(v)):
                        if on_frontier[u]:
                            level[v] = depth
                            nxt.append(int(v))
                            break
            else:
                # Sparse / top-down push: expand the frontier's out-edges.
                self.mode_history.append("push")
                nxt = []
                for u in frontier:
                    for v in g.neighbours(int(u)):
                        if level[v] < 0:
                            level[v] = depth
                            nxt.append(int(v))
            frontier = np.array(sorted(set(nxt)), dtype=np.int64)
        return level

    def run_topdown_only(self) -> np.ndarray:
        """Classic top-down BFS (reference for the dual-mode tests)."""
        g = self.graph
        level = np.full(g.n_vertices, -1, dtype=np.int64)
        level[self.root] = 0
        frontier = np.array([self.root], dtype=np.int64)
        depth = 0
        while len(frontier):
            depth += 1
            nxt: list[int] = []
            for u in frontier:
                for v in g.neighbours(int(u)):
                    if level[v] < 0:
                        level[v] = depth
                        nxt.append(int(v))
            frontier = np.array(sorted(set(nxt)), dtype=np.int64)
        return level

    def _frontiers(self) -> list[np.ndarray]:
        levels = self.run()
        return [
            np.flatnonzero(levels == d).astype(np.int64)
            for d in range(int(levels.max()) + 1)
        ]

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        out: list[AccessBatch] = []
        for frontier in self._frontiers():
            out.extend(
                _gather_batches(
                    self._amap, self.graph, frontier, value_array="curr",
                    write_array="next", region=0, ip_base=200,
                )
            )
        return out


class GeminiCC(GeminiWorkload):
    """G-CC: connected components by min-label propagation on the
    symmetrized graph."""

    name = "G-CC"
    regions = (CodeRegion("label_propagate", "cc.c", 64, 72),)

    max_rounds: int = 64

    def _sym(self) -> CSRGraph:
        g = self.graph
        from repro.workloads.graph.csr import _expand_src
        from repro.workloads.graph.generate import EdgeList

        src = _expand_src(g)
        both = EdgeList(
            g.n_vertices,
            np.concatenate([src, g.indices]),
            np.concatenate([g.indices, src]),
        )
        return CSRGraph.from_edges(both, sort_neighbours=False)

    def run(self) -> np.ndarray:
        """Return per-vertex component labels (min vertex id in comp)."""
        sym = self._sym()
        labels = np.arange(sym.n_vertices, dtype=np.int64)
        for _ in range(self.max_rounds):
            neigh_lab = labels[sym.indices]
            mins = labels.copy()
            nonempty = np.flatnonzero(np.diff(sym.indptr) > 0)
            if len(nonempty):
                reduced = np.minimum.reduceat(neigh_lab, sym.indptr[nonempty])
                mins[nonempty] = np.minimum(mins[nonempty], reduced)
            if np.array_equal(mins, labels):
                break
            labels = mins
        return labels

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        sym = self._sym()
        vertices = np.arange(sym.n_vertices, dtype=np.int64)
        # Label propagation converges quickly; trace the active rounds.
        rounds = 6
        out: list[AccessBatch] = []
        for _ in range(rounds):
            out.extend(
                _gather_batches(
                    self._amap, self.graph, vertices, value_array="curr",
                    write_array="next", region=0, ip_base=300,
                )
            )
        return out


class GeminiSSSP(GeminiWorkload):
    """G-SSSP: frontier Bellman-Ford with uniform-random edge weights."""

    name = "G-SSSP"
    regions = (CodeRegion("relax_edges", "sssp.c", 65, 74),)

    root: int = 0

    def _weighted(self) -> CSRGraph:
        return self.graph.with_random_weights(seed=self.seed)

    def run(self) -> np.ndarray:
        """Return shortest distances from ``root`` (inf = unreachable)."""
        g = self._weighted()
        dist = np.full(g.n_vertices, np.inf)
        dist[self.root] = 0.0
        frontier = np.array([self.root], dtype=np.int64)
        while len(frontier):
            changed: list[int] = []
            for u in frontier:
                lo, hi = g.indptr[u], g.indptr[u + 1]
                for k in range(lo, hi):
                    v = int(g.indices[k])
                    nd = dist[u] + g.weights[k]
                    if nd < dist[v]:
                        dist[v] = nd
                        changed.append(v)
            frontier = np.array(sorted(set(changed)), dtype=np.int64)
        return dist

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        # Replay the frontier sequence of the real run.
        g = self._weighted()
        dist = np.full(g.n_vertices, np.inf)
        dist[self.root] = 0.0
        frontier = np.array([self.root], dtype=np.int64)
        out: list[AccessBatch] = []
        while len(frontier):
            out.extend(
                _gather_batches(
                    self._amap, self.graph, frontier, value_array="curr",
                    write_array="next", region=0, ip_base=400,
                )
            )
            changed: list[int] = []
            for u in frontier:
                lo, hi = g.indptr[u], g.indptr[u + 1]
                for k in range(lo, hi):
                    v = int(g.indices[k])
                    nd = dist[u] + g.weights[k]
                    if nd < dist[v]:
                        dist[v] = nd
                        changed.append(v)
            frontier = np.array(sorted(set(changed)), dtype=np.int64)
        return out


class GeminiBC(GeminiWorkload):
    """G-BC: Brandes betweenness centrality from ``n_sources`` roots."""

    name = "G-BC"
    regions = (CodeRegion("dependency_accum", "bc.c", 76, 88),)

    n_sources: int = 4

    def run(self) -> np.ndarray:
        """Return (partial) betweenness scores accumulated over sources."""
        g = self.graph
        n = g.n_vertices
        bc = np.zeros(n)
        sources = range(min(self.n_sources, n))
        for s in sources:
            # Forward phase: BFS orders, path counts sigma.
            sigma = np.zeros(n)
            sigma[s] = 1.0
            dist = np.full(n, -1, dtype=np.int64)
            dist[s] = 0
            order: list[int] = []
            frontier = [s]
            d = 0
            while frontier:
                order.extend(frontier)
                nxt: list[int] = []
                d += 1
                for u in frontier:
                    for v in g.neighbours(u):
                        v = int(v)
                        if dist[v] < 0:
                            dist[v] = d
                            nxt.append(v)
                        if dist[v] == d:
                            sigma[v] += sigma[u]
                frontier = sorted(set(nxt))
            # Backward phase: dependency accumulation.
            delta = np.zeros(n)
            for u in reversed(order):
                for v in g.neighbours(u):
                    v = int(v)
                    if dist[v] == dist[u] + 1 and sigma[v] > 0:
                        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
                if u != s:
                    bc[u] += delta[u]
        return bc

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        out: list[AccessBatch] = []
        bfs = GeminiBFS(graph=self.graph)
        for s in range(min(self.n_sources, self.graph.n_vertices)):
            bfs.root = s
            frontiers = bfs._frontiers()
            for frontier in frontiers:  # forward sweep
                out.extend(
                    _gather_batches(
                        self._amap, self.graph, frontier, value_array="curr",
                        region=0, ip_base=500,
                    )
                )
            for frontier in reversed(frontiers):  # backward sweep
                out.extend(
                    _gather_batches(
                        self._amap, self.graph, frontier, value_array="next",
                        write_array="curr", region=0, ip_base=510,
                    )
                )
        return out


def gemini_workloads(scale: float = 1.0, seed: int = 7) -> dict[str, GeminiWorkload]:
    """All five Gemini applications sharing one graph instance."""
    g = CSRGraph.from_edges(friendster_mini(scale, seed=seed), sort_neighbours=False)
    return {
        w.name: w
        for w in (
            GeminiPageRank(graph=g),
            GeminiBFS(graph=g),
            GeminiCC(graph=g),
            GeminiSSSP(graph=g),
            GeminiBC(graph=g),
        )
    }
