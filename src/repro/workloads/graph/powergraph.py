"""PowerGraph-style workloads: P-PR, P-SSSP, P-CC.

PowerGraph (Gonzalez et al., OSDI'12) executes vertex programs in the
Gather-Apply-Scatter (GAS) model with bulk-synchronous supersteps.  The
paper profiles P-PR's ``gather`` function (its Fig 10 listing,
``pagerank.c:63-66``) as the contentious region: it loads every in-edge
source's data — a massive irregular gather.

We implement a synchronous GAS engine over CSR and the three
applications the paper uses.  P-SSSP deliberately runs with *identical
edge weights*, reproducing the paper's observation that this unrealistic
assumption causes its poor scalability (every superstep re-relaxes the
whole edge set while the frontier advances one hop at a time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar

import numpy as np

from repro.trace.stream import AccessBatch, take
from repro.workloads.addr import AddressMap
from repro.workloads.base import CodeRegion
from repro.workloads.graph.csr import CSRGraph, _expand_src
from repro.workloads.graph.gemini import _gather_batches
from repro.workloads.graph.generate import EdgeList, friendster_mini


def gas_supersteps(
    in_csr: CSRGraph,
    init: np.ndarray,
    gather_reduce: Callable[[np.ndarray, CSRGraph, np.ndarray], np.ndarray],
    apply_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    max_iters: int,
    until_fixpoint: bool = False,
) -> tuple[np.ndarray, int]:
    """Run synchronous GAS supersteps.

    Args:
        in_csr: In-edge CSR (gather direction).
        init: Initial per-vertex data.
        gather_reduce: (data, in_csr, edge order) -> per-vertex
            accumulated gather value.
        apply_fn: (old data, accumulated) -> new data.
        max_iters: Superstep budget.
        until_fixpoint: Stop early once data stops changing.

    Returns:
        (final data, supersteps executed).
    """
    data = init.copy()
    steps = 0
    for _ in range(max_iters):
        acc = gather_reduce(data, in_csr, in_csr.indices)
        new = apply_fn(data, acc)
        steps += 1
        if until_fixpoint and np.array_equal(new, data):
            data = new
            break
        data = new
    return data, steps


def _segment_reduce(
    values: np.ndarray, indptr: np.ndarray, op: np.ufunc, empty: float
) -> np.ndarray:
    """Per-segment reduction over CSR spans (empty segments -> ``empty``)."""
    n = len(indptr) - 1
    out = np.full(n, empty, dtype=np.float64)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if len(nonempty) and len(values):
        out[nonempty] = op.reduceat(values, indptr[nonempty])
    return out


@dataclass
class PowerGraphWorkload:
    """Base class for the three PowerGraph applications."""

    name: ClassVar[str] = "P-BASE"
    suite: ClassVar[str] = "PowerGraph"
    regions: ClassVar[tuple[CodeRegion, ...]] = ()

    graph: CSRGraph | None = None
    scale: float = 1.0
    seed: int = 7
    _amap: AddressMap = field(init=False, repr=False)
    _in_csr: CSRGraph = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.graph is None:
            self.graph = CSRGraph.from_edges(
                friendster_mini(self.scale, seed=self.seed), sort_neighbours=False
            )
        self._in_csr = self.graph.reversed()
        amap = AddressMap(base_line=1 << 24)
        g = self.graph
        amap.alloc("indptr", g.n_vertices + 1, 8)
        # Sized for the symmetrized in-edge CSR (P-CC doubles the edges).
        amap.alloc("indices", max(2 * g.n_edges, 1), 8)
        amap.alloc("curr", g.n_vertices, 8)
        amap.alloc("next", g.n_vertices, 8)
        amap.alloc("edge_data", max(2 * g.n_edges, 1), 8)
        self._amap = amap

    def run(self) -> object:  # pragma: no cover - abstract
        raise NotImplementedError

    def _superstep_count(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _trace_batches(self, seed: int) -> list[AccessBatch]:
        """GAS gather traces: every superstep sweeps all in-edges."""
        vertices = np.arange(self.graph.n_vertices, dtype=np.int64)
        out: list[AccessBatch] = []
        for _ in range(self._superstep_count()):
            out.extend(
                _gather_batches(
                    self._amap, self._in_csr, vertices, value_array="curr",
                    write_array="next", region=0, ip_base=600,
                )
            )
        return out

    def trace(self, *, max_accesses: int | None = None, seed: int = 0):
        """Memory-access trace of one execution."""
        batches = self._trace_batches(seed)
        if max_accesses is None:
            yield from batches
        else:
            yield from take(iter(batches), max_accesses)


class PowerGraphPageRank(PowerGraphWorkload):
    """P-PR: GAS PageRank; the `gather` region is the paper's Fig 10."""

    name = "P-PR"
    regions = (CodeRegion("gather", "pagerank.c", 63, 66),)

    damping: float = 0.85
    iterations: int = 10

    def run(self) -> np.ndarray:
        """PageRank vector via GAS supersteps."""
        g = self.graph
        n = g.n_vertices
        out_deg = g.out_degree().astype(np.float64)
        dangling = out_deg == 0

        def gather_reduce(data, in_csr, order):
            # gather(edge) = edge.source().data() / edge.source().num_out_edges()
            contrib_v = np.where(dangling, 0.0, data / np.maximum(out_deg, 1.0))
            return _segment_reduce(contrib_v[in_csr.indices], in_csr.indptr, np.add, 0.0)

        def apply_fn(old, acc):
            dangling_mass = old[dangling].sum() / n
            return (1 - self.damping) / n + self.damping * (acc + dangling_mass)

        data, _ = gas_supersteps(
            self._in_csr, np.full(n, 1.0 / n), gather_reduce, apply_fn,
            max_iters=self.iterations,
        )
        return data

    def _superstep_count(self) -> int:
        return self.iterations


class PowerGraphSSSP(PowerGraphWorkload):
    """P-SSSP with identical (unit) edge weights — the paper's
    low-scalability culprit: the frontier advances one hop per
    superstep while every superstep gathers the full edge set."""

    name = "P-SSSP"
    regions = (CodeRegion("gather_min_dist", "sssp.c", 58, 66),)

    root: int = 0
    max_iters: int = 128

    def run(self) -> np.ndarray:
        """Distances from ``root`` under unit weights (= hop counts)."""
        n = self.graph.n_vertices
        init = np.full(n, np.inf)
        init[self.root] = 0.0

        def gather_reduce(data, in_csr, order):
            cand = data[in_csr.indices] + 1.0  # identical weight = 1
            return _segment_reduce(cand, in_csr.indptr, np.minimum, np.inf)

        def apply_fn(old, acc):
            return np.minimum(old, acc)

        data, self._steps = gas_supersteps(
            self._in_csr, init, gather_reduce, apply_fn,
            max_iters=self.max_iters, until_fixpoint=True,
        )
        return data

    def _superstep_count(self) -> int:
        if not hasattr(self, "_steps"):
            self.run()
        return self._steps


class PowerGraphCC(PowerGraphWorkload):
    """P-CC: min-label propagation over the symmetrized graph."""

    name = "P-CC"
    regions = (CodeRegion("gather_min_label", "cc.c", 55, 62),)

    max_iters: int = 128

    def __post_init__(self) -> None:
        super().__post_init__()
        src = _expand_src(self.graph)
        sym = EdgeList(
            self.graph.n_vertices,
            np.concatenate([src, self.graph.indices]),
            np.concatenate([self.graph.indices, src]),
        )
        self._in_csr = CSRGraph.from_edges(sym, sort_neighbours=False)

    def run(self) -> np.ndarray:
        """Component labels (min vertex id per component)."""
        n = self.graph.n_vertices
        init = np.arange(n, dtype=np.float64)

        def gather_reduce(data, in_csr, order):
            return _segment_reduce(data[in_csr.indices], in_csr.indptr, np.minimum, np.inf)

        def apply_fn(old, acc):
            return np.minimum(old, acc)

        data, self._steps = gas_supersteps(
            self._in_csr, init, gather_reduce, apply_fn,
            max_iters=self.max_iters, until_fixpoint=True,
        )
        return data.astype(np.int64)

    def _superstep_count(self) -> int:
        if not hasattr(self, "_steps"):
            self.run()
        return self._steps


def powergraph_workloads(scale: float = 1.0, seed: int = 7) -> dict[str, PowerGraphWorkload]:
    """The three PowerGraph applications sharing one graph instance."""
    g = CSRGraph.from_edges(friendster_mini(scale, seed=seed), sort_neighbours=False)
    return {
        w.name: w
        for w in (
            PowerGraphPageRank(graph=g),
            PowerGraphSSSP(graph=g),
            PowerGraphCC(graph=g),
        )
    }
