"""Compressed Sparse Row graph representation.

Both graph engines (Gemini-style and PowerGraph-style) run over this
structure.  ``out`` CSR stores forward edges (push direction), and
:meth:`CSRGraph.reversed` builds the in-edge CSR used by pull-mode
PageRank — the access pattern of the paper's Fig 9 listing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.graph.generate import EdgeList


@dataclass(frozen=True)
class CSRGraph:
    """CSR adjacency: ``indices[indptr[v]:indptr[v+1]]`` are v's
    out-neighbours; optional per-edge weights align with ``indices``."""

    n_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.indptr) != self.n_vertices + 1:
            raise WorkloadError("indptr length must be n_vertices + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise WorkloadError("indptr must start at 0 and end at n_edges")
        if np.any(np.diff(self.indptr) < 0):
            raise WorkloadError("indptr must be non-decreasing")
        if len(self.indices) and (
            int(self.indices.min()) < 0 or int(self.indices.max()) >= self.n_vertices
        ):
            raise WorkloadError("neighbour index out of range")
        if self.weights is not None and len(self.weights) != len(self.indices):
            raise WorkloadError("weights must align with indices")

    @property
    def n_edges(self) -> int:
        return len(self.indices)

    def out_degree(self) -> np.ndarray:
        """Out-degree per vertex."""
        return np.diff(self.indptr)

    def neighbours(self, v: int) -> np.ndarray:
        """Out-neighbours of one vertex."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    @staticmethod
    def from_edges(
        edges: EdgeList, *, weights: np.ndarray | None = None, sort_neighbours: bool = True
    ) -> "CSRGraph":
        """Build CSR from an edge list (stable counting sort by source)."""
        n = edges.n_vertices
        order = np.argsort(edges.src, kind="stable")
        src_sorted = edges.src[order]
        indices = edges.dst[order].astype(np.int64)
        w = weights[order].astype(np.float64) if weights is not None else None
        counts = np.bincount(src_sorted, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if sort_neighbours:
            for v in range(n):
                lo, hi = indptr[v], indptr[v + 1]
                if hi - lo > 1:
                    sub = np.argsort(indices[lo:hi], kind="stable")
                    indices[lo:hi] = indices[lo:hi][sub]
                    if w is not None:
                        w[lo:hi] = w[lo:hi][sub]
        return CSRGraph(n, indptr, indices, w)

    def reversed(self) -> "CSRGraph":
        """The transpose graph (in-edges become out-edges)."""
        rev_edges = EdgeList(self.n_vertices, self.indices, _expand_src(self))
        return CSRGraph.from_edges(rev_edges, weights=self.weights)

    def with_unit_weights(self) -> "CSRGraph":
        """Copy with all-ones weights — the paper's P-SSSP pitfall
        ('unrealistic assumption that all graph edges have identical
        weight', Section IV-A)."""
        return CSRGraph(
            self.n_vertices,
            self.indptr,
            self.indices,
            np.ones(self.n_edges, dtype=np.float64),
        )

    def with_random_weights(self, *, lo: float = 1.0, hi: float = 64.0, seed: int = 0) -> "CSRGraph":
        """Copy with uniform random edge weights."""
        rng = np.random.default_rng(seed)
        return CSRGraph(
            self.n_vertices,
            self.indptr,
            self.indices,
            rng.uniform(lo, hi, size=self.n_edges),
        )


def _expand_src(csr: CSRGraph) -> np.ndarray:
    """Per-edge source vertex array (inverse of the indptr compression)."""
    return np.repeat(
        np.arange(csr.n_vertices, dtype=np.int64), np.diff(csr.indptr)
    )
