"""Synthetic power-law graph generation.

The paper evaluates graph workloads on the friendster social network
(65.6 M vertices, 1.8 B edges), which is not redistributable here; we
generate a scaled-down Chung-Lu graph with the same qualitative
properties — heavy-tailed degree distribution and no spatial locality
between a vertex and its neighbours — which are exactly what makes
graph analytics "vulnerable to cache and memory contention" (paper
Section I).  ``friendster_mini`` fixes the default scale used across
tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class EdgeList:
    """A directed multigraph as parallel endpoint arrays."""

    n_vertices: int
    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        if self.n_vertices <= 0:
            raise WorkloadError("graph needs at least one vertex")
        if len(self.src) != len(self.dst):
            raise WorkloadError("ragged edge list")
        for arr in (self.src, self.dst):
            if len(arr) and (int(arr.min()) < 0 or int(arr.max()) >= self.n_vertices):
                raise WorkloadError("edge endpoint out of range")

    @property
    def n_edges(self) -> int:
        return len(self.src)


def chung_lu(
    n_vertices: int,
    n_edges: int,
    *,
    alpha: float = 2.1,
    seed: int = 0,
    remove_self_loops: bool = True,
) -> EdgeList:
    """Chung-Lu power-law graph: endpoints drawn with probability
    proportional to Zipf(alpha) weights, then label-shuffled so vertex
    ids carry no locality.

    Args:
        n_vertices: Vertex count.
        n_edges: Directed edge count (multi-edges possible, like real
            crawls before dedup).
        alpha: Degree-distribution exponent (~2.1 for social networks).
        seed: RNG seed; generation is fully deterministic.
    """
    if n_vertices <= 1:
        raise WorkloadError("need at least two vertices")
    if n_edges <= 0:
        raise WorkloadError("need at least one edge")
    if alpha <= 1.0:
        raise WorkloadError("alpha must exceed 1 for a normalizable tail")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (alpha - 1.0))  # w_i ~ i^{-1/(alpha-1)}
    probs = weights / weights.sum()
    # Shuffle labels so high-degree vertices are scattered over the id
    # space (no artificial cache locality on hot vertices).
    perm = rng.permutation(n_vertices)
    src = perm[rng.choice(n_vertices, size=n_edges, p=probs)]
    dst = perm[rng.choice(n_vertices, size=n_edges, p=probs)]
    if remove_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if len(src) == 0:
            raise WorkloadError("all sampled edges were self-loops")
    return EdgeList(n_vertices, src.astype(np.int64), dst.astype(np.int64))


def friendster_mini(scale: float = 1.0, seed: int = 7) -> EdgeList:
    """The repo's stand-in for the friendster input: ~4k vertices and
    ~110k directed edges at scale 1.0 (the 65.6M/1.8B original shrunk
    ~16000x, preserving the ~27 edges/vertex density and degree skew)."""
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    n_v = max(int(4096 * scale), 16)
    n_e = max(int(n_v * 27), 32)
    return chung_lu(n_v, n_e, alpha=2.1, seed=seed)


def degree_histogram(edges: EdgeList) -> np.ndarray:
    """Out-degree per vertex (skew checks in tests)."""
    return np.bincount(edges.src, minlength=edges.n_vertices)
