"""Graph-analytics workloads (GeminiGraph and PowerGraph suites)."""

from repro.workloads.graph.csr import CSRGraph
from repro.workloads.graph.gemini import (
    GeminiBC,
    GeminiBFS,
    GeminiCC,
    GeminiPageRank,
    GeminiSSSP,
    GeminiWorkload,
    gemini_workloads,
)
from repro.workloads.graph.generate import (
    EdgeList,
    chung_lu,
    degree_histogram,
    friendster_mini,
)
from repro.workloads.graph.powergraph import (
    PowerGraphCC,
    PowerGraphPageRank,
    PowerGraphSSSP,
    PowerGraphWorkload,
    gas_supersteps,
    powergraph_workloads,
)

__all__ = [
    "CSRGraph",
    "EdgeList",
    "GeminiBC",
    "GeminiBFS",
    "GeminiCC",
    "GeminiPageRank",
    "GeminiSSSP",
    "GeminiWorkload",
    "PowerGraphCC",
    "PowerGraphPageRank",
    "PowerGraphSSSP",
    "PowerGraphWorkload",
    "chung_lu",
    "degree_histogram",
    "friendster_mini",
    "gas_supersteps",
    "gemini_workloads",
    "powergraph_workloads",
]
