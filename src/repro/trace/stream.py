"""Memory-access trace representation.

A trace is an iterable of :class:`AccessBatch` objects — struct-of-array
chunks holding instruction pointers, cache-line addresses and write
flags, plus the number of dynamic instructions the chunk represents
(memory instructions *and* the compute instructions between them) and a
code-region id for attribution.  Batching keeps the numpy-vectorized
generators efficient while the cache model consumes accesses one by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class AccessBatch:
    """One chunk of a memory-access trace.

    Attributes:
        ips: Instruction-pointer ids, one per access (drives IP-stride
            prefetch detection; synthetic kernels use small stable ids).
        lines: Cache-line addresses, one per access.
        writes: Write flag per access (False = load).
        instructions: Dynamic instructions this chunk represents; must be
            at least ``len(lines)`` (every access is an instruction).
        region: Code-region index for profiler attribution.
    """

    ips: np.ndarray
    lines: np.ndarray
    writes: np.ndarray
    instructions: int = 0
    region: int = 0

    def __post_init__(self) -> None:
        n = len(self.lines)
        if len(self.ips) != n or len(self.writes) != n:
            raise TraceError(
                f"ragged batch: ips={len(self.ips)} lines={n} writes={len(self.writes)}"
            )
        if n and int(self.lines.min()) < 0:
            raise TraceError("negative line address in batch")
        inst = self.instructions if self.instructions else n
        if inst < n:
            raise TraceError(
                f"batch claims {inst} instructions for {n} memory accesses"
            )
        object.__setattr__(self, "instructions", inst)

    def __len__(self) -> int:
        return len(self.lines)

    @staticmethod
    def from_lines(
        lines: np.ndarray | list[int],
        *,
        ip: int = 0,
        write: bool = False,
        instructions: int = 0,
        region: int = 0,
    ) -> "AccessBatch":
        """Build a batch of same-IP, same-direction accesses."""
        arr = np.asarray(lines, dtype=np.int64)
        return AccessBatch(
            ips=np.full(arr.shape, ip, dtype=np.int64),
            lines=arr,
            writes=np.full(arr.shape, write, dtype=bool),
            instructions=instructions,
            region=region,
        )


#: A trace is any iterable of batches.
TraceSource = Iterable[AccessBatch]


def concat_lines(trace: TraceSource) -> np.ndarray:
    """Flatten a trace into one line-address array (order preserved)."""
    parts = [b.lines for b in trace]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def total_accesses(trace: TraceSource) -> int:
    """Number of memory accesses in a trace (consumes the iterable)."""
    return sum(len(b) for b in trace)


def take(trace: TraceSource, max_accesses: int) -> Iterator[AccessBatch]:
    """Yield batches until ``max_accesses`` accesses have been produced,
    truncating the final batch if needed."""
    if max_accesses <= 0:
        raise TraceError("max_accesses must be positive")
    remaining = max_accesses
    for batch in trace:
        if len(batch) <= remaining:
            yield batch
            remaining -= len(batch)
        else:
            frac = remaining / len(batch)
            yield AccessBatch(
                ips=batch.ips[:remaining],
                lines=batch.lines[:remaining],
                writes=batch.writes[:remaining],
                instructions=max(remaining, int(batch.instructions * frac)),
                region=batch.region,
            )
            remaining = 0
        if remaining == 0:
            return


@dataclass
class TraceStats:
    """Aggregate shape statistics of a trace (cheap, one pass)."""

    accesses: int = 0
    instructions: int = 0
    writes: int = 0
    distinct_lines: int = 0
    #: Fraction of accesses whose line equals or is adjacent (+/-1) to
    #: the previous access's line — a spatial-locality proxy used in
    #: tests (an 8-byte-element array scan repeats each 64 B line 8x).
    sequential_fraction: float = 0.0
    _seen: set = field(default_factory=set, repr=False)

    @staticmethod
    def collect(trace: TraceSource) -> "TraceStats":
        """Single-pass statistics over a trace."""
        st = TraceStats()
        prev_last: int | None = None
        seq = 0
        for batch in trace:
            st.accesses += len(batch)
            st.instructions += batch.instructions
            st.writes += int(batch.writes.sum())
            st._seen.update(np.unique(batch.lines).tolist())
            if len(batch):
                deltas = np.diff(batch.lines)
                seq += int((np.abs(deltas) <= 1).sum())
                if prev_last is not None and abs(int(batch.lines[0]) - prev_last) <= 1:
                    seq += 1
                prev_last = int(batch.lines[-1])
        st.distinct_lines = len(st._seen)
        st.sequential_fraction = seq / st.accesses if st.accesses else 0.0
        return st

    @property
    def footprint_bytes(self) -> int:
        """Distinct-line footprint in bytes (64-byte lines)."""
        return self.distinct_lines * 64
