"""Synthetic access-pattern generators.

These are the building blocks the workload models compose: sequential
streams (STREAM-like), constant strides, uniform random, Zipf-skewed
(graph vertex popularity), pointer chases (mcf-like dependent loads) and
same-set conflict chases (the Bandit mini-benchmark's defining trick).

All generators are deterministic given a seed, yield
:class:`~repro.trace.stream.AccessBatch` chunks, and take an
``instructions_per_access`` knob so a workload can express its compute
density (blackscholes executes hundreds of FLOPs per touched line;
pointer chasing executes almost none).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import TraceError
from repro.trace.stream import AccessBatch

#: Default chunk size for generated batches.
_BATCH = 4096


def _check_positive(**kwargs: int | float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise TraceError(f"{name} must be positive, got {value}")


def _emit(
    lines: np.ndarray,
    *,
    ip: int,
    write_ratio: float,
    instructions_per_access: float,
    region: int,
    rng: np.random.Generator,
) -> Iterator[AccessBatch]:
    for start in range(0, len(lines), _BATCH):
        chunk = lines[start : start + _BATCH]
        writes = (
            rng.random(len(chunk)) < write_ratio
            if write_ratio > 0
            else np.zeros(len(chunk), dtype=bool)
        )
        yield AccessBatch(
            ips=np.full(len(chunk), ip, dtype=np.int64),
            lines=chunk.astype(np.int64),
            writes=writes,
            instructions=max(len(chunk), int(len(chunk) * instructions_per_access)),
            region=region,
        )


def sequential(
    n: int,
    *,
    start_line: int = 0,
    ip: int = 1,
    write_ratio: float = 0.0,
    instructions_per_access: float = 2.0,
    region: int = 0,
    seed: int = 0,
) -> Iterator[AccessBatch]:
    """Perfectly sequential line stream — the most prefetchable pattern."""
    _check_positive(n=n)
    rng = np.random.default_rng(seed)
    lines = start_line + np.arange(n, dtype=np.int64)
    yield from _emit(
        lines,
        ip=ip,
        write_ratio=write_ratio,
        instructions_per_access=instructions_per_access,
        region=region,
        rng=rng,
    )


def strided(
    n: int,
    stride_lines: int,
    *,
    start_line: int = 0,
    ip: int = 2,
    write_ratio: float = 0.0,
    instructions_per_access: float = 2.0,
    region: int = 0,
    seed: int = 0,
) -> Iterator[AccessBatch]:
    """Constant-stride stream (IP-stride prefetcher food)."""
    _check_positive(n=n)
    if stride_lines == 0:
        raise TraceError("stride must be non-zero")
    lines = start_line + stride_lines * np.arange(n, dtype=np.int64)
    if lines.min() < 0:
        raise TraceError("strided generator produced negative lines")
    rng = np.random.default_rng(seed)
    yield from _emit(
        lines,
        ip=ip,
        write_ratio=write_ratio,
        instructions_per_access=instructions_per_access,
        region=region,
        rng=rng,
    )


def random_uniform(
    n: int,
    footprint_lines: int,
    *,
    base_line: int = 0,
    ip: int = 3,
    write_ratio: float = 0.0,
    instructions_per_access: float = 2.0,
    region: int = 0,
    seed: int = 0,
) -> Iterator[AccessBatch]:
    """Uniform random accesses within a footprint — prefetch-immune."""
    _check_positive(n=n, footprint_lines=footprint_lines)
    rng = np.random.default_rng(seed)
    lines = base_line + rng.integers(0, footprint_lines, size=n, dtype=np.int64)
    yield from _emit(
        lines,
        ip=ip,
        write_ratio=write_ratio,
        instructions_per_access=instructions_per_access,
        region=region,
        rng=rng,
    )


def zipf(
    n: int,
    footprint_lines: int,
    *,
    alpha: float = 1.1,
    base_line: int = 0,
    ip: int = 4,
    write_ratio: float = 0.0,
    instructions_per_access: float = 2.0,
    region: int = 0,
    seed: int = 0,
) -> Iterator[AccessBatch]:
    """Zipf-skewed accesses — hot-vertex behaviour of graph analytics.

    Ranks are drawn with probability proportional to 1/rank^alpha and
    shuffled onto line addresses so hotness is not spatially clustered.
    """
    _check_positive(n=n, footprint_lines=footprint_lines, alpha=alpha)
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, footprint_lines + 1, dtype=np.float64)
    probs = ranks**-alpha
    probs /= probs.sum()
    perm = rng.permutation(footprint_lines)
    draws = rng.choice(footprint_lines, size=n, p=probs)
    lines = base_line + perm[draws].astype(np.int64)
    yield from _emit(
        lines,
        ip=ip,
        write_ratio=write_ratio,
        instructions_per_access=instructions_per_access,
        region=region,
        rng=rng,
    )


def pointer_chase(
    n: int,
    footprint_lines: int,
    *,
    base_line: int = 0,
    ip: int = 5,
    instructions_per_access: float = 1.5,
    region: int = 0,
    seed: int = 0,
) -> Iterator[AccessBatch]:
    """Dependent-load chase over a random permutation cycle.

    Every access's address comes from the previous load — no spatial
    locality, no stride for the prefetchers to learn, serialized by
    construction (mcf/xalancbmk behaviour).
    """
    _check_positive(n=n, footprint_lines=footprint_lines)
    rng = np.random.default_rng(seed)
    # A single n-cycle permutation guarantees full-footprint coverage.
    order = rng.permutation(footprint_lines)
    nxt = np.empty(footprint_lines, dtype=np.int64)
    nxt[order[:-1]] = order[1:]
    nxt[order[-1]] = order[0]
    lines = np.empty(n, dtype=np.int64)
    cur = int(order[0])
    for i in range(n):
        lines[i] = cur
        cur = int(nxt[cur])
    lines += base_line
    yield from _emit(
        lines,
        ip=ip,
        write_ratio=0.0,
        instructions_per_access=instructions_per_access,
        region=region,
        rng=rng,
    )


def conflict_chase(
    n: int,
    *,
    n_sets: int = 16384,
    base_line: int = 0,
    ip: int = 6,
    instructions_per_access: float = 1.2,
    region: int = 0,
    seed: int = 0,
) -> Iterator[AccessBatch]:
    """Bandit-style stream: consecutive accesses map to the *same* cache
    set, so each conflicts with the previous one and every access goes
    to main memory while occupying almost no cache capacity.

    ``n_sets`` should be the LLC set count; line addresses step by
    exactly ``n_sets`` so the set index never changes.
    """
    _check_positive(n=n, n_sets=n_sets)
    rng = np.random.default_rng(seed)
    lines = base_line + np.arange(n, dtype=np.int64) * n_sets
    yield from _emit(
        lines,
        ip=ip,
        write_ratio=0.0,
        instructions_per_access=instructions_per_access,
        region=region,
        rng=rng,
    )


def interleave(*traces: Iterator[AccessBatch]) -> Iterator[AccessBatch]:
    """Round-robin interleave of several traces, batch by batch, until
    all are exhausted — crude phase mixing for tests."""
    sources = [iter(t) for t in traces]
    while sources:
        alive = []
        for src in sources:
            batch = next(src, None)
            if batch is not None:
                yield batch
                alive.append(src)
        sources = alive
