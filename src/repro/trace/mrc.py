"""Miss-ratio curves (MRC).

A :class:`MissRatioCurve` maps an allocated LLC capacity (bytes) to the
demand miss ratio of the traffic reaching the LLC.  The engine consults
it at every co-run step: when a neighbour squeezes an application's LLC
share, the MRC says how many additional misses that costs — the paper's
central victim mechanism (Figs 7c, 8c).

Curves come from two places:

* measured — :meth:`MissRatioCurve.from_reuse_distances` converts the
  profiler's stack-distance histogram into an exact curve;
* calibrated — :meth:`MissRatioCurve.from_points` interpolates a small
  table of (capacity, ratio) anchors (log-capacity, linear-ratio), used
  by the per-application calibration data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.reuse import COLD
from repro.units import CACHE_LINE, MiB


@dataclass(frozen=True)
class MissRatioCurve:
    """Monotone non-increasing miss ratio as a function of capacity.

    Samples are interpolated linearly in log2(capacity); queries outside
    the sampled range clamp to the end values.
    """

    capacities_bytes: np.ndarray
    ratios: np.ndarray

    def __post_init__(self) -> None:
        caps = np.asarray(self.capacities_bytes, dtype=np.float64)
        ratios = np.asarray(self.ratios, dtype=np.float64)
        if caps.ndim != 1 or caps.shape != ratios.shape or len(caps) == 0:
            raise TraceError("MRC needs matching, non-empty sample arrays")
        if np.any(caps <= 0):
            raise TraceError("MRC capacities must be positive")
        if np.any(np.diff(caps) <= 0):
            raise TraceError("MRC capacities must be strictly increasing")
        if np.any(ratios < 0) or np.any(ratios > 1):
            raise TraceError("MRC ratios must lie in [0, 1]")
        if np.any(np.diff(ratios) > 1e-12):
            raise TraceError("MRC must be non-increasing in capacity")
        object.__setattr__(self, "capacities_bytes", caps)
        object.__setattr__(self, "ratios", ratios)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_points(points: list[tuple[float, float]]) -> "MissRatioCurve":
        """Build from (capacity_bytes, miss_ratio) anchor points."""
        pts = sorted(points)
        caps = np.array([p[0] for p in pts], dtype=np.float64)
        ratios = np.array([p[1] for p in pts], dtype=np.float64)
        return MissRatioCurve(caps, ratios)

    @staticmethod
    def constant(ratio: float) -> "MissRatioCurve":
        """Capacity-insensitive curve (streaming data: misses regardless)."""
        return MissRatioCurve(
            np.array([CACHE_LINE, 64 * MiB], dtype=np.float64),
            np.array([ratio, ratio], dtype=np.float64),
        )

    @staticmethod
    def from_reuse_distances(
        distances: np.ndarray,
        *,
        line_bytes: int = CACHE_LINE,
        n_samples: int = 48,
    ) -> "MissRatioCurve":
        """Exact curve from stack distances, sampled geometrically.

        Cold accesses count as misses at every capacity, so the curve
        floors at the compulsory miss ratio.
        """
        distances = np.asarray(distances)
        if len(distances) == 0:
            raise TraceError("cannot build an MRC from an empty trace")
        n = len(distances)
        cold = int((distances == COLD).sum())
        finite = np.sort(distances[distances != COLD])
        max_lines = max(int(finite[-1]) + 1 if len(finite) else 1, 2)
        caps_lines = np.unique(
            np.geomspace(1, max_lines, num=n_samples).astype(np.int64)
        )
        # misses(C) = cold + #{d >= C}; searchsorted gives #{d < C}.
        below = np.searchsorted(finite, caps_lines, side="left")
        ratios = (cold + (len(finite) - below)) / n
        caps_bytes = caps_lines.astype(np.float64) * line_bytes
        return MissRatioCurve(caps_bytes, ratios.astype(np.float64))

    # -- queries -----------------------------------------------------------

    def miss_ratio(self, capacity_bytes: float) -> float:
        """Miss ratio at an allocated capacity (clamped interpolation)."""
        if capacity_bytes <= 0:
            # Zero allocation: everything that would have hit now misses.
            return float(self.ratios[0])
        x = np.log2(capacity_bytes)
        xs = np.log2(self.capacities_bytes)
        return float(np.interp(x, xs, self.ratios))

    def miss_ratios(self, capacities_bytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`miss_ratio`."""
        caps = np.maximum(np.asarray(capacities_bytes, dtype=np.float64), 1.0)
        return np.interp(np.log2(caps), np.log2(self.capacities_bytes), self.ratios)

    @property
    def compulsory_ratio(self) -> float:
        """Miss ratio with unbounded capacity (cold/streaming floor)."""
        return float(self.ratios[-1])

    @property
    def footprint_bytes(self) -> float:
        """Capacity beyond which extra space buys (almost) nothing:
        the smallest sampled capacity within 1% of the floor."""
        floor = self.compulsory_ratio
        ok = np.flatnonzero(self.ratios <= floor + 0.01)
        return float(self.capacities_bytes[ok[0]])

    def marginal_utility(self, capacity_bytes: float, delta: float = 0.1) -> float:
        """Miss-ratio reduction per byte around a capacity (finite
        difference over +/-``delta`` in log space); used by the LLC
        sharing model to decide who benefits from cache."""
        lo = self.miss_ratio(capacity_bytes * (1 - delta))
        hi = self.miss_ratio(capacity_bytes * (1 + delta))
        span = 2 * delta * capacity_bytes
        return max(0.0, (lo - hi) / span) if span > 0 else 0.0
