"""Exact LRU stack-distance (reuse-distance) computation.

The stack distance of an access is the number of *distinct* other lines
touched since the previous access to the same line; an access hits in a
fully-associative LRU cache of ``C`` lines iff its distance is < ``C``.
Stack distances are the standard bridge from a trace to a miss-ratio
curve (Mattson et al., 1970), which is how the profiler characterizes a
workload's LLC behaviour.

The implementation is the classic O(N log N) algorithm: a Fenwick tree
over trace positions holds a 1 at the most recent position of every
line; the distance of a reuse is the number of marks strictly between
the previous and current positions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError

#: Distance reported for cold (first-ever) accesses.
COLD = -1


class _Fenwick:
    """Binary indexed tree over ``n`` positions with +/-1 updates."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of positions [0, i]."""
        i += 1
        s = 0
        tree = self.tree
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return int(s)


def reuse_distances(lines: np.ndarray) -> np.ndarray:
    """Exact stack distance per access; ``COLD`` (-1) for first touches.

    Args:
        lines: 1-D integer array of line addresses in access order.

    Returns:
        int64 array of the same length.
    """
    lines = np.asarray(lines)
    if lines.ndim != 1:
        raise TraceError("lines must be a 1-D array")
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    fen = _Fenwick(n)
    last: dict[int, int] = {}
    for t in range(n):
        x = int(lines[t])
        p = last.get(x)
        if p is None:
            out[t] = COLD
        else:
            # Marks strictly between p and t = distinct lines since p.
            out[t] = fen.prefix(t - 1) - fen.prefix(p)
            fen.add(p, -1)
        fen.add(t, +1)
        last[x] = t
    return out


def reuse_distances_bruteforce(lines: np.ndarray) -> np.ndarray:
    """O(N^2) reference implementation for tests."""
    lines = np.asarray(lines)
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    for t in range(n):
        x = int(lines[t])
        prev = None
        for p in range(t - 1, -1, -1):
            if int(lines[p]) == x:
                prev = p
                break
        if prev is None:
            out[t] = COLD
        else:
            out[t] = len({int(v) for v in lines[prev + 1 : t]} - {x})
    return out


def miss_ratio_at(distances: np.ndarray, capacity_lines: int) -> float:
    """Exact fully-associative LRU miss ratio at a capacity, from distances.

    Cold accesses always miss; a reuse misses iff distance >= capacity.
    """
    if capacity_lines <= 0:
        raise TraceError("capacity must be positive")
    distances = np.asarray(distances)
    if len(distances) == 0:
        return 0.0
    cold = distances == COLD
    misses = cold | (distances >= capacity_lines)
    return float(misses.mean())


def reuse_histogram(distances: np.ndarray, max_distance: int | None = None) -> np.ndarray:
    """Histogram of finite distances (cold excluded), clipped at
    ``max_distance`` (defaults to the observed maximum)."""
    distances = np.asarray(distances)
    finite = distances[distances != COLD]
    if len(finite) == 0:
        return np.zeros(1, dtype=np.int64)
    hi = int(finite.max()) if max_distance is None else max_distance
    clipped = np.minimum(finite, hi)
    return np.bincount(clipped, minlength=hi + 1).astype(np.int64)
