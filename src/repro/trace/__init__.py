"""Trace layer: access streams, reuse distances, miss-ratio curves and
the kernel profiler (the measurement methodology of Section III-C)."""

from repro.trace.mrc import MissRatioCurve
from repro.trace.profiler import TraceCharacterization, TraceProfiler
from repro.trace.reuse import (
    COLD,
    miss_ratio_at,
    reuse_distances,
    reuse_distances_bruteforce,
    reuse_histogram,
)
from repro.trace.stream import (
    AccessBatch,
    TraceSource,
    TraceStats,
    concat_lines,
    take,
    total_accesses,
)
from repro.trace import synth

__all__ = [
    "AccessBatch",
    "COLD",
    "MissRatioCurve",
    "TraceCharacterization",
    "TraceProfiler",
    "TraceSource",
    "TraceStats",
    "concat_lines",
    "miss_ratio_at",
    "reuse_distances",
    "reuse_distances_bruteforce",
    "reuse_histogram",
    "synth",
    "take",
    "total_accesses",
]
