"""Trace-layer profiler: measure a kernel's memory behaviour.

``TraceProfiler`` pushes a workload's access stream through the machine
model and extracts exactly the quantities the interval engine's
:class:`~repro.workloads.base.RegionProfile` needs:

* private-cache behaviour — L1/L2 miss ratios and the fixed L2 MPKI;
* the LLC miss-ratio curve, from exact stack distances of the L2-miss
  stream (what actually reaches the shared cache);
* prefetchable *regularity*, measured the honest way: run the same
  stream twice, prefetchers on vs off (via MSR 0x1A4), and compare DRAM
  demand traffic — the same experiment as the paper's Fig 4;
* footprint and write fraction.

This is how a user characterizes *their own* application against the
library (see ``examples/custom_workload.py``); the built-in calibrated
profiles follow the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.machine.machine import Machine
from repro.machine.spec import MachineSpec, xeon_e5_4650
from repro.trace.mrc import MissRatioCurve
from repro.trace.reuse import reuse_distances
from repro.trace.stream import AccessBatch, TraceSource, take
from repro.units import MiB

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # deferred: workloads.base imports trace.mrc at runtime
    from repro.workloads.base import CodeRegion, ScalingModel, WorkloadProfile


@dataclass(frozen=True)
class TraceCharacterization:
    """Measured memory behaviour of one trace (one code region)."""

    accesses: int
    instructions: int
    l1_miss_ratio: float
    l2_miss_ratio: float
    #: Demand misses past private L2 per kilo-instruction.
    l2_mpki: float
    #: LLC miss-ratio curve of the L2-miss stream.
    llc_mrc: MissRatioCurve
    #: Fraction of DRAM demand traffic removed by the prefetchers.
    regularity: float
    #: Distinct-line footprint of the L2-miss stream, in bytes.
    footprint_bytes: float
    #: Write share of accesses (proxy for writeback intensity).
    write_fraction: float

    @property
    def refs_per_kinstr(self) -> float:
        """Memory references per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.accesses / self.instructions


class TraceProfiler:
    """Characterize traces against a machine model."""

    def __init__(self, spec: MachineSpec | None = None) -> None:
        self.spec = spec if spec is not None else xeon_e5_4650()

    # -- internals -------------------------------------------------------

    def _materialize(
        self, trace: TraceSource, max_accesses: int | None
    ) -> list[AccessBatch]:
        if max_accesses is not None:
            batches = list(take(trace, max_accesses))
        else:
            batches = list(trace)
        if not batches or not any(len(b) for b in batches):
            raise TraceError("cannot profile an empty trace")
        return batches

    def _private_pass(self, batches: list[AccessBatch]) -> tuple[dict, np.ndarray]:
        """Run the trace through private L1+L2 only (no prefetch);
        return counters and the L2-miss line stream."""
        from repro.machine.cache import SetAssociativeCache

        l1 = SetAssociativeCache(self.spec.l1d)
        l2 = SetAssociativeCache(self.spec.l2)
        l2_miss_lines: list[np.ndarray] = []
        for batch in batches:
            miss_mask = np.zeros(len(batch), dtype=bool)
            for i in range(len(batch)):
                line = int(batch.lines[i])
                if l1.access(line, write=bool(batch.writes[i])).hit:
                    continue
                if not l2.access(line).hit:
                    miss_mask[i] = True
            l2_miss_lines.append(batch.lines[miss_mask])
        counters = {
            "l1_hits": l1.stats.hits,
            "l1_misses": l1.stats.misses,
            "l2_hits": l2.stats.hits,
            "l2_misses": l2.stats.misses,
        }
        stream = (
            np.concatenate(l2_miss_lines) if l2_miss_lines else np.empty(0, np.int64)
        )
        return counters, stream

    def _dram_demand_bytes(self, batches: list[AccessBatch], *, prefetch: bool) -> int:
        machine = Machine(self.spec)
        machine.set_all_prefetchers(prefetch)
        core = 0
        for batch in batches:
            for i in range(len(batch)):
                machine.access(
                    core,
                    ip=int(batch.ips[i]),
                    line=int(batch.lines[i]),
                    write=bool(batch.writes[i]),
                )
        return machine.memory.owner_stats(-1).demand_bytes

    # -- public API ------------------------------------------------------

    def characterize(
        self, trace: TraceSource, *, max_accesses: int | None = 60_000
    ) -> TraceCharacterization:
        """Measure a trace; truncates to ``max_accesses`` for tractability."""
        batches = self._materialize(trace, max_accesses)
        accesses = sum(len(b) for b in batches)
        instructions = sum(b.instructions for b in batches)
        writes = sum(int(b.writes.sum()) for b in batches)

        counters, l2_miss_stream = self._private_pass(batches)
        l1_total = counters["l1_hits"] + counters["l1_misses"]
        l2_total = counters["l2_hits"] + counters["l2_misses"]
        l1_mr = counters["l1_misses"] / l1_total if l1_total else 0.0
        l2_mr = counters["l2_misses"] / l2_total if l2_total else 0.0
        l2_mpki = 1000.0 * counters["l2_misses"] / instructions if instructions else 0.0

        if len(l2_miss_stream):
            dists = reuse_distances(l2_miss_stream)
            mrc = MissRatioCurve.from_reuse_distances(
                dists, line_bytes=self.spec.line_bytes
            )
            footprint = float(len(np.unique(l2_miss_stream)) * self.spec.line_bytes)
        else:
            mrc = MissRatioCurve.constant(0.0)
            footprint = float(self.spec.line_bytes)

        demand_off = self._dram_demand_bytes(batches, prefetch=False)
        demand_on = self._dram_demand_bytes(batches, prefetch=True)
        regularity = (
            max(0.0, 1.0 - demand_on / demand_off) if demand_off > 0 else 0.0
        )

        return TraceCharacterization(
            accesses=accesses,
            instructions=instructions,
            l1_miss_ratio=l1_mr,
            l2_miss_ratio=l2_mr,
            l2_mpki=l2_mpki,
            llc_mrc=mrc,
            regularity=min(1.0, regularity),
            footprint_bytes=footprint,
            write_fraction=writes / accesses if accesses else 0.0,
        )

    def build_profile(
        self,
        name: str,
        trace: TraceSource,
        *,
        suite: str = "custom",
        region: "CodeRegion | None" = None,
        ipc_core: float = 2.0,
        mlp: float = 2.0,
        total_kinstr: float | None = None,
        scaling: "ScalingModel | None" = None,
        max_accesses: int | None = 60_000,
    ) -> "WorkloadProfile":
        """One-stop conversion: trace -> engine-ready WorkloadProfile.

        ``ipc_core`` and ``mlp`` are compute-side properties a memory
        trace cannot reveal; callers supply them (defaults are moderate).
        """
        from repro.workloads.base import (
            CodeRegion,
            RegionProfile,
            ScalingModel,
            WorkloadProfile,
        )

        char = self.characterize(trace, max_accesses=max_accesses)
        if region is None:
            region = CodeRegion(name=f"{name}.main", file=f"{name}.py", line_lo=1, line_hi=1)
        rp = RegionProfile(
            region=region,
            weight=1.0,
            ipc_core=ipc_core,
            l2_mpki=char.l2_mpki,
            mrc=char.llc_mrc,
            regularity=char.regularity,
            mlp=mlp,
            write_fraction=min(1.0, char.write_fraction + 0.1),
            footprint_bytes=max(char.footprint_bytes, 1 * MiB),
        )
        kinstr = total_kinstr if total_kinstr is not None else char.instructions / 1000.0
        return WorkloadProfile(
            name=name,
            suite=suite,
            total_kinstr=kinstr,
            regions=(rp,),
            scaling=scaling if scaling is not None else ScalingModel(),
        )
