"""Declarative consolidation scenarios: the Session's one measurement
vocabulary.

A :class:`Scenario` is a hashable *value object* describing one
consolidation experiment: an ordered tuple of
:class:`AppPlacement`\\ (workload, threads) entries — the first
placement is the measured foreground, every other application loops
for as long as it runs (the paper's protocol generalized to N live
apps) — plus engine overrides:

* ``llc_policy`` — run under a non-default LLC sharing policy
  (``"pressure"``/``"even"``/``"static"``, the CAT-style partitioning
  axis of the ROADMAP);
* ``smt`` — run on the SMT-enabled variant of the session's machine
  spec (double the hardware-thread slots, shared core pipelines).

Identity and caching
--------------------

``scenario.fingerprint`` hashes the canonical :meth:`Scenario.payload`
through the same :func:`~repro.session.base.fingerprint` that keys
every cache tier.  For the **2-app case** the scenario deliberately
*reduces to the legacy co-run key*: :meth:`Scenario.corun_key` exposes
the ``(fg, bg, fg_threads, bg_threads)`` tuple and the session routes
pair scenarios through its historical co-run cache — which is why a
warm store written before the scenario redesign still serves 2-app
scenarios bit-identically, with zero re-simulation.  N >= 3 scenarios
live in a scenario-fingerprint-keyed cache tier of their own
(``scenario/`` in the store).

Synthetic applications (the Bubble-Up predictor's tunable balloon) can
be placed **in-band** via ``AppPlacement(profile=...)``; such
scenarios are executable but deliberately *uncacheable* — a profile
object is not a stable registry name, so its results never enter the
keyed caches (exactly the pre-redesign behaviour of the predictor's
bespoke co-runs).

:class:`ScenarioSet` builds sweeps declaratively: pairwise products
(the Fig 5 matrix), N-way consolidations (every size-N combination,
each member taking a turn as foreground) and LLC-policy ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations
from typing import Any, Iterator, NamedTuple, Sequence

from repro.core.experiment import ExperimentConfig
from repro.engine import IntervalEngine, ScenarioRunResult
from repro.engine.interval import LLC_POLICIES
from repro.errors import ScenarioError
from repro.session.base import fingerprint
from repro.workloads.base import WorkloadProfile
from repro.workloads.registry import get_profile


@dataclass(frozen=True)
class AppPlacement:
    """One application's seat in a scenario.

    ``profile`` carries an in-band synthetic
    :class:`~repro.workloads.base.WorkloadProfile` (e.g. the Bubble-Up
    balloon) instead of resolving ``workload`` through the registry;
    ``solo_rate_override`` substitutes the background's solo
    instruction rate reference (the predictor passes a sentinel — the
    balloon's own progress is meaningless).  Either one marks the
    enclosing scenario uncacheable.
    """

    workload: str
    threads: int
    profile: WorkloadProfile | None = None
    solo_rate_override: float | None = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ScenarioError("placement needs a workload name")
        if self.threads < 1:
            raise ScenarioError(f"{self.workload}: threads must be >= 1")

    @property
    def plain(self) -> bool:
        """True when this placement resolves purely through the
        workload registry (the cacheable case)."""
        return self.profile is None and self.solo_rate_override is None

    def resolve_profile(self) -> WorkloadProfile:
        return self.profile if self.profile is not None else get_profile(self.workload)

    @property
    def label(self) -> str:
        return f"{self.workload}:{self.threads}"


def parse_placement(spec: str, *, default_threads: int = 4) -> AppPlacement:
    """Parse a CLI placement spec: ``"G-CC:2"`` or bare ``"G-CC"``."""
    name, sep, threads = spec.rpartition(":")
    if not sep:
        return AppPlacement(spec, default_threads)
    try:
        return AppPlacement(name, int(threads))
    except ValueError:
        raise ScenarioError(
            f"bad placement {spec!r}; expected NAME or NAME:THREADS"
        ) from None


@dataclass(frozen=True)
class Scenario:
    """A declarative, hashable N-way consolidation experiment."""

    placements: tuple[AppPlacement, ...]
    #: LLC sharing policy override; ``None`` keeps the session default.
    llc_policy: str | None = None
    #: Run on the SMT-enabled variant of the session's machine spec.
    smt: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "placements", tuple(self.placements))
        if not self.placements:
            raise ScenarioError("a scenario needs at least one placement")
        if self.llc_policy is not None and self.llc_policy not in LLC_POLICIES:
            raise ScenarioError(
                f"unknown llc_policy {self.llc_policy!r}; "
                f"use one of {', '.join(LLC_POLICIES)}"
            )

    # -- constructors -------------------------------------------------------

    @staticmethod
    def of(
        *specs: "str | AppPlacement",
        threads: int = 4,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "Scenario":
        """Build from placement specs: ``Scenario.of("bfs:8", "dnn:4")``."""
        placements = tuple(
            s if isinstance(s, AppPlacement) else parse_placement(s, default_threads=threads)
            for s in specs
        )
        return Scenario(placements, llc_policy=llc_policy, smt=smt)

    @staticmethod
    def pair(
        fg: str,
        bg: str,
        *,
        threads: int = 4,
        bg_threads: int | None = None,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "Scenario":
        """The classic 2-app consolidation (Fig 5's cell shape)."""
        return Scenario(
            (
                AppPlacement(fg, threads),
                AppPlacement(bg, bg_threads if bg_threads is not None else threads),
            ),
            llc_policy=llc_policy,
            smt=smt,
        )

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from its canonical :meth:`payload` dict —
        the inverse used by store round-trips (``scenario`` /
        ``scenario-set`` record decoding)."""
        return Scenario(
            tuple(AppPlacement(name, threads) for name, threads in payload["apps"]),
            llc_policy=payload.get("llc_policy"),
            smt=bool(payload.get("smt", False)),
        )

    # -- identity -----------------------------------------------------------

    @property
    def cacheable(self) -> bool:
        """Only registry-named, override-free placements have a stable
        identity under one engine fingerprint."""
        return all(p.plain for p in self.placements)

    def payload(self) -> dict[str, Any]:
        """Canonical JSON identity (what :attr:`fingerprint` hashes and
        the store persists as the entry key)."""
        return {
            "apps": [[p.workload, p.threads] for p in self.placements],
            "llc_policy": self.llc_policy,
            "smt": self.smt,
        }

    @property
    def fingerprint(self) -> str:
        """Stable short hash of the canonical payload.

        Golden values are pinned by the test suite: changing the
        payload shape invalidates every persisted scenario entry, like
        bumping the store schema.
        """
        if not self.cacheable:
            raise ScenarioError(
                "scenarios with in-band profiles or solo overrides have no "
                "stable fingerprint (and are never cached)"
            )
        return fingerprint("scenario", self.payload())

    def corun_key(self) -> tuple[str, str, int, int] | None:
        """The legacy pair key ``(fg, bg, fg_threads, bg_threads)`` when
        this scenario *is* a classic co-run, else ``None``.

        This is the read-through bridge: 2-app scenarios reduce to the
        co-run key the pre-redesign caches used, so warm stores stay
        bit-identical and are never re-simulated.
        """
        if len(self.placements) != 2 or not self.cacheable:
            return None
        fg, bg = self.placements
        return (fg.workload, bg.workload, fg.threads, bg.threads)

    @property
    def label(self) -> str:
        """Compact human identity, e.g. ``G-CC:4+Stream:4[llc=even]``."""
        apps = "+".join(p.label for p in self.placements)
        mods = []
        if self.llc_policy is not None:
            mods.append(f"llc={self.llc_policy}")
        if self.smt:
            mods.append("smt")
        return apps + (f"[{','.join(mods)}]" if mods else "")

    # -- derivation ---------------------------------------------------------

    def with_policy(self, llc_policy: str | None) -> "Scenario":
        return replace(self, llc_policy=llc_policy)

    def with_smt(self, smt: bool = True) -> "Scenario":
        return replace(self, smt=smt)

    @property
    def total_threads(self) -> int:
        return sum(p.threads for p in self.placements)


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered collection of scenarios plus sweep builders."""

    scenarios: tuple[Scenario, ...] = ()

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, i: int) -> Scenario:
        return self.scenarios[i]

    def __add__(self, other: "ScenarioSet") -> "ScenarioSet":
        return ScenarioSet(self.scenarios + other.scenarios)

    def shard(self, index: int, count: int) -> "ScenarioSet":
        """Round-robin shard ``index``/``count`` (1-based) of this set.

        The ``count`` shards are disjoint and cover every scenario —
        the declarative primitive behind splitting one sweep across
        campaign processes that share a store.
        """
        if count < 1 or not 1 <= index <= count:
            raise ScenarioError(
                f"bad shard {index}/{count}; need 1 <= index <= count"
            )
        return ScenarioSet(self.scenarios[index - 1 :: count])

    # -- builders -----------------------------------------------------------

    @staticmethod
    def pairwise(
        foregrounds: Sequence[str],
        backgrounds: Sequence[str] | None = None,
        *,
        threads: int = 4,
        bg_threads: int | None = None,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "ScenarioSet":
        """Every fg x bg product (Fig 5's 625-pair shape)."""
        bgs = backgrounds if backgrounds is not None else foregrounds
        return ScenarioSet(
            tuple(
                Scenario.pair(
                    fg, bg, threads=threads, bg_threads=bg_threads,
                    llc_policy=llc_policy, smt=smt,
                )
                for fg in foregrounds
                for bg in bgs
            )
        )

    @staticmethod
    def consolidations(
        workloads: Sequence[str],
        *,
        n: int = 3,
        threads: int = 1,
        rotate: bool = True,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "ScenarioSet":
        """Every size-``n`` combination of ``workloads`` as an N-way
        consolidation; with ``rotate`` each member takes a turn as the
        measured foreground (n scenarios per combination) — the shape
        no pair API can express."""
        if n < 1:
            raise ScenarioError("n must be >= 1")
        if n > len(workloads):
            raise ScenarioError(
                f"cannot pick {n} distinct apps from {len(workloads)} workloads"
            )
        scenarios: list[Scenario] = []
        for combo in combinations(workloads, n):
            rotations = (
                [combo[i:] + combo[:i] for i in range(n)] if rotate else [combo]
            )
            for order in rotations:
                scenarios.append(
                    Scenario(
                        tuple(AppPlacement(name, threads) for name in order),
                        llc_policy=llc_policy,
                        smt=smt,
                    )
                )
        return ScenarioSet(tuple(scenarios))

    @staticmethod
    def policy_ablation(
        base: Scenario,
        policies: Sequence[str | None] = LLC_POLICIES,
    ) -> "ScenarioSet":
        """The same placements under each LLC sharing policy."""
        return ScenarioSet(tuple(base.with_policy(p) for p in policies))


@dataclass
class ScenarioResult:
    """A scenario plus its measured outcome (what
    :meth:`Session.run_scenario` returns)."""

    scenario: Scenario
    result: ScenarioRunResult

    @property
    def normalized_time(self) -> float:
        """Foreground co-run time / foreground solo time."""
        return self.result.normalized_time

    @property
    def bg_relative_rates(self) -> list[float]:
        return self.result.bg_relative_rates

    @property
    def fg(self) -> str:
        return self.scenario.placements[0].workload

    @property
    def backgrounds(self) -> tuple[str, ...]:
        return tuple(p.workload for p in self.scenario.placements[1:])


class _ScenarioTask(NamedTuple):
    """One scenario shipped to a pool worker (picklable primitives; solo
    references come pre-resolved from the parent session's caches)."""

    config: ExperimentConfig
    scenario: Scenario
    fg_solo_runtime_s: float
    bg_solo_rates: tuple[float, ...]


def scenario_engine_parts(config: ExperimentConfig, scenario: Scenario):
    """(spec, engine_config) a scenario runs under, given a base config.

    Shared by the session (cache keying) and the pool workers (engine
    rebuild), so both sides resolve overrides identically.
    """
    spec = config.spec.smt_variant() if scenario.smt else config.spec
    cfg = config.engine_config
    if scenario.llc_policy is not None and scenario.llc_policy != cfg.llc_policy:
        cfg = replace(cfg, llc_policy=scenario.llc_policy)
    return spec, cfg


def run_scenario_task(task: _ScenarioTask) -> ScenarioRunResult:
    """Simulate one scenario (runs inside pool workers).

    The engine is rebuilt from the task's spec + engine config with the
    scenario's overrides applied, so worker results are bit-identical
    to the serial path's.
    """
    scenario = task.scenario
    spec, cfg = scenario_engine_parts(task.config, scenario)
    engine = IntervalEngine(spec=spec, config=cfg)
    return engine.scenario_run(
        [p.resolve_profile() for p in scenario.placements],
        [p.threads for p in scenario.placements],
        fg_solo_runtime_s=task.fg_solo_runtime_s,
        bg_solo_rates=list(task.bg_solo_rates),
    )
