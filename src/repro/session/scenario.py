"""Declarative consolidation scenarios: the Session's one measurement
vocabulary.

A :class:`Scenario` is a hashable *value object* describing one
consolidation experiment: an ordered tuple of
:class:`AppPlacement`\\ (workload, threads) entries — the first
placement is the measured foreground, every other application loops
for as long as it runs (the paper's protocol generalized to N live
apps) — plus engine overrides:

* ``llc_policy`` — run under a non-default LLC sharing policy
  (``"pressure"``/``"even"``/``"static"``); with per-app way masks in
  play the policy governs how *overlapping* ways split, so each global
  policy is simply the all-ways-shared preset of the mask model;
* ``smt`` — run on the SMT-enabled variant of the session's machine
  spec (double the hardware-thread slots, shared core pipelines).

On top of the scenario-wide knobs, each :class:`AppPlacement` can
carry true CAT partitioning state: ``llc_ways`` (a way-mask bitmap
validated against ``MachineSpec.llc_ways``; disjoint masks isolate
capacity, overlapping masks share it pressure-style) and ``pinning``
(explicit physical core ids — two placements that pin the same SMT
core deliberately share its pipeline, and asymmetric spreads model
core-allocation policies beyond thread counts).  Both join the
scenario payload **only when set**, so mask-free, pin-free scenarios
keep their pre-CAT fingerprints and every warm store keeps serving.
Masked or pinned *pairs* have no legacy co-run key (the pair key
cannot encode a bitmap): they cache under their scenario fingerprint
in the ``scenario/`` tier instead.

Identity and caching
--------------------

``scenario.fingerprint`` hashes the canonical :meth:`Scenario.payload`
through the same :func:`~repro.session.base.fingerprint` that keys
every cache tier.  For the **2-app case** the scenario deliberately
*reduces to the legacy co-run key*: :meth:`Scenario.corun_key` exposes
the ``(fg, bg, fg_threads, bg_threads)`` tuple and the session routes
pair scenarios through its historical co-run cache — which is why a
warm store written before the scenario redesign still serves 2-app
scenarios bit-identically, with zero re-simulation.  N >= 3 scenarios
live in a scenario-fingerprint-keyed cache tier of their own
(``scenario/`` in the store).

Synthetic applications (the Bubble-Up predictor's tunable balloon) can
be placed **in-band** via ``AppPlacement(profile=...)``; such
scenarios are executable but deliberately *uncacheable* — a profile
object is not a stable registry name, so its results never enter the
keyed caches (exactly the pre-redesign behaviour of the predictor's
bespoke co-runs).

:class:`ScenarioSet` builds sweeps declaratively: pairwise products
(the Fig 5 matrix), N-way consolidations (every size-N combination,
each member taking a turn as foreground) and LLC-policy ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations
from typing import Any, Iterator, NamedTuple, Sequence

from repro.core.experiment import ExperimentConfig
from repro.engine import IntervalEngine, ScenarioRunResult
from repro.engine.interval import LLC_POLICIES
from repro.errors import ScenarioError
from repro.session.base import fingerprint
from repro.workloads.base import WorkloadProfile
from repro.workloads.registry import get_profile


@dataclass(frozen=True)
class AppPlacement:
    """One application's seat in a scenario.

    ``profile`` carries an in-band synthetic
    :class:`~repro.workloads.base.WorkloadProfile` (e.g. the Bubble-Up
    balloon) instead of resolving ``workload`` through the registry;
    ``solo_rate_override`` substitutes the background's solo
    instruction rate reference (the predictor passes a sentinel — the
    balloon's own progress is meaningless).  Either one marks the
    enclosing scenario uncacheable.

    ``llc_ways`` is an optional CAT way-mask bitmap (``0xF0`` = this
    app may only fill the four high LLC ways); ``pinning`` pins the
    app's threads to explicit physical core ids (two placements that
    pin the same core deliberately share its pipeline).  Both are part
    of the scenario's cache identity — and both stay *out* of the
    canonical payload when unset, so mask-free, pin-free scenarios keep
    their pre-CAT fingerprints bit-identical.
    """

    workload: str
    threads: int
    profile: WorkloadProfile | None = None
    solo_rate_override: float | None = None
    #: CAT way-mask bitmap; ``None`` = all ways (unpartitioned).
    llc_ways: int | None = None
    #: Physical core ids to pin this app's threads to; ``None`` =
    #: schedule onto the cores no placement reserves.
    pinning: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ScenarioError("placement needs a workload name")
        if self.threads < 1:
            raise ScenarioError(f"{self.workload}: threads must be >= 1")
        if self.llc_ways is not None and (
            not isinstance(self.llc_ways, int) or self.llc_ways <= 0
        ):
            raise ScenarioError(
                f"{self.workload}: llc_ways must be a positive bitmap, "
                f"got {self.llc_ways!r}"
            )
        if self.pinning is not None:
            cores = tuple(self.pinning)
            if not cores:
                raise ScenarioError(f"{self.workload}: empty pinning")
            if any(not isinstance(c, int) or c < 0 for c in cores):
                raise ScenarioError(
                    f"{self.workload}: pinning must name core ids >= 0, got {cores}"
                )
            if len(set(cores)) != len(cores):
                raise ScenarioError(f"{self.workload}: duplicate cores in {cores}")
            object.__setattr__(self, "pinning", cores)

    @property
    def plain(self) -> bool:
        """True when this placement resolves purely through the
        workload registry (the cacheable case)."""
        return self.profile is None and self.solo_rate_override is None

    @property
    def partitioned(self) -> bool:
        """True when a way mask or pinning shapes this placement."""
        return self.llc_ways is not None or self.pinning is not None

    def resolve_profile(self) -> WorkloadProfile:
        return self.profile if self.profile is not None else get_profile(self.workload)

    @property
    def label(self) -> str:
        text = f"{self.workload}:{self.threads}"
        if self.llc_ways is not None:
            text += f"@{self.llc_ways:#x}"
        if self.pinning is not None:
            text += f"#{','.join(str(c) for c in self.pinning)}"
        return text


def parse_placement(spec: str, *, default_threads: int = 4) -> AppPlacement:
    """Parse a CLI placement spec: ``"G-CC:2"`` or bare ``"G-CC"``."""
    name, sep, threads = spec.rpartition(":")
    if not sep:
        return AppPlacement(spec, default_threads)
    try:
        return AppPlacement(name, int(threads))
    except ValueError:
        raise ScenarioError(
            f"bad placement {spec!r}; expected NAME or NAME:THREADS"
        ) from None


def parse_way_mask(spec: str) -> tuple[str, int]:
    """Parse a CLI way-mask spec ``"NAME:0xF0"`` (hex, binary or
    decimal bitmap) into ``(workload, mask)``."""
    name, sep, mask = spec.rpartition(":")
    if not sep or not name:
        raise ScenarioError(
            f"bad way mask {spec!r}; expected NAME:BITMAP, e.g. G-CC:0xF0"
        )
    try:
        value = int(mask, 0)
    except ValueError:
        raise ScenarioError(
            f"bad way mask {spec!r}; bitmap must be an integer like 0xF0"
        ) from None
    return name, value


def parse_pinning(spec: str) -> tuple[str, tuple[int, ...]]:
    """Parse a CLI pinning spec ``"NAME:0,1"`` into
    ``(workload, core_ids)``."""
    name, sep, cores = spec.rpartition(":")
    if not sep or not name:
        raise ScenarioError(
            f"bad pinning {spec!r}; expected NAME:CORE[,CORE...], e.g. G-CC:0,1"
        )
    try:
        ids = tuple(int(c) for c in cores.split(",") if c != "")
    except ValueError:
        raise ScenarioError(
            f"bad pinning {spec!r}; cores must be integers like 0,1"
        ) from None
    if not ids:
        raise ScenarioError(f"bad pinning {spec!r}; names no cores")
    return name, ids


@dataclass(frozen=True)
class Scenario:
    """A declarative, hashable N-way consolidation experiment."""

    placements: tuple[AppPlacement, ...]
    #: LLC sharing policy override; ``None`` keeps the session default.
    llc_policy: str | None = None
    #: Run on the SMT-enabled variant of the session's machine spec.
    smt: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "placements", tuple(self.placements))
        if not self.placements:
            raise ScenarioError("a scenario needs at least one placement")
        if self.llc_policy is not None and self.llc_policy not in LLC_POLICIES:
            raise ScenarioError(
                f"unknown llc_policy {self.llc_policy!r}; "
                f"use one of {', '.join(LLC_POLICIES)}"
            )

    # -- constructors -------------------------------------------------------

    @staticmethod
    def of(
        *specs: "str | AppPlacement",
        threads: int = 4,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "Scenario":
        """Build from placement specs: ``Scenario.of("bfs:8", "dnn:4")``."""
        placements = tuple(
            s if isinstance(s, AppPlacement) else parse_placement(s, default_threads=threads)
            for s in specs
        )
        return Scenario(placements, llc_policy=llc_policy, smt=smt)

    @staticmethod
    def pair(
        fg: str,
        bg: str,
        *,
        threads: int = 4,
        bg_threads: int | None = None,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "Scenario":
        """The classic 2-app consolidation (Fig 5's cell shape)."""
        return Scenario(
            (
                AppPlacement(fg, threads),
                AppPlacement(bg, bg_threads if bg_threads is not None else threads),
            ),
            llc_policy=llc_policy,
            smt=smt,
        )

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from its canonical :meth:`payload` dict —
        the inverse used by store round-trips (``scenario`` /
        ``scenario-set`` record decoding)."""
        apps = payload["apps"]
        ways = payload.get("llc_ways") or [None] * len(apps)
        pins = payload.get("pinning") or [None] * len(apps)
        return Scenario(
            tuple(
                AppPlacement(
                    name,
                    threads,
                    llc_ways=mask,
                    pinning=tuple(pin) if pin is not None else None,
                )
                for (name, threads), mask, pin in zip(apps, ways, pins)
            ),
            llc_policy=payload.get("llc_policy"),
            smt=bool(payload.get("smt", False)),
        )

    # -- identity -----------------------------------------------------------

    @property
    def cacheable(self) -> bool:
        """Only registry-named, override-free placements have a stable
        identity under one engine fingerprint."""
        return all(p.plain for p in self.placements)

    @property
    def partitioned(self) -> bool:
        """True when any placement carries a way mask or pinning."""
        return any(p.partitioned for p in self.placements)

    def payload(self) -> dict[str, Any]:
        """Canonical JSON identity (what :attr:`fingerprint` hashes and
        the store persists as the entry key).

        Way masks and pinnings join the payload **only when set**: a
        mask-free, pin-free scenario hashes to exactly the pre-CAT
        payload, so every previously persisted entry keeps serving.
        """
        payload: dict[str, Any] = {
            "apps": [[p.workload, p.threads] for p in self.placements],
            "llc_policy": self.llc_policy,
            "smt": self.smt,
        }
        if any(p.llc_ways is not None for p in self.placements):
            payload["llc_ways"] = [p.llc_ways for p in self.placements]
        if any(p.pinning is not None for p in self.placements):
            payload["pinning"] = [
                list(p.pinning) if p.pinning is not None else None
                for p in self.placements
            ]
        return payload

    @property
    def fingerprint(self) -> str:
        """Stable short hash of the canonical payload.

        Golden values are pinned by the test suite: changing the
        payload shape invalidates every persisted scenario entry, like
        bumping the store schema.
        """
        if not self.cacheable:
            raise ScenarioError(
                "scenarios with in-band profiles or solo overrides have no "
                "stable fingerprint (and are never cached)"
            )
        return fingerprint("scenario", self.payload())

    def corun_key(self) -> tuple[str, str, int, int] | None:
        """The legacy pair key ``(fg, bg, fg_threads, bg_threads)`` when
        this scenario *is* a classic co-run, else ``None``.

        This is the read-through bridge: 2-app scenarios reduce to the
        co-run key the pre-redesign caches used, so warm stores stay
        bit-identical and are never re-simulated.  Way-masked or pinned
        pairs have *no* pair key — the legacy key cannot encode a CAT
        bitmap, so they cache under their scenario fingerprint instead.
        """
        if len(self.placements) != 2 or not self.cacheable or self.partitioned:
            return None
        fg, bg = self.placements
        return (fg.workload, bg.workload, fg.threads, bg.threads)

    @property
    def label(self) -> str:
        """Compact human identity, e.g. ``G-CC:4+Stream:4[llc=even]``."""
        apps = "+".join(p.label for p in self.placements)
        mods = []
        if self.llc_policy is not None:
            mods.append(f"llc={self.llc_policy}")
        if self.smt:
            mods.append("smt")
        return apps + (f"[{','.join(mods)}]" if mods else "")

    # -- derivation ---------------------------------------------------------

    def with_policy(self, llc_policy: str | None) -> "Scenario":
        return replace(self, llc_policy=llc_policy)

    def with_smt(self, smt: bool = True) -> "Scenario":
        return replace(self, smt=smt)

    def _per_placement(
        self, values: "Sequence[Any] | dict[str, Any] | None", kind: str
    ) -> list[Any]:
        """Normalize a per-placement override to a placement-aligned
        list: ``None`` (strip all), a ``{workload: value}`` dict (every
        named workload must be placed), or an aligned sequence."""
        if values is None:
            return [None] * len(self.placements)
        if isinstance(values, dict):
            unknown = set(values) - {p.workload for p in self.placements}
            if unknown:
                raise ScenarioError(
                    f"{kind} names unplaced workload(s): {sorted(unknown)}"
                )
            return [values.get(p.workload) for p in self.placements]
        if len(values) != len(self.placements):
            raise ScenarioError(
                f"{len(self.placements)} placements but {len(values)} {kind}s"
            )
        return list(values)

    def with_ways(
        self, masks: "Sequence[int | None] | dict[str, int] | None"
    ) -> "Scenario":
        """This scenario under CAT way masks.

        ``masks`` is either a sequence aligned with the placements or a
        ``{workload: bitmap}`` dict (every named workload must be
        placed); ``None`` strips all masks.
        """
        seq = self._per_placement(masks, "way mask")
        return replace(
            self,
            placements=tuple(
                replace(p, llc_ways=m) for p, m in zip(self.placements, seq)
            ),
        )

    def with_pinning(
        self,
        pins: "Sequence[tuple[int, ...] | None] | dict[str, tuple[int, ...]] | None",
    ) -> "Scenario":
        """This scenario with explicit core pinnings (same shapes as
        :meth:`with_ways`)."""
        seq = self._per_placement(pins, "pinning")
        return replace(
            self,
            placements=tuple(
                replace(p, pinning=tuple(c) if c is not None else None)
                for p, c in zip(self.placements, seq)
            ),
        )

    @property
    def total_threads(self) -> int:
        return sum(p.threads for p in self.placements)


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered collection of scenarios plus sweep builders."""

    scenarios: tuple[Scenario, ...] = ()

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, i: int) -> Scenario:
        return self.scenarios[i]

    def __add__(self, other: "ScenarioSet") -> "ScenarioSet":
        return ScenarioSet(self.scenarios + other.scenarios)

    def shard(self, index: int, count: int) -> "ScenarioSet":
        """Round-robin shard ``index``/``count`` (1-based) of this set.

        The ``count`` shards are disjoint and cover every scenario —
        the declarative primitive behind splitting one sweep across
        campaign processes that share a store.
        """
        if count < 1 or not 1 <= index <= count:
            raise ScenarioError(
                f"bad shard {index}/{count}; need 1 <= index <= count"
            )
        return ScenarioSet(self.scenarios[index - 1 :: count])

    # -- builders -----------------------------------------------------------

    @staticmethod
    def pairwise(
        foregrounds: Sequence[str],
        backgrounds: Sequence[str] | None = None,
        *,
        threads: int = 4,
        bg_threads: int | None = None,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "ScenarioSet":
        """Every fg x bg product (Fig 5's 625-pair shape)."""
        bgs = backgrounds if backgrounds is not None else foregrounds
        return ScenarioSet(
            tuple(
                Scenario.pair(
                    fg, bg, threads=threads, bg_threads=bg_threads,
                    llc_policy=llc_policy, smt=smt,
                )
                for fg in foregrounds
                for bg in bgs
            )
        )

    @staticmethod
    def consolidations(
        workloads: Sequence[str],
        *,
        n: int = 3,
        threads: int = 1,
        rotate: bool = True,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> "ScenarioSet":
        """Every size-``n`` combination of ``workloads`` as an N-way
        consolidation; with ``rotate`` each member takes a turn as the
        measured foreground (n scenarios per combination) — the shape
        no pair API can express."""
        if n < 1:
            raise ScenarioError("n must be >= 1")
        if n > len(workloads):
            raise ScenarioError(
                f"cannot pick {n} distinct apps from {len(workloads)} workloads"
            )
        scenarios: list[Scenario] = []
        for combo in combinations(workloads, n):
            rotations = (
                [combo[i:] + combo[:i] for i in range(n)] if rotate else [combo]
            )
            for order in rotations:
                scenarios.append(
                    Scenario(
                        tuple(AppPlacement(name, threads) for name in order),
                        llc_policy=llc_policy,
                        smt=smt,
                    )
                )
        return ScenarioSet(tuple(scenarios))

    @staticmethod
    def policy_ablation(
        base: Scenario,
        policies: Sequence[str | None] = LLC_POLICIES,
    ) -> "ScenarioSet":
        """The same placements under each LLC sharing policy."""
        return ScenarioSet(tuple(base.with_policy(p) for p in policies))


@dataclass
class ScenarioResult:
    """A scenario plus its measured outcome (what
    :meth:`Session.run_scenario` returns)."""

    scenario: Scenario
    result: ScenarioRunResult

    @property
    def normalized_time(self) -> float:
        """Foreground co-run time / foreground solo time."""
        return self.result.normalized_time

    @property
    def bg_relative_rates(self) -> list[float]:
        return self.result.bg_relative_rates

    @property
    def fg(self) -> str:
        return self.scenario.placements[0].workload

    @property
    def backgrounds(self) -> tuple[str, ...]:
        return tuple(p.workload for p in self.scenario.placements[1:])


class _ScenarioTask(NamedTuple):
    """One scenario shipped to a pool worker (picklable primitives; solo
    references come pre-resolved from the parent session's caches)."""

    config: ExperimentConfig
    scenario: Scenario
    fg_solo_runtime_s: float
    bg_solo_rates: tuple[float, ...]


def scenario_engine_parts(config: ExperimentConfig, scenario: Scenario):
    """(spec, engine_config) a scenario runs under, given a base config.

    Shared by the session (cache keying) and the pool workers (engine
    rebuild), so both sides resolve overrides identically.
    """
    spec = config.spec.smt_variant() if scenario.smt else config.spec
    cfg = config.engine_config
    if scenario.llc_policy is not None and scenario.llc_policy != cfg.llc_policy:
        cfg = replace(cfg, llc_policy=scenario.llc_policy)
    return spec, cfg


def run_scenario_task(task: _ScenarioTask) -> ScenarioRunResult:
    """Simulate one scenario (runs inside pool workers).

    The engine is rebuilt from the task's spec + engine config with the
    scenario's overrides applied, so worker results are bit-identical
    to the serial path's.
    """
    scenario = task.scenario
    spec, cfg = scenario_engine_parts(task.config, scenario)
    engine = IntervalEngine(spec=spec, config=cfg)
    return engine.scenario_run(
        [p.resolve_profile() for p in scenario.placements],
        [p.threads for p in scenario.placements],
        fg_solo_runtime_s=task.fg_solo_runtime_s,
        bg_solo_rates=list(task.bg_solo_rates),
        llc_ways=scenario_way_masks(scenario),
        pinnings=scenario_pinnings(scenario),
    )


@dataclass(frozen=True)
class _ScenarioBatchTask:
    """One engine-compatible shard of scenarios shipped to a batch
    solve (picklable; every task shares one engine fingerprint, so the
    worker rebuilds a single engine for the whole shard).

    ``len()`` counts cells so executors can size their serial-fallback
    decision without knowing the payload shape.
    """

    config: ExperimentConfig
    tasks: tuple[_ScenarioTask, ...]

    def __len__(self) -> int:
        return len(self.tasks)


def _task_cell(task: _ScenarioTask) -> "BatchCell":
    """A scenario task in the batch engine's cell vocabulary."""
    from repro.engine import BatchCell

    s = task.scenario
    ways = scenario_way_masks(s)
    pins = scenario_pinnings(s)
    return BatchCell(
        profiles=tuple(p.resolve_profile() for p in s.placements),
        threads=tuple(p.threads for p in s.placements),
        fg_solo_runtime_s=task.fg_solo_runtime_s,
        bg_solo_rates=tuple(task.bg_solo_rates),
        llc_ways=tuple(ways) if ways is not None else None,
        pinnings=tuple(pins) if pins is not None else None,
    )


def run_scenario_batch_task(batch: _ScenarioBatchTask) -> list[ScenarioRunResult]:
    """Solve one engine-compatible shard through the batch engine.

    Runs in-process or inside pool workers; all tasks in the shard
    resolve to the same (spec, engine config) pair by construction, so
    one engine serves every cell.  Results are bit-identical to the
    scalar per-cell path (``solve_batch``'s contract).
    """
    from repro.engine import solve_batch

    spec, cfg = scenario_engine_parts(batch.config, batch.tasks[0].scenario)
    engine = IntervalEngine(spec=spec, config=cfg)
    return solve_batch(engine, [_task_cell(t) for t in batch.tasks])


def scenario_way_masks(scenario: Scenario) -> "list[int | None] | None":
    """Per-placement way masks for the engine (``None`` when unused)."""
    if not scenario.partitioned:
        return None
    return [p.llc_ways for p in scenario.placements]


def scenario_pinnings(scenario: Scenario) -> "list[tuple[int, ...] | None] | None":
    """Per-placement pinnings for the engine (``None`` when unused)."""
    if not scenario.partitioned:
        return None
    return [p.pinning for p in scenario.placements]
