"""RunRecord: one executed artifact with result and provenance.

Every :meth:`Session.run` returns a :class:`RunRecord` carrying the
result object, the provenance metadata that makes the number
reproducible (seed, fingerprints of the machine spec and engine
configuration, executor, cache economics), and a JSON round-trip so
records can be persisted and re-loaded::

    record = Session(config).run("fig5")
    text = record.to_json()
    again = RunRecord.from_json(text)
    assert again.result.cells == record.result.cells
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunRecord:
    """Outcome of one artifact run."""

    #: Artifact id this record was produced by (``"fig5"``, ...).
    artifact: str
    #: The runner's result object (e.g. :class:`ConsolidationMatrix`).
    result: Any
    #: Reproducibility metadata: seed, spec/engine fingerprints,
    #: executor, duration, per-run cache hit/miss deltas.
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize artifact + provenance + encoded result payload."""
        from repro.session.registry import get_runner

        payload = get_runner(self.artifact).encode(self.result)
        return json.dumps(
            {
                "artifact": self.artifact,
                "provenance": self.provenance,
                "payload": payload,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        """Rebuild a record; the result is decoded by the artifact's runner."""
        from repro.session.registry import get_runner

        data = json.loads(text)
        runner = get_runner(data["artifact"])
        return cls(
            artifact=data["artifact"],
            result=runner.decode(data["payload"]),
            provenance=data["provenance"],
        )
