"""Runner base class: one class per paper artifact.

A :class:`Runner` wraps one experiment (a figure or table of the paper,
or an extension study) behind a uniform interface:

* :meth:`Runner.execute` computes the result object through a
  :class:`~repro.session.session.Session` — all solo references and
  co-runs go through the session's shared caches, so independent
  artifacts reuse each other's measurements;
* :meth:`Runner.render` turns a result into the CLI's text artifact;
* :meth:`Runner.encode` / :meth:`Runner.decode` convert the result to
  and from a JSON-able payload for :class:`~repro.session.record.RunRecord`
  round-trips.

Concrete runners live next to their result types in ``repro.core.*``
and register themselves with
:func:`~repro.session.registry.register_runner`.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import hashlib
import json
from typing import Any, ClassVar


def fingerprint(*parts: Any) -> str:
    """Stable short hash of dataclass configuration objects.

    The one keying function of the whole system: in-memory session
    caches, the on-disk store layout and scenario identities all hash
    through here, which is what lets a result persisted by one process
    warm any later one.
    """
    blob = json.dumps(
        [
            dataclasses.asdict(p) if hasattr(p, "__dataclass_fields__") else p
            for p in parts
        ],
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def jsonify(obj: Any) -> Any:
    """Recursively convert a result object into JSON-able data.

    Dataclasses become field dicts, enums their values, tuple-keyed
    dicts a list of ``[*key, value]`` rows, tuples lists.  This is the
    default :meth:`Runner.encode`; runners with richer needs override
    ``encode``/``decode``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonify(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return jsonify(obj.value)
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj):
            return {k: jsonify(v) for k, v in obj.items()}
        # Tuple-keyed matrices (e.g. Fig 5 cells) -> [*key, value] rows.
        return [
            [*(jsonify(p) for p in (k if isinstance(k, tuple) else (k,))), jsonify(v)]
            for k, v in obj.items()
        ]
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, float):
        return float(obj)
    return obj


class Runner(abc.ABC):
    """One paper artifact as an executable, renderable, serializable unit."""

    #: Artifact id (``"fig5"``, ``"table3"``, ...) — set by ``@register_runner``.
    name: ClassVar[str] = ""
    #: One-line human description shown by ``repro list``.
    title: ClassVar[str] = ""
    #: Paper artifacts run by :meth:`Session.run_all`; extension studies
    #: that need explicit arguments (``allocation``, ``efficiency``) opt out.
    artifact: ClassVar[bool] = True
    #: Sort key: the paper's artifact order (Table I first, Table IV last).
    order: ClassVar[int] = 1000

    @abc.abstractmethod
    def execute(self, session: Any, **kwargs: Any) -> Any:
        """Compute the result object using the session's shared state."""

    def render(self, result: Any, **options: Any) -> str:
        """Text rendering of the result (the CLI's output)."""
        return str(result)

    def encode(self, result: Any) -> Any:
        """JSON-able payload for :class:`RunRecord` serialization."""
        return jsonify(result)

    def decode(self, payload: Any) -> Any:
        """Inverse of :meth:`encode`; the default returns the raw payload."""
        return payload
