"""The Session: shared measurement state for all paper artifacts.

A :class:`Session` owns everything the eleven experiment runners used
to construct privately:

* the :class:`~repro.machine.spec.MachineSpec` and memoized
  :class:`~repro.engine.interval.IntervalEngine` instances (one per
  engine configuration, keyed by fingerprint);
* a cross-experiment **solo cache** keyed by
  ``workload x threads x engine fingerprint`` — Fig 2, Fig 3, Fig 5 and
  Table III all reuse the same 25 solo references instead of
  recomputing them per artifact;
* a cross-experiment **co-run cache** keyed by
  ``fg x bg x split x engine fingerprint`` — Table III's five pairs and
  Fig 8's offender cells are free once the Fig 5 sweep ran;
* the seeded :class:`~repro.core.experiment.Jitter` model, keyed
  per-measurement so results do not depend on iteration order (which is
  what makes the parallel executor bit-identical to the serial one);
* a pluggable :class:`~repro.session.executors.Executor` that fans the
  independent sweep cells out over a process or thread pool;
* optionally a persistent :class:`~repro.store.store.ResultStore`
  (``Session(config, store=...)``): solo/co-run lookups read through
  the disk tier, fresh simulations write behind to it, and every
  executed artifact's record streams into the store's index — a cold
  process over a warm store never re-simulates.

Usage::

    from repro import ExperimentConfig, Session

    session = Session(ExperimentConfig())
    fig5 = session.run("fig5")            # 625-pair sweep
    table3 = session.run("table3")        # solo + pair co-runs all cached
    print(fig5.result.render_fig5())
    everything = session.run_all()        # every paper artifact, one pass
"""

from __future__ import annotations

import inspect
import logging
import os
import time
from dataclasses import asdict, dataclass, replace
from typing import Any, Iterable

from repro.core.experiment import ExperimentConfig, Jitter
from repro.engine import (
    CoRunResult,
    EngineConfig,
    IntervalEngine,
    ScenarioRunResult,
    SoloRunResult,
)
from repro.machine.spec import MachineSpec
from repro.session.base import fingerprint
from repro.session.executors import Executor, resolve_executor
from repro.session.record import RunRecord
from repro.session.registry import get_runner, runner_names
from repro.session.scenario import (
    Scenario,
    ScenarioResult,
    _ScenarioBatchTask,
    _ScenarioTask,
    run_scenario_batch_task,
    run_scenario_task,
    scenario_engine_parts,
    scenario_pinnings,
    scenario_way_masks,
)
from repro.telemetry.tracer import get_tracer
from repro.workloads.base import WorkloadProfile
from repro.workloads.registry import get_profile

__all__ = ["CacheStats", "Session", "fingerprint"]

logger = logging.getLogger(__name__)

def _served_tier(delta: dict[str, int]) -> str:
    """Which cache tier answered one lookup, judged from a CacheStats
    delta: any simulation makes it ``engine``, else ``disk``, else
    ``memory``.  Uncacheable scenarios move no counters but always
    simulate, so the fall-through default is ``engine`` too."""
    if any(
        delta.get(k, 0) > 0
        for k in ("solo_misses", "corun_misses", "scenario_misses")
    ):
        return "engine"
    if any(
        delta.get(k, 0) > 0
        for k in ("solo_disk_hits", "corun_disk_hits", "scenario_disk_hits")
    ):
        return "disk"
    if any(delta.get(k, 0) > 0 for k in ("solo_hits", "corun_hits", "scenario_hits")):
        return "memory"
    return "engine"


@dataclass
class CacheStats:
    """Hit/miss economics of a session's shared caches.

    ``*_hits`` count in-memory hits, ``*_disk_hits`` count results
    served from an attached :class:`~repro.store.store.ResultStore`
    (read-through), and ``*_misses`` count actual simulations.  The
    ``corun_*`` counters cover 2-app scenarios too (pair scenarios
    bridge onto the legacy co-run key space); ``scenario_*`` counters
    cover N >= 3 apps and SMT/policy shapes with no pair key.
    """

    solo_hits: int = 0
    solo_misses: int = 0
    corun_hits: int = 0
    corun_misses: int = 0
    solo_disk_hits: int = 0
    corun_disk_hits: int = 0
    scenario_hits: int = 0
    scenario_misses: int = 0
    scenario_disk_hits: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(asdict(self))

    def delta_since(self, before: dict[str, int]) -> dict[str, int]:
        return {k: v - before[k] for k, v in asdict(self).items()}


def _resolve_store(value: Any) -> Any:
    """Normalize a store argument: ResultStore instance, path, or None.

    Imported lazily — :mod:`repro.store` depends on this module for
    :func:`fingerprint`, so the dependency must stay one-directional at
    import time.
    """
    if value is None:
        return None
    from repro.store import ResultStore

    if isinstance(value, ResultStore):
        return value
    return ResultStore(value)


def _strip_default_kwargs(runner: Any, kwargs: dict[str, Any]) -> dict[str, Any]:
    """Drop kwargs that merely restate the runner's execute defaults, so
    ``run("fig2")`` and ``run("fig2", max_threads=8)`` share one memo."""
    sig = inspect.signature(runner.execute)
    out: dict[str, Any] = {}
    for key, value in kwargs.items():
        param = sig.parameters.get(key)
        if param is not None and param.default is not inspect.Parameter.empty:
            try:
                if value is param.default or value == param.default:
                    continue
            except Exception:
                pass  # incomparable value: keep it
        out[key] = value
    return out


class Session:
    """Shared substrate every artifact runner executes through."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        executor: Executor | str | None = None,
        store: "Any | None" = None,
        chunksize: int | None = None,
        engine_batch: bool | None = None,
    ) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self.executor = resolve_executor(executor)
        self.stats = CacheStats()
        #: Default chunk size for scenario fan-outs; ``None`` picks an
        #: automatic chunk from the task and worker counts (see
        #: :meth:`run_scenarios`).
        self.chunksize = chunksize
        if engine_batch is None:
            engine_batch = os.environ.get("REPRO_ENGINE_BATCH", "1") != "0"
        #: Solve cache-missing scenario fan-outs through the stacked
        #: batch engine (:func:`repro.engine.solve_batch`) instead of
        #: one scalar solve per cell.  Defaults on; the
        #: ``REPRO_ENGINE_BATCH=0`` escape hatch restores the scalar
        #: path (results are bit-identical either way).
        self.engine_batch = bool(engine_batch)
        #: Every RunRecord produced by this session, in execution order.
        self.records: list[RunRecord] = []
        #: Optional persistent ResultStore: solo/co-run lookups read
        #: through it, fresh simulations write behind to it, and every
        #: executed artifact's record is streamed into it.
        self.store = _resolve_store(store)
        self._engines: dict[str, IntervalEngine] = {}
        # Engine fingerprints memoized by config/spec object identity:
        # hashing a full MachineSpec asdict per lookup dominates sweep
        # planning otherwise.  Values keep strong references to the
        # keyed objects so ids can never be recycled underneath us
        # (configs are value objects — derivation goes through
        # dataclasses.replace, never in-place mutation).
        self._engine_fps: dict[tuple[int, int], tuple[str, Any, Any]] = {}
        self._solos: dict[tuple[str, str, int], SoloRunResult] = {}
        self._coruns: dict[tuple[str, str, str, int, int], CoRunResult] = {}
        #: N-way scenario cache keyed by (engine_fp, scenario fingerprint);
        #: 2-app scenarios bridge onto ``_coruns`` instead.
        self._scenarios: dict[tuple[str, str], ScenarioRunResult] = {}
        self._artifacts: dict[tuple[str, str], RunRecord] = {}
        # Keys promoted from disk by a peek and not yet consumed by
        # co_run / run_scenario — lets the consuming lookup skip the hit
        # counter, so one disk-served measurement is counted exactly once.
        self._disk_promoted: set[tuple[str, str, str, int, int]] = set()
        self._scenario_promoted: set[tuple[str, str]] = set()

    # -- machine / engine ---------------------------------------------------

    @property
    def spec(self):
        """The shared machine specification."""
        return self.config.spec

    def spec_fingerprint(self) -> str:
        return fingerprint(self.spec)

    def engine_fingerprint(
        self,
        engine_config: EngineConfig | None = None,
        spec: MachineSpec | None = None,
    ) -> str:
        cfg = engine_config if engine_config is not None else self.config.engine_config
        sp = spec if spec is not None else self.spec
        key = (id(cfg), id(sp))
        hit = self._engine_fps.get(key)
        if hit is not None:
            return hit[0]
        fp = fingerprint(sp, cfg)
        self._engine_fps[key] = (fp, cfg, sp)
        return fp

    def engine(
        self,
        engine_config: EngineConfig | None = None,
        spec: MachineSpec | None = None,
    ) -> IntervalEngine:
        """Memoized engine for a (spec, engine config) pair; both default
        to the session's own."""
        cfg = engine_config if engine_config is not None else self.config.engine_config
        fp = self.engine_fingerprint(cfg, spec)
        if fp not in self._engines:
            self._engines[fp] = IntervalEngine(
                spec=spec if spec is not None else self.spec, config=cfg
            )
        return self._engines[fp]

    # -- shared measurement caches -----------------------------------------

    def solo(
        self,
        name: str,
        *,
        threads: int,
        engine_config: EngineConfig | None = None,
        profile: WorkloadProfile | None = None,
        spec: MachineSpec | None = None,
    ) -> SoloRunResult:
        """Solo run, cached across every artifact of this session.

        Lookup order: in-memory cache, then the attached store (disk
        hit), then simulation — which writes behind to both.  Explicit
        ``profile`` overrides bypass the disk tier: the store keys by
        name, and only registry-resolved profiles are guaranteed stable
        under one engine fingerprint.
        """
        engine_fp = self.engine_fingerprint(engine_config, spec)
        key = (engine_fp, name, threads)
        hit = self._solos.get(key)
        if hit is not None:
            self.stats.solo_hits += 1
            return hit
        if self.store is not None and profile is None:
            disk = self.store.get_solo(engine_fp, name, threads)
            if disk is not None:
                self.stats.solo_disk_hits += 1
                self._solos[key] = disk
                return disk
        self.stats.solo_misses += 1
        prof = profile if profile is not None else get_profile(name)
        res = self.engine(engine_config, spec).solo_run(prof, threads=threads)
        self._solos[key] = res
        if self.store is not None and profile is None:
            self.store.put_solo(engine_fp, name, threads, res)
        return res

    def solo_runtime(
        self,
        name: str,
        *,
        threads: int,
        engine_config: EngineConfig | None = None,
        spec: MachineSpec | None = None,
    ) -> float:
        """Solo runtime (seconds)."""
        return self.solo(
            name, threads=threads, engine_config=engine_config, spec=spec
        ).runtime_s

    def solo_rate(
        self,
        name: str,
        *,
        threads: int,
        engine_config: EngineConfig | None = None,
        spec: MachineSpec | None = None,
    ) -> float:
        """Solo instruction throughput (instructions / second)."""
        res = self.solo(name, threads=threads, engine_config=engine_config, spec=spec)
        return res.metrics.total.instructions / res.runtime_s

    def _corun_key(
        self,
        fg: str,
        bg: str,
        threads: int | None,
        bg_threads: int | None,
        engine_config: EngineConfig | None,
        spec: MachineSpec | None = None,
    ) -> tuple[str, str, str, int, int]:
        fg_t = threads if threads is not None else self.config.threads
        bg_t = bg_threads if bg_threads is not None else fg_t
        return (self.engine_fingerprint(engine_config, spec), fg, bg, fg_t, bg_t)

    def cached_co_run(
        self,
        fg: str,
        bg: str,
        *,
        threads: int | None = None,
        bg_threads: int | None = None,
        engine_config: EngineConfig | None = None,
        spec: MachineSpec | None = None,
    ) -> CoRunResult | None:
        """Peek the co-run caches without simulating.

        Memory peeks record no stats; a disk peek that finds the result
        promotes it into the in-memory cache and counts one disk hit
        (the fan-out planners use this, so cells already persisted are
        never shipped to workers).  The promoted key is remembered so
        the consuming :meth:`co_run` lookup does not count the same
        measurement a second time as a memory hit.
        """
        key = self._corun_key(fg, bg, threads, bg_threads, engine_config, spec)
        hit = self._coruns.get(key)
        if hit is None and self.store is not None:
            hit = self.store.get_corun(key[0], fg, bg, key[3], key[4])
            if hit is not None:
                self.stats.corun_disk_hits += 1
                self._coruns[key] = hit
                self._disk_promoted.add(key)
        return hit

    def store_co_run(
        self,
        fg: str,
        bg: str,
        result: CoRunResult,
        *,
        threads: int | None = None,
        bg_threads: int | None = None,
        engine_config: EngineConfig | None = None,
        spec: MachineSpec | None = None,
    ) -> None:
        """Insert an externally computed co-run (e.g. from a pool worker)
        into the shared cache; counted as a miss, since it was simulated."""
        self.stats.corun_misses += 1
        key = self._corun_key(fg, bg, threads, bg_threads, engine_config, spec)
        self._coruns[key] = result
        if self.store is not None:
            self.store.put_corun(key[0], fg, bg, key[3], key[4], result)

    def co_run(
        self,
        fg: str,
        bg: str,
        *,
        threads: int | None = None,
        bg_threads: int | None = None,
        engine_config: EngineConfig | None = None,
        spec: MachineSpec | None = None,
    ) -> CoRunResult:
        """Consolidation co-run, cached across every artifact.

        Solo references (fg runtime, bg rate) come from the shared solo
        cache, so the same floats feed every caller — serial loops,
        parallel workers and later artifacts all see identical results.
        """
        fg_t = threads if threads is not None else self.config.threads
        bg_t = bg_threads if bg_threads is not None else fg_t
        key = self._corun_key(fg, bg, threads, bg_threads, engine_config, spec)
        hit = self._coruns.get(key)
        if hit is not None:
            if key in self._disk_promoted:
                self._disk_promoted.discard(key)  # already counted as a disk hit
            else:
                self.stats.corun_hits += 1
            return hit
        # Disk tier: cached_co_run owns the lookup-and-promote logic.
        promoted = self.cached_co_run(
            fg,
            bg,
            threads=threads,
            bg_threads=bg_threads,
            engine_config=engine_config,
            spec=spec,
        )
        if promoted is not None:
            self._disk_promoted.discard(key)
            return promoted
        self.stats.corun_misses += 1
        res = self.engine(engine_config, spec).co_run(
            get_profile(fg),
            get_profile(bg),
            threads=fg_t,
            bg_threads=bg_t,
            fg_solo_runtime_s=self.solo_runtime(
                fg, threads=fg_t, engine_config=engine_config, spec=spec
            ),
            bg_solo_rate=self.solo_rate(
                bg, threads=bg_t, engine_config=engine_config, spec=spec
            ),
        )
        self._coruns[key] = res
        if self.store is not None:
            self.store.put_corun(key[0], fg, bg, key[3], key[4], res)
        return res

    # -- scenarios ----------------------------------------------------------

    def _scenario_parts(
        self, scenario: Scenario
    ) -> tuple[str, EngineConfig, MachineSpec | None, Scenario]:
        """(engine_fp, engine_config, spec override, canonical scenario).

        The canonical scenario collapses ``llc_policy=None`` onto the
        *effective* engine policy, so the session default and the same
        policy named explicitly share one cache identity — a
        ``policy_ablation`` never re-simulates the default cell.
        """
        spec, cfg = scenario_engine_parts(self.config, scenario)
        spec_override = spec if scenario.smt else None
        canon = (
            scenario
            if scenario.llc_policy == cfg.llc_policy or not scenario.cacheable
            else replace(scenario, llc_policy=cfg.llc_policy)
        )
        return self.engine_fingerprint(cfg, spec_override), cfg, spec_override, canon

    def _scenario_solo_refs(
        self,
        scenario: Scenario,
        engine_config: EngineConfig,
        spec: MachineSpec | None,
    ) -> tuple[float, tuple[float, ...]]:
        """Resolve a scenario's solo references through the shared cache
        (honouring per-placement overrides), so serial loops and pool
        workers all see identical floats."""
        fg = scenario.placements[0]
        fg_runtime = self.solo(
            fg.workload,
            threads=fg.threads,
            engine_config=engine_config,
            profile=fg.profile,
            spec=spec,
        ).runtime_s
        rates: list[float] = []
        for p in scenario.placements[1:]:
            if p.solo_rate_override is not None:
                rates.append(p.solo_rate_override)
                continue
            solo = self.solo(
                p.workload,
                threads=p.threads,
                engine_config=engine_config,
                profile=p.profile,
                spec=spec,
            )
            rates.append(solo.metrics.total.instructions / solo.runtime_s)
        return fg_runtime, tuple(rates)

    def scenario_identity(self, scenario: Scenario) -> tuple[str, str, str]:
        """``(engine_fingerprint, scenario_fingerprint, cache_tier)`` —
        the persistent identity a cacheable scenario's result lives
        under in any store sharing this session's configuration.

        ``cache_tier`` is ``"corun"`` for 2-app scenarios (they bridge
        onto the legacy pair key space) and ``"scenario"`` for every
        other shape.  This is the per-cell provenance the
        ``scenario-set`` campaign artifact records.
        """
        engine_fp, _, _, canon = self._scenario_parts(scenario)
        tier = "corun" if scenario.corun_key() is not None else "scenario"
        return engine_fp, canon.fingerprint, tier

    def cached_scenario(self, scenario: Scenario) -> ScenarioRunResult | None:
        """Peek the scenario caches without simulating.

        2-app scenarios bridge to the legacy co-run caches
        (:meth:`cached_co_run`), so a warm store written before the
        scenario redesign serves them unchanged; N-way scenarios use
        the scenario-fingerprint-keyed tier.  Disk peeks promote into
        memory and count one disk hit, exactly like co-runs.
        """
        if not scenario.cacheable:
            return None
        engine_fp, engine_config, spec, canon = self._scenario_parts(scenario)
        pair = scenario.corun_key()
        if pair is not None:
            fg, bg, fg_t, bg_t = pair
            hit = self.cached_co_run(
                fg,
                bg,
                threads=fg_t,
                bg_threads=bg_t,
                engine_config=engine_config,
                spec=spec,
            )
            return None if hit is None else ScenarioRunResult.from_corun(hit)
        key = (engine_fp, canon.fingerprint)
        hit = self._scenarios.get(key)
        if hit is None and self.store is not None:
            hit = self.store.get_scenario(engine_fp, canon)
            if hit is not None:
                self.stats.scenario_disk_hits += 1
                self._scenarios[key] = hit
                self._scenario_promoted.add(key)
        return hit

    def store_scenario_result(
        self, scenario: Scenario, result: ScenarioRunResult
    ) -> None:
        """Insert an externally computed scenario result (e.g. from a
        pool worker) into the shared caches; counted as a miss, since
        it was simulated.  Uncacheable scenarios are ignored."""
        if not scenario.cacheable:
            return
        engine_fp, engine_config, spec, canon = self._scenario_parts(scenario)
        pair = scenario.corun_key()
        if pair is not None:
            fg, bg, fg_t, bg_t = pair
            self.store_co_run(
                fg,
                bg,
                result.to_corun(),
                threads=fg_t,
                bg_threads=bg_t,
                engine_config=engine_config,
                spec=spec,
            )
            return
        self.stats.scenario_misses += 1
        key = (engine_fp, canon.fingerprint)
        self._scenarios[key] = result
        if self.store is not None:
            self.store.put_scenario(engine_fp, canon, result)

    def run_scenario(self, scenario: Scenario) -> ScenarioResult:
        """The one measurement primitive: run a declarative scenario.

        2-app scenarios route through :meth:`co_run` (same keys, same
        caches, bit-identical results — ``co_run`` is effectively the
        pair special case of this method).  N-way and SMT shapes run
        through the scenario cache tier; uncacheable scenarios (in-band
        profiles) simulate directly every time.

        With telemetry enabled, each call emits a
        ``session.run_scenario`` span tagged with the cache tier that
        answered (``memory`` / ``disk`` / ``engine``); the span is
        out-of-band and the returned result is byte-identical either
        way.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._run_scenario_impl(scenario)
        before = self.stats.snapshot()
        with tracer.span("session.run_scenario", apps=scenario.label) as sp:
            result = self._run_scenario_impl(scenario)
            sp.tag("tier", _served_tier(self.stats.delta_since(before)))
        return result

    def _run_scenario_impl(self, scenario: Scenario) -> ScenarioResult:
        engine_fp, engine_config, spec, canon = self._scenario_parts(scenario)
        pair = scenario.corun_key()
        if pair is not None:
            fg, bg, fg_t, bg_t = pair
            co = self.co_run(
                fg,
                bg,
                threads=fg_t,
                bg_threads=bg_t,
                engine_config=engine_config,
                spec=spec,
            )
            return ScenarioResult(scenario, ScenarioRunResult.from_corun(co))
        if not scenario.cacheable:
            return ScenarioResult(
                scenario, self._simulate_scenario(scenario, engine_config, spec)
            )
        key = (engine_fp, canon.fingerprint)
        hit = self._scenarios.get(key)
        if hit is not None:
            if key in self._scenario_promoted:
                self._scenario_promoted.discard(key)  # counted as a disk hit
            else:
                self.stats.scenario_hits += 1
            return ScenarioResult(scenario, hit)
        promoted = self.cached_scenario(scenario)
        if promoted is not None:
            self._scenario_promoted.discard(key)
            return ScenarioResult(scenario, promoted)
        self.stats.scenario_misses += 1
        res = self._simulate_scenario(scenario, engine_config, spec)
        self._scenarios[key] = res
        if self.store is not None:
            self.store.put_scenario(engine_fp, canon, res)
        return ScenarioResult(scenario, res)

    def _simulate_scenario(
        self,
        scenario: Scenario,
        engine_config: EngineConfig,
        spec: MachineSpec | None,
    ) -> ScenarioRunResult:
        fg_runtime, rates = self._scenario_solo_refs(scenario, engine_config, spec)
        # Solo references stay mask/pin-free: the paper normalizes
        # against the *unrestricted* solo run, which also keeps the
        # shared solo cache serving every CAT/pinning variant.
        return self.engine(engine_config, spec).scenario_run(
            [p.resolve_profile() for p in scenario.placements],
            [p.threads for p in scenario.placements],
            fg_solo_runtime_s=fg_runtime,
            bg_solo_rates=list(rates),
            llc_ways=scenario_way_masks(scenario),
            pinnings=scenario_pinnings(scenario),
        )

    def run_scenarios(
        self,
        scenarios: "Iterable[Scenario]",
        *,
        chunksize: int | None = None,
    ) -> list[ScenarioResult]:
        """Run many scenarios; uncached ones fan out over the executor.

        Cells the caches already hold are never shipped to workers
        (disk peeks promote them first), duplicate *cacheable*
        scenarios are simulated once (uncacheable ones have no
        identity to deduplicate by), and worker results are stored
        back through the same keys the serial path uses — so the
        returned list is bit-identical whatever the executor.  ``chunksize`` batches tasks per worker
        dispatch; ``None`` uses the session default or an automatic
        chunk sized from the task and worker counts (fine-grained
        fig8-style cells amortize dispatch overhead with chunks > 1).
        """
        scens = list(scenarios)
        tracer = get_tracer()
        if not tracer.enabled:
            return self._run_scenarios_impl(scens, chunksize)
        with tracer.span(
            "session.run_scenarios",
            cells=len(scens),
            executor=self.executor.name,
        ):
            return self._run_scenarios_impl(scens, chunksize)

    def _run_scenarios_impl(
        self, scens: "list[Scenario]", chunksize: int | None
    ) -> list[ScenarioResult]:
        direct: dict[int, ScenarioRunResult] = {}
        if (self.engine_batch or self.executor.parallel) and len(scens) > 1:
            tasks: list[_ScenarioTask] = []
            task_idx: list[int] = []
            task_fps: list[str] = []
            seen: set[tuple[str, str]] = set()
            for i, s in enumerate(scens):
                engine_fp, engine_config, spec, canon = self._scenario_parts(s)
                if s.cacheable:
                    ident = (engine_fp, canon.fingerprint)
                    if ident in seen or self.cached_scenario(s) is not None:
                        continue
                    seen.add(ident)
                fg_runtime, rates = self._scenario_solo_refs(s, engine_config, spec)
                tasks.append(_ScenarioTask(self.config, s, fg_runtime, rates))
                task_idx.append(i)
                task_fps.append(engine_fp)
            if tasks:
                if self.engine_batch:
                    results = self._solve_tasks_batched(tasks, task_fps)
                else:
                    if chunksize is None:
                        chunksize = self.chunksize
                    if chunksize is None:
                        workers = getattr(self.executor, "max_workers", 1)
                        chunksize = max(1, min(32, len(tasks) // (workers * 4) or 1))
                    results = self.executor.map(
                        run_scenario_task, tasks, chunksize=chunksize
                    )
                for i, res in zip(task_idx, results):
                    if scens[i].cacheable:
                        self.store_scenario_result(scens[i], res)
                    else:
                        direct[i] = res
        return [
            ScenarioResult(s, direct[i]) if i in direct else self.run_scenario(s)
            for i, s in enumerate(scens)
        ]

    def _solve_tasks_batched(
        self, tasks: "list[_ScenarioTask]", task_fps: "list[str]"
    ) -> "list[ScenarioRunResult]":
        """Solve planned scenario tasks through the batch engine.

        Tasks partition into engine-compatible groups (same engine
        fingerprint = same spec + engine config), each group shards
        across the executor's workers, and every shard is one
        :func:`repro.engine.solve_batch` call — one stacked fixed point
        instead of ``len(tasks)`` scalar solves.  Results come back in
        task order and are bit-identical to the scalar path.
        """
        groups: dict[str, list[int]] = {}
        for j, fp in enumerate(task_fps):
            groups.setdefault(fp, []).append(j)
        workers = int(getattr(self.executor, "max_workers", 1) or 1)
        n_shards = workers if self.executor.parallel else 1
        shards: list[_ScenarioBatchTask] = []
        shard_idx: list[list[int]] = []
        for idxs in groups.values():
            per = max(1, -(-len(idxs) // n_shards))
            for a in range(0, len(idxs), per):
                part = idxs[a : a + per]
                shards.append(
                    _ScenarioBatchTask(self.config, tuple(tasks[j] for j in part))
                )
                shard_idx.append(part)
        outs = self.executor.map_batches(run_scenario_batch_task, shards)
        results: "list[ScenarioRunResult | None]" = [None] * len(tasks)
        for part, out in zip(shard_idx, outs):
            for j, res in zip(part, out):
                results[j] = res
        return results  # type: ignore[return-value]

    # -- measurement jitter -------------------------------------------------

    def jitter(self, *key: Any) -> Jitter:
        """Seeded jitter model for one named measurement.

        Keying each measurement (instead of drawing from one sequential
        RNG) makes every cell's noise independent of sweep order and of
        which executor computed it.
        """
        return Jitter.for_key(self.config, *key)

    # -- artifact execution -------------------------------------------------

    def run(self, name: str, **kwargs: Any) -> RunRecord:
        """Execute one artifact by name, memoized per (name, kwargs).

        Returns the :class:`RunRecord`; re-running the same artifact
        with equivalent arguments (explicitly passing a runner default
        counts as equivalent) returns the *same* record object, so one
        session holds at most one record per distinct invocation.
        """
        runner = get_runner(name)
        kwargs = _strip_default_kwargs(runner, kwargs)
        memo_key = (name, repr(sorted(kwargs.items())))
        cached = self._artifacts.get(memo_key)
        if cached is not None:
            return cached
        tracer = get_tracer()
        before = self.stats.snapshot()
        t0 = time.perf_counter()
        if tracer.enabled:
            with tracer.span("session.run", artifact=name):
                result = runner.execute(self, **kwargs)
        else:
            result = runner.execute(self, **kwargs)
        duration = time.perf_counter() - t0
        record = RunRecord(
            artifact=name,
            result=result,
            provenance={
                "artifact": name,
                # Non-default invocation arguments (repr'd): lets the
                # store tell a canonical artifact run from a nested
                # subset run (e.g. fig6's mini-bench fig5 sweep).
                "arguments": {k: repr(v) for k, v in sorted(kwargs.items())},
                "seed": self.config.seed,
                "threads": self.config.threads,
                "repetitions": self.config.repetitions,
                "jitter": self.config.jitter,
                "workloads": list(self.config.workloads),
                "spec_fingerprint": self.spec_fingerprint(),
                "engine_fingerprint": self.engine_fingerprint(),
                "executor": self.executor.name,
                "duration_s": duration,
                "cache": self.stats.delta_since(before),
            },
        )
        self.records.append(record)
        self._artifacts[memo_key] = record
        if self.store is not None:
            self.store.record(record)
        cache_delta = record.provenance["cache"]
        tracer.merge_counters("cache", cache_delta)
        logger.info(
            "artifact %s finished in %.3fs (cache delta: %s)",
            name,
            duration,
            {k: v for k, v in cache_delta.items() if v},
        )
        return record

    def run_all(
        self,
        *,
        include_extensions: bool = False,
        names: "Iterable[str] | None" = None,
    ) -> dict[str, RunRecord]:
        """Run every paper artifact in paper order; returns name -> record.

        With ``include_extensions=True`` the registered extension
        studies (solo, insights, predict, efficiency, allocation) run
        after the paper artifacts, each with its default arguments —
        this is what ``repro run-all`` executes for a campaign.  An
        explicit ``names`` subset runs exactly those artifacts in the
        given order (``repro run-all --shard I/N`` hands each shard its
        slice of the registry this way).
        """
        if names is None:
            names = runner_names(artifact_only=not include_extensions)
        return {name: self.run(name) for name in names}
