"""The Session: shared measurement state for all paper artifacts.

A :class:`Session` owns everything the eleven experiment runners used
to construct privately:

* the :class:`~repro.machine.spec.MachineSpec` and memoized
  :class:`~repro.engine.interval.IntervalEngine` instances (one per
  engine configuration, keyed by fingerprint);
* a cross-experiment **solo cache** keyed by
  ``workload x threads x engine fingerprint`` — Fig 2, Fig 3, Fig 5 and
  Table III all reuse the same 25 solo references instead of
  recomputing them per artifact;
* a cross-experiment **co-run cache** keyed by
  ``fg x bg x split x engine fingerprint`` — Table III's five pairs and
  Fig 8's offender cells are free once the Fig 5 sweep ran;
* the seeded :class:`~repro.core.experiment.Jitter` model, keyed
  per-measurement so results do not depend on iteration order (which is
  what makes the parallel executor bit-identical to the serial one);
* a pluggable :class:`~repro.session.executors.Executor` that fans the
  independent sweep cells out over a process or thread pool;
* optionally a persistent :class:`~repro.store.store.ResultStore`
  (``Session(config, store=...)``): solo/co-run lookups read through
  the disk tier, fresh simulations write behind to it, and every
  executed artifact's record streams into the store's index — a cold
  process over a warm store never re-simulates.

Usage::

    from repro import ExperimentConfig, Session

    session = Session(ExperimentConfig())
    fig5 = session.run("fig5")            # 625-pair sweep
    table3 = session.run("table3")        # solo + pair co-runs all cached
    print(fig5.result.render_fig5())
    everything = session.run_all()        # every paper artifact, one pass
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
from dataclasses import asdict, dataclass
from typing import Any

from repro.core.experiment import ExperimentConfig, Jitter
from repro.engine import CoRunResult, EngineConfig, IntervalEngine, SoloRunResult
from repro.session.executors import Executor, resolve_executor
from repro.session.record import RunRecord
from repro.session.registry import get_runner, runner_names
from repro.workloads.base import WorkloadProfile
from repro.workloads.registry import get_profile


def fingerprint(*parts: Any) -> str:
    """Stable short hash of dataclass configuration objects."""
    blob = json.dumps(
        [asdict(p) if hasattr(p, "__dataclass_fields__") else p for p in parts],
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass
class CacheStats:
    """Hit/miss economics of a session's shared caches.

    ``*_hits`` count in-memory hits, ``*_disk_hits`` count results
    served from an attached :class:`~repro.store.store.ResultStore`
    (read-through), and ``*_misses`` count actual simulations.
    """

    solo_hits: int = 0
    solo_misses: int = 0
    corun_hits: int = 0
    corun_misses: int = 0
    solo_disk_hits: int = 0
    corun_disk_hits: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(asdict(self))

    def delta_since(self, before: dict[str, int]) -> dict[str, int]:
        return {k: v - before[k] for k, v in asdict(self).items()}


def _resolve_store(value: Any) -> Any:
    """Normalize a store argument: ResultStore instance, path, or None.

    Imported lazily — :mod:`repro.store` depends on this module for
    :func:`fingerprint`, so the dependency must stay one-directional at
    import time.
    """
    if value is None:
        return None
    from repro.store import ResultStore

    if isinstance(value, ResultStore):
        return value
    return ResultStore(value)


def _strip_default_kwargs(runner: Any, kwargs: dict[str, Any]) -> dict[str, Any]:
    """Drop kwargs that merely restate the runner's execute defaults, so
    ``run("fig2")`` and ``run("fig2", max_threads=8)`` share one memo."""
    sig = inspect.signature(runner.execute)
    out: dict[str, Any] = {}
    for key, value in kwargs.items():
        param = sig.parameters.get(key)
        if param is not None and param.default is not inspect.Parameter.empty:
            try:
                if value is param.default or value == param.default:
                    continue
            except Exception:
                pass  # incomparable value: keep it
        out[key] = value
    return out


class Session:
    """Shared substrate every artifact runner executes through."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        executor: Executor | str | None = None,
        store: "Any | None" = None,
    ) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self.executor = resolve_executor(executor)
        self.stats = CacheStats()
        #: Every RunRecord produced by this session, in execution order.
        self.records: list[RunRecord] = []
        #: Optional persistent ResultStore: solo/co-run lookups read
        #: through it, fresh simulations write behind to it, and every
        #: executed artifact's record is streamed into it.
        self.store = _resolve_store(store)
        self._engines: dict[str, IntervalEngine] = {}
        self._solos: dict[tuple[str, str, int], SoloRunResult] = {}
        self._coruns: dict[tuple[str, str, str, int, int], CoRunResult] = {}
        self._artifacts: dict[tuple[str, str], RunRecord] = {}
        # Keys promoted from disk by a peek and not yet consumed by
        # co_run — lets the consuming lookup skip the hit counter, so
        # one disk-served measurement is counted exactly once.
        self._disk_promoted: set[tuple[str, str, str, int, int]] = set()

    # -- machine / engine ---------------------------------------------------

    @property
    def spec(self):
        """The shared machine specification."""
        return self.config.spec

    def spec_fingerprint(self) -> str:
        return fingerprint(self.spec)

    def engine_fingerprint(self, engine_config: EngineConfig | None = None) -> str:
        cfg = engine_config if engine_config is not None else self.config.engine_config
        return fingerprint(self.spec, cfg)

    def engine(self, engine_config: EngineConfig | None = None) -> IntervalEngine:
        """Memoized engine for the session spec + an engine config."""
        cfg = engine_config if engine_config is not None else self.config.engine_config
        fp = self.engine_fingerprint(cfg)
        if fp not in self._engines:
            self._engines[fp] = IntervalEngine(spec=self.spec, config=cfg)
        return self._engines[fp]

    # -- shared measurement caches -----------------------------------------

    def solo(
        self,
        name: str,
        *,
        threads: int,
        engine_config: EngineConfig | None = None,
        profile: WorkloadProfile | None = None,
    ) -> SoloRunResult:
        """Solo run, cached across every artifact of this session.

        Lookup order: in-memory cache, then the attached store (disk
        hit), then simulation — which writes behind to both.  Explicit
        ``profile`` overrides bypass the disk tier: the store keys by
        name, and only registry-resolved profiles are guaranteed stable
        under one engine fingerprint.
        """
        engine_fp = self.engine_fingerprint(engine_config)
        key = (engine_fp, name, threads)
        hit = self._solos.get(key)
        if hit is not None:
            self.stats.solo_hits += 1
            return hit
        if self.store is not None and profile is None:
            disk = self.store.get_solo(engine_fp, name, threads)
            if disk is not None:
                self.stats.solo_disk_hits += 1
                self._solos[key] = disk
                return disk
        self.stats.solo_misses += 1
        prof = profile if profile is not None else get_profile(name)
        res = self.engine(engine_config).solo_run(prof, threads=threads)
        self._solos[key] = res
        if self.store is not None and profile is None:
            self.store.put_solo(engine_fp, name, threads, res)
        return res

    def solo_runtime(self, name: str, *, threads: int, engine_config: EngineConfig | None = None) -> float:
        """Solo runtime (seconds)."""
        return self.solo(name, threads=threads, engine_config=engine_config).runtime_s

    def solo_rate(self, name: str, *, threads: int, engine_config: EngineConfig | None = None) -> float:
        """Solo instruction throughput (instructions / second)."""
        res = self.solo(name, threads=threads, engine_config=engine_config)
        return res.metrics.total.instructions / res.runtime_s

    def _corun_key(
        self,
        fg: str,
        bg: str,
        threads: int | None,
        bg_threads: int | None,
        engine_config: EngineConfig | None,
    ) -> tuple[str, str, str, int, int]:
        fg_t = threads if threads is not None else self.config.threads
        bg_t = bg_threads if bg_threads is not None else fg_t
        return (self.engine_fingerprint(engine_config), fg, bg, fg_t, bg_t)

    def cached_co_run(
        self,
        fg: str,
        bg: str,
        *,
        threads: int | None = None,
        bg_threads: int | None = None,
        engine_config: EngineConfig | None = None,
    ) -> CoRunResult | None:
        """Peek the co-run caches without simulating.

        Memory peeks record no stats; a disk peek that finds the result
        promotes it into the in-memory cache and counts one disk hit
        (the fan-out planners use this, so cells already persisted are
        never shipped to workers).  The promoted key is remembered so
        the consuming :meth:`co_run` lookup does not count the same
        measurement a second time as a memory hit.
        """
        key = self._corun_key(fg, bg, threads, bg_threads, engine_config)
        hit = self._coruns.get(key)
        if hit is None and self.store is not None:
            hit = self.store.get_corun(key[0], fg, bg, key[3], key[4])
            if hit is not None:
                self.stats.corun_disk_hits += 1
                self._coruns[key] = hit
                self._disk_promoted.add(key)
        return hit

    def store_co_run(
        self,
        fg: str,
        bg: str,
        result: CoRunResult,
        *,
        threads: int | None = None,
        bg_threads: int | None = None,
        engine_config: EngineConfig | None = None,
    ) -> None:
        """Insert an externally computed co-run (e.g. from a pool worker)
        into the shared cache; counted as a miss, since it was simulated."""
        self.stats.corun_misses += 1
        key = self._corun_key(fg, bg, threads, bg_threads, engine_config)
        self._coruns[key] = result
        if self.store is not None:
            self.store.put_corun(key[0], fg, bg, key[3], key[4], result)

    def co_run(
        self,
        fg: str,
        bg: str,
        *,
        threads: int | None = None,
        bg_threads: int | None = None,
        engine_config: EngineConfig | None = None,
    ) -> CoRunResult:
        """Consolidation co-run, cached across every artifact.

        Solo references (fg runtime, bg rate) come from the shared solo
        cache, so the same floats feed every caller — serial loops,
        parallel workers and later artifacts all see identical results.
        """
        fg_t = threads if threads is not None else self.config.threads
        bg_t = bg_threads if bg_threads is not None else fg_t
        key = self._corun_key(fg, bg, threads, bg_threads, engine_config)
        hit = self._coruns.get(key)
        if hit is not None:
            if key in self._disk_promoted:
                self._disk_promoted.discard(key)  # already counted as a disk hit
            else:
                self.stats.corun_hits += 1
            return hit
        # Disk tier: cached_co_run owns the lookup-and-promote logic.
        promoted = self.cached_co_run(
            fg, bg, threads=threads, bg_threads=bg_threads, engine_config=engine_config
        )
        if promoted is not None:
            self._disk_promoted.discard(key)
            return promoted
        self.stats.corun_misses += 1
        res = self.engine(engine_config).co_run(
            get_profile(fg),
            get_profile(bg),
            threads=fg_t,
            bg_threads=bg_t,
            fg_solo_runtime_s=self.solo_runtime(fg, threads=fg_t, engine_config=engine_config),
            bg_solo_rate=self.solo_rate(bg, threads=bg_t, engine_config=engine_config),
        )
        self._coruns[key] = res
        if self.store is not None:
            self.store.put_corun(key[0], fg, bg, key[3], key[4], res)
        return res

    # -- measurement jitter -------------------------------------------------

    def jitter(self, *key: Any) -> Jitter:
        """Seeded jitter model for one named measurement.

        Keying each measurement (instead of drawing from one sequential
        RNG) makes every cell's noise independent of sweep order and of
        which executor computed it.
        """
        return Jitter.for_key(self.config, *key)

    # -- artifact execution -------------------------------------------------

    def run(self, name: str, **kwargs: Any) -> RunRecord:
        """Execute one artifact by name, memoized per (name, kwargs).

        Returns the :class:`RunRecord`; re-running the same artifact
        with equivalent arguments (explicitly passing a runner default
        counts as equivalent) returns the *same* record object, so one
        session holds at most one record per distinct invocation.
        """
        runner = get_runner(name)
        kwargs = _strip_default_kwargs(runner, kwargs)
        memo_key = (name, repr(sorted(kwargs.items())))
        cached = self._artifacts.get(memo_key)
        if cached is not None:
            return cached
        before = self.stats.snapshot()
        t0 = time.perf_counter()
        result = runner.execute(self, **kwargs)
        duration = time.perf_counter() - t0
        record = RunRecord(
            artifact=name,
            result=result,
            provenance={
                "artifact": name,
                # Non-default invocation arguments (repr'd): lets the
                # store tell a canonical artifact run from a nested
                # subset run (e.g. fig6's mini-bench fig5 sweep).
                "arguments": {k: repr(v) for k, v in sorted(kwargs.items())},
                "seed": self.config.seed,
                "threads": self.config.threads,
                "repetitions": self.config.repetitions,
                "jitter": self.config.jitter,
                "workloads": list(self.config.workloads),
                "spec_fingerprint": self.spec_fingerprint(),
                "engine_fingerprint": self.engine_fingerprint(),
                "executor": self.executor.name,
                "duration_s": duration,
                "cache": self.stats.delta_since(before),
            },
        )
        self.records.append(record)
        self._artifacts[memo_key] = record
        if self.store is not None:
            self.store.record(record)
        return record

    def run_all(self, *, include_extensions: bool = False) -> dict[str, RunRecord]:
        """Run every paper artifact in paper order; returns name -> record.

        With ``include_extensions=True`` the registered extension
        studies (solo, insights, predict, efficiency, allocation) run
        after the paper artifacts, each with its default arguments —
        this is what ``repro run-all`` executes for a campaign.
        """
        return {
            name: self.run(name)
            for name in runner_names(artifact_only=not include_extensions)
        }
