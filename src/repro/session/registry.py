"""The artifact registry: name -> Runner class.

Runners register themselves at import time::

    @register_runner("fig5", order=50)
    class ConsolidationRunner(Runner):
        ...

and the CLI / :class:`~repro.session.session.Session` dispatch by
artifact name instead of a hand-written if-ladder.  The built-in
runners live in :mod:`repro.core`; they are imported lazily on first
lookup so ``repro.session`` stays import-cycle free.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.session.base import Runner

_RUNNERS: dict[str, type[Runner]] = {}
_INSTANCES: dict[str, Runner] = {}


def register_runner(name: str, *, title: str = "", artifact: bool = True, order: int = 1000):
    """Class decorator registering a :class:`Runner` under an artifact name."""

    def decorate(cls: type[Runner]) -> type[Runner]:
        if not issubclass(cls, Runner):
            raise ExperimentError(f"{cls.__name__} must subclass Runner")
        if name in _RUNNERS and _RUNNERS[name] is not cls:
            raise ExperimentError(f"artifact {name!r} already registered")
        cls.name = name
        cls.artifact = artifact
        cls.order = order
        if title:
            cls.title = title
        _RUNNERS[name] = cls
        return cls

    return decorate


def _ensure_builtin_runners() -> None:
    """Import the modules that define the built-in runners."""
    import repro.core  # noqa: F401  (registers one runner per artifact)


def get_runner(name: str) -> Runner:
    """The (stateless, cached) runner instance for an artifact name."""
    _ensure_builtin_runners()
    try:
        cls = _RUNNERS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown artifact {name!r}; known: {', '.join(runner_names())}"
        ) from None
    if name not in _INSTANCES:
        _INSTANCES[name] = cls()
    return _INSTANCES[name]


def runner_names(*, artifact_only: bool = False) -> list[str]:
    """All registered artifact names in paper order."""
    _ensure_builtin_runners()
    names = [
        n for n, cls in _RUNNERS.items() if cls.artifact or not artifact_only
    ]
    return sorted(names, key=lambda n: (_RUNNERS[n].order, n))
