"""repro.session — the unified experiment substrate.

One :class:`Session` owns the machine spec, the cross-experiment solo
and co-run caches, the seeded jitter model and a pluggable executor;
each paper artifact is a registered :class:`Runner` returning a
structured :class:`RunRecord`::

    from repro import ExperimentConfig, Session

    session = Session(ExperimentConfig(), executor="parallel")
    record = session.run("fig5")
    print(record.result.render_fig5())
    record.to_json()                      # persistable provenance
"""

from repro.session.base import Runner, fingerprint, jsonify
from repro.session.executors import (
    MIN_PARALLEL_CELLS,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.session.record import RunRecord
from repro.session.registry import get_runner, register_runner, runner_names
from repro.session.scenario import (
    AppPlacement,
    Scenario,
    ScenarioResult,
    ScenarioSet,
    parse_pinning,
    parse_placement,
    parse_way_mask,
)
from repro.session.session import CacheStats, Session

__all__ = [
    "AppPlacement",
    "CacheStats",
    "Executor",
    "MIN_PARALLEL_CELLS",
    "ParallelExecutor",
    "RunRecord",
    "Runner",
    "Scenario",
    "ScenarioResult",
    "ScenarioSet",
    "SerialExecutor",
    "Session",
    "ThreadExecutor",
    "fingerprint",
    "get_runner",
    "jsonify",
    "parse_pinning",
    "parse_placement",
    "parse_way_mask",
    "register_runner",
    "resolve_executor",
    "runner_names",
]
