"""Pluggable execution backends for embarrassingly parallel sweeps.

The independent cells of the Fig 5 / Table III / mini-bench sweeps —
and the predictor's bubble characterizations and the allocation
sweep's core splits — fan out through ``session.executor.map``.  Three
backends:

* :class:`SerialExecutor` — the default; runs tasks in-process.
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out.  Task functions are module-level (picklable) and rebuild
  their engine from the task's spec + engine config, so worker results
  are bit-identical to the serial backend (the engine is deterministic
  and measurement jitter is keyed per cell, not drawn sequentially).
* :class:`ThreadExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  fan-out for hosts where fork/spawn startup dominates the sweep (the
  ROADMAP's thread-pool follow-on).  The numpy-heavy engine kernels
  release the GIL often enough for modest thread counts to help, and
  there is no pickling or process-spawn cost at all.

Executors only ever see pure functions over picklable task tuples; all
shared state (solo caches, jitter seeds) is resolved by the session
*before* the fan-out and shipped inside the tasks.  That discipline is
what lets the three backends produce identical bits.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.errors import ExperimentError

#: Fan-outs below this many cells run in-process even on parallel
#: executors: pool spawn + pickling overhead loses to just computing
#: tiny sweeps (BENCH_chunksize.json recorded a 0.19x "speedup" before
#: this fallback existed).
MIN_PARALLEL_CELLS = 16


@runtime_checkable
class Executor(Protocol):
    """Minimal mapping interface runners rely on."""

    name: str
    parallel: bool

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], *, chunksize: int = 1
    ) -> list[Any]:
        """Apply ``fn`` to every task, preserving order.

        ``chunksize`` batches tasks per worker dispatch: fine-grained
        cells (one fig8-style co-run each) amortize pickling and
        dispatch overhead with chunks > 1; coarse tasks keep 1 for
        better load balancing.  Backends without per-dispatch overhead
        ignore it.
        """
        ...

    def map_batches(
        self, fn: Callable[[Any], Any], batches: Iterable[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every *batch* of tasks, preserving order.

        A batch is a sized collection of cells solved together (the
        batch engine's shard unit); ``len(batch)`` counts its cells.
        Parallel backends dispatch one batch per worker round-trip and
        fall back to in-process execution when the total cell count is
        below :data:`MIN_PARALLEL_CELLS`.
        """
        ...


class SerialExecutor:
    """In-process, in-order execution (the default)."""

    name = "serial"
    parallel = False

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], *, chunksize: int = 1
    ) -> list[Any]:
        return [fn(t) for t in tasks]

    def map_batches(
        self, fn: Callable[[Any], Any], batches: Iterable[Any]
    ) -> list[Any]:
        return [fn(b) for b in batches]


class ParallelExecutor:
    """Process-pool fan-out over independent sweep cells.

    ``max_workers`` defaults to the host's CPU count.  Single-task maps
    skip the pool entirely.  ``chunksize`` forwards to
    :meth:`ProcessPoolExecutor.map`, batching that many tasks per IPC
    round-trip (see ``benchmarks/bench_chunksize.py`` for the
    measured sweet spots).
    """

    parallel = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ExperimentError("max_workers must be >= 1")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)

    @property
    def name(self) -> str:
        return f"process-pool[{self.max_workers}]"

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], *, chunksize: int = 1
    ) -> list[Any]:
        items: Sequence[Any] = list(tasks)
        if len(items) < MIN_PARALLEL_CELLS:
            # Tiny sweeps never amortize process spawn + pickling
            # (BENCH_chunksize's 0.19x regression); run them inline.
            return [fn(t) for t in items]
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items, chunksize=max(1, chunksize)))
        except BrokenProcessPool as exc:
            # A worker was killed (OOM, signal) mid-sweep: surface a
            # library error instead of the pool's opaque internal one.
            raise ExperimentError(
                f"a worker process died during a {len(items)}-task sweep "
                "(out of memory or killed); retry with fewer --workers or "
                "--executor thread"
            ) from exc

    def map_batches(
        self, fn: Callable[[Any], Any], batches: Iterable[Any]
    ) -> list[Any]:
        items: Sequence[Any] = list(batches)
        cells = sum(len(b) for b in items)
        if len(items) <= 1 or cells < MIN_PARALLEL_CELLS:
            return [fn(b) for b in items]
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items, chunksize=1))
        except BrokenProcessPool as exc:
            raise ExperimentError(
                f"a worker process died during a {cells}-cell batched sweep "
                "(out of memory or killed); retry with fewer --workers or "
                "--executor thread"
            ) from exc


class ThreadExecutor:
    """Thread-pool fan-out: no fork/spawn or pickling overhead.

    Tasks run in the parent process, so this backend also serves hosts
    where process pools are unavailable (restricted sandboxes) —
    results stay bit-identical because task functions are pure and the
    engine is deterministic.
    """

    parallel = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ExperimentError("max_workers must be >= 1")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)

    @property
    def name(self) -> str:
        return f"thread-pool[{self.max_workers}]"

    def map(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], *, chunksize: int = 1
    ) -> list[Any]:
        # Threads share one address space: no pickling or IPC to
        # amortize, so chunksize is accepted for interface parity but
        # has no effect (matching ThreadPoolExecutor semantics).
        items: Sequence[Any] = list(tasks)
        if len(items) <= 1:
            return [fn(t) for t in items]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))

    def map_batches(
        self, fn: Callable[[Any], Any], batches: Iterable[Any]
    ) -> list[Any]:
        items: Sequence[Any] = list(batches)
        if len(items) <= 1 or sum(len(b) for b in items) < MIN_PARALLEL_CELLS:
            return [fn(b) for b in items]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))


def resolve_executor(value: "Executor | str | None") -> Executor:
    """Normalize an executor argument: instance, name, or None (serial)."""
    if value is None:
        return SerialExecutor()
    if isinstance(value, str):
        if value == "serial":
            return SerialExecutor()
        if value in ("parallel", "process", "process-pool"):
            return ParallelExecutor()
        if value in ("thread", "threads", "thread-pool"):
            return ThreadExecutor()
        raise ExperimentError(
            f"unknown executor {value!r}; use 'serial', 'parallel' or 'thread'"
        )
    if isinstance(value, Executor):
        return value
    raise ExperimentError(f"not an executor: {value!r}")
