"""Command-line interface: regenerate any paper artifact.

Usage::

    repro-interference list
    repro-interference fig2 [--workloads G-PR,G-CC] [--csv]
    repro-interference fig5 --workloads G-CC,fotonik3d,swaptions
    repro-interference table4

Experiment ids match DESIGN.md's per-experiment index: table1, fig2,
table2, fig3, fig4, fig5, table3, fig6, fig7, fig8, table4.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import (
    ExperimentConfig,
    run_bandwidth_sweep,
    run_consolidation,
    run_gemini_vs_offenders,
    run_gemini_vs_stream,
    run_minibench,
    run_pair_bandwidth,
    run_prefetch_sensitivity,
    run_scalability,
    run_table4,
)
from repro.core.report import ascii_table
from repro.workloads.calibration import APPLICATIONS, MINI_BENCHMARKS
from repro.workloads.registry import list_workloads, suite_of


def _cmd_table1(config: ExperimentConfig, args: argparse.Namespace) -> str:
    rows = [[suite_of(n), n] for n in list_workloads()]
    return ascii_table(["suite", "application"], rows,
                       title="Table I: applications chosen for each suite")


def _cmd_fig2(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_scalability(config).render_fig2()


def _cmd_table2(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_scalability(config).render_table2()


def _cmd_fig3(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_bandwidth_sweep(config).render_fig3()


def _cmd_fig4(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_prefetch_sensitivity(config).render_fig4()


def _cmd_fig5(config: ExperimentConfig, args: argparse.Namespace) -> str:
    matrix = run_consolidation(config)
    if args.csv:
        return matrix.to_csv()
    out = [matrix.render_fig5()]
    counts = matrix.classification_counts()
    out.append("pair relationships: " + ", ".join(f"{k.value}={v}" for k, v in counts.items()))
    out.append("friendly backgrounds (<=1.1x to all): "
               + ", ".join(matrix.friendly_backgrounds()))
    return "\n".join(out)


def _cmd_table3(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_pair_bandwidth(config).render_table3()


def _cmd_fig6(config: ExperimentConfig, args: argparse.Namespace) -> str:
    res = run_minibench(config)
    out = [res.render_fig6()]
    for bg in ("Bandit", "Stream"):
        out.append(
            f"mean normalized speedup vs {bg}: {res.overall_mean(bg):.2f} "
            f"(Gemini {res.suite_mean('GeminiGraph', bg):.2f}, "
            f"PowerGraph {res.suite_mean('PowerGraph', bg):.2f})"
        )
    return "\n".join(out)


def _cmd_fig7(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_gemini_vs_stream(config).render(
        "Fig 7: Gemini applications co-running with Stream"
    )


def _cmd_fig8(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_gemini_vs_offenders(config).render(
        "Fig 8: Gemini applications co-running with offenders"
    )


def _cmd_table4(config: ExperimentConfig, args: argparse.Namespace) -> str:
    return run_table4(config).render(
        "Table IV: profiling results of P-PR and fotonik3d"
    )


def _cmd_solo(config: ExperimentConfig, args: argparse.Namespace) -> str:
    """Full solo characterization card for each requested workload."""
    from repro.core import SoloCache
    from repro.core.scalability import classify_speedup
    from repro.tools import VtuneProfiler
    from repro.units import GB

    engine = config.make_engine()
    cache = SoloCache(engine)
    vtune = VtuneProfiler()
    cards = []
    for app in config.workloads:
        solo = cache.get(app, threads=config.threads)
        t1 = cache.runtime(app, threads=1)
        t8 = cache.runtime(app, threads=8)
        tot = solo.metrics.total
        cards.append("\n".join([
            f"== {app} ({suite_of(app)}) ==",
            f"runtime @{config.threads}T : {solo.runtime_s:.1f} s",
            f"bandwidth       : {solo.metrics.avg_bandwidth_bytes / GB:.1f} GB/s",
            f"CPI / L2_PCP    : {tot.cpi:.2f} / {tot.l2_pcp:.1%}",
            f"LLC MPKI / LL   : {tot.llc_mpki:.1f} / {tot.ll:.1f}",
            f"8T speedup      : {t1 / t8:.1f}x -> {classify_speedup(t1 / t8).value}",
            vtune.report(solo.metrics),
        ]))
    return "\n\n".join(cards)


def _cmd_insights(config: ExperimentConfig, args: argparse.Namespace) -> str:
    from repro.core import MatrixInsights

    return MatrixInsights.derive(run_consolidation(config)).render()


def _cmd_predict(config: ExperimentConfig, args: argparse.Namespace) -> str:
    from repro.core import BubbleUpPredictor

    predictor = BubbleUpPredictor(config=config).fit()
    truth = run_consolidation(config)
    scores = predictor.evaluate(truth)
    lines = ["Bubble-Up predictor vs engine ground truth:"]
    lines += [f"  {k}: {v:.3f}" for k, v in scores.items()]
    lines.append("pressure scores: " + ", ".join(
        f"{a}={p:.2f}" for a, p in sorted(
            predictor.pressure.items(), key=lambda kv: -kv[1]
        )
    ))
    return "\n".join(lines)


def _cmd_allocation(config: ExperimentConfig, args: argparse.Namespace) -> str:
    from repro.core import run_allocation_sweep

    if len(config.workloads) < 2:
        return "need exactly two workloads (--workloads fg,bg)"
    fg, bg = config.workloads[0], config.workloads[1]
    sweep = run_allocation_sweep(fg, bg, config)
    best = sweep.best_split()
    return (
        sweep.render()
        + f"best split: {best.fg_threads}+{best.bg_threads} "
        f"(weighted speedup {best.weighted_speedup:.2f})"
    )


def _cmd_efficiency(config: ExperimentConfig, args: argparse.Namespace) -> str:
    from repro.core import run_efficiency

    apps = config.workloads
    pairs = tuple(
        (apps[i], apps[i + 1]) for i in range(0, len(apps) - 1, 2)
    )
    if not pairs:
        return "need at least two workloads (--workloads a,b)"
    return run_efficiency(pairs, config).render()


_COMMANDS = {
    "table1": _cmd_table1,
    "fig2": _cmd_fig2,
    "table2": _cmd_table2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "table3": _cmd_table3,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "table4": _cmd_table4,
    "solo": _cmd_solo,
    "insights": _cmd_insights,
    "predict": _cmd_predict,
    "efficiency": _cmd_efficiency,
    "allocation": _cmd_allocation,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-interference",
        description="Regenerate figures/tables of the interference characterization paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["list"],
        help="experiment id (DESIGN.md index) or 'list'",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated subset of applications (default: all 25)",
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="threads per application (default 4)"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="measurement repetitions (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0, help="jitter seed")
    parser.add_argument("--csv", action="store_true", help="CSV output where supported")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("experiments:", ", ".join(sorted(_COMMANDS)))
        print("applications:", ", ".join(APPLICATIONS))
        print("mini-benchmarks:", ", ".join(MINI_BENCHMARKS))
        return 0
    if args.workloads:
        names = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
    else:
        names = APPLICATIONS
    config = ExperimentConfig(
        threads=args.threads,
        repetitions=args.repetitions,
        seed=args.seed,
        workloads=names,
    )
    print(_COMMANDS[args.experiment](config, args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
