"""Command-line interface: regenerate any paper artifact.

Usage::

    repro list
    repro fig2 [--workloads G-PR,G-CC] [--csv]
    repro fig5 --workloads G-CC,fotonik3d,swaptions --parallel
    repro table4
    repro --store .repro-store run-all          # campaign + manifest.json
    repro --store .repro-store fig5             # warm-store single artifact
    repro --store .repro-store store ls
    repro --store .repro-store store show fig5

Experiment ids are artifact names in the runner registry
(:mod:`repro.session.registry`): table1, fig2, table2, fig3, fig4,
fig5, table3, fig6, fig7, fig8, table4, plus the extension studies
(solo, insights, predict, efficiency, allocation).  Every invocation
builds one :class:`~repro.session.session.Session`, so ``--parallel``
(or ``--executor thread``) fans the independent sweep cells out with
bit-identical results.

With ``--store DIR`` the session reads measurements through the
persistent :class:`~repro.store.store.ResultStore` and writes fresh
ones behind, every executed artifact is streamed into
``DIR/results/`` + ``DIR/index.jsonl``, and ``run-all`` freezes the
campaign into ``DIR/manifest.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core import ExperimentConfig
from repro.errors import ReproError, StoreError
from repro.session import (
    ParallelExecutor,
    Session,
    ThreadExecutor,
    get_runner,
    runner_names,
)
from repro.workloads.calibration import APPLICATIONS, MINI_BENCHMARKS

#: Non-artifact CLI commands sharing the experiment position.
_COMMANDS = ("list", "run-all", "store")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-interference",
        description="Regenerate figures/tables of the interference characterization paper.",
    )
    parser.add_argument(
        "experiment",
        choices=runner_names() + list(_COMMANDS),
        help="artifact name from the runner registry, or list / run-all / store",
    )
    parser.add_argument(
        "subargs",
        nargs="*",
        help="arguments for 'store' (ls | show <artifact-or-run-id>)",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated subset of applications (default: all 25)",
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="threads per application (default 4)"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="measurement repetitions (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0, help="jitter seed")
    parser.add_argument("--csv", action="store_true", help="CSV output where supported")
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent result store: read measurements through DIR, "
        "write fresh ones behind, stream records + index",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "parallel", "thread"),
        default=None,
        help="sweep fan-out backend (default serial; 'parallel' = process "
        "pool, 'thread' = thread pool for hosts where fork dominates)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="shorthand for --executor parallel",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for --executor parallel/thread (default: CPU count)",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="manifest output path for run-all "
        "(default: <store>/manifest.json, or ./manifest.json without --store)",
    )
    return parser


def _list_text() -> str:
    lines = ["experiments:"]
    for name in runner_names():
        runner = get_runner(name)
        lines.append(f"  {name:<12} {runner.title}")
    lines.append("commands: run-all (campaign + manifest), store ls/show")
    lines.append("applications: " + ", ".join(APPLICATIONS))
    lines.append("mini-benchmarks: " + ", ".join(MINI_BENCHMARKS))
    return "\n".join(lines)


def _resolve_executor_arg(args: argparse.Namespace):
    name = args.executor or ("parallel" if args.parallel else None)
    if name == "parallel":
        return ParallelExecutor(args.workers)
    if name == "thread":
        return ThreadExecutor(args.workers)
    return None


def _store_command(args: argparse.Namespace) -> int:
    """``repro store ls`` / ``repro store show <artifact-or-run-id>``."""
    from repro.store import ResultStore

    if args.store is None:
        print("error: 'store' requires --store DIR", file=sys.stderr)
        return 2
    sub = args.subargs[0] if args.subargs else "ls"
    store = ResultStore(args.store)
    if sub == "ls":
        counts = store.describe()
        print(
            f"store {store.root}: {counts['solo_entries']} solo, "
            f"{counts['corun_entries']} co-run, {counts['records']} record(s), "
            f"{counts['index_lines']} index line(s)"
        )
        for entry in store.query():
            print(
                f"  {entry.run_id:<32} {entry.artifact:<12} "
                f"spec={entry.spec_fingerprint} {entry.path}"
            )
        return 0
    if sub == "show":
        if len(args.subargs) < 2:
            print("error: store show needs an artifact name or run id", file=sys.stderr)
            return 2
        target = args.subargs[1]
        record = (
            store.latest(target) if target in runner_names() else store.load(target)
        )
        runner = get_runner(record.artifact)
        from repro.session import Runner

        if type(runner).decode is not Runner.decode:
            # The runner rebuilds its result object from the payload, so
            # the stored record renders exactly like a live run.
            print(runner.render(record.result, csv=args.csv))
        else:
            # Default decode keeps the raw JSON payload: show it as-is.
            print(json.dumps(record.result, indent=1, default=str))
        print(json.dumps(record.provenance, indent=1))
        return 0
    print(f"error: unknown store subcommand {sub!r}; use ls or show", file=sys.stderr)
    return 2


def _run_all(args: argparse.Namespace, session: Session) -> int:
    """Execute every registered runner and freeze the campaign manifest."""
    from repro.store import write_manifest

    records = session.run_all(include_extensions=True)
    for name, record in records.items():
        prov = record.provenance
        cache = prov["cache"]
        served = (
            cache.get("solo_hits", 0)
            + cache.get("corun_hits", 0)
            + cache.get("solo_disk_hits", 0)
            + cache.get("corun_disk_hits", 0)
        )
        print(
            f"{name:<12} {prov['duration_s'] * 1e3:8.1f} ms   "
            f"cache: {served} served / "
            f"{cache.get('solo_misses', 0) + cache.get('corun_misses', 0)} simulated"
        )
    if args.manifest is not None:
        manifest_path = Path(args.manifest)
    elif session.store is not None:
        manifest_path = session.store.root / "manifest.json"
    else:
        manifest_path = Path("manifest.json")
    write_manifest(session, manifest_path, session.store)
    stats = session.stats
    print(
        f"{len(records)} artifacts -> {manifest_path}   "
        f"disk hits: {stats.solo_disk_hits} solo / {stats.corun_disk_hits} co-run"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print(_list_text())
        return 0
    if args.experiment != "store" and args.subargs:
        print(
            f"error: unexpected argument(s): {' '.join(args.subargs)}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.experiment == "store":
            return _store_command(args)
        if args.workloads:
            names = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
        else:
            names = APPLICATIONS
        config = ExperimentConfig(
            threads=args.threads,
            repetitions=args.repetitions,
            seed=args.seed,
            workloads=names,
        )
        session = Session(
            config, executor=_resolve_executor_arg(args), store=args.store
        )
        if args.experiment == "run-all":
            return _run_all(args, session)
        runner = get_runner(args.experiment)
        record = session.run(args.experiment)
        print(runner.render(record.result, csv=args.csv))
    except StoreError as exc:
        print(f"store error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly (and keep
        # the interpreter from re-raising on stdout flush at shutdown).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
