"""Command-line interface: regenerate any paper artifact.

Usage::

    repro list
    repro fig2 [--workloads G-PR,G-CC] [--csv]
    repro fig5 --workloads G-CC,fotonik3d,swaptions --parallel
    repro table4
    repro scenario run G-CC:2 fotonik3d:2 swaptions:2 --llc-policy static
    repro scenario run G-CC:8 Stream:8 --smt     # 16 threads on 8 SMT cores
    repro scenario run G-CC:4 Stream:4 --ways G-CC:0xF0 Stream:0x0F  # CAT masks
    repro scenario run G-CC:1 Stream:1 --smt --pin G-CC:0 Stream:0   # share a core
    repro consolidate-n --workloads G-CC,fotonik3d,swaptions
    repro cat-sweep                              # way-mask Pareto sweep
    repro --store .repro-store run-all          # campaign + manifest.json
    repro --store .repro-store run-all --shard 1/2   # one shard of a campaign
    repro --store .repro-store campaign --workers 4  # multi-process campaign
    repro --store .repro-store fig5             # warm-store single artifact
    repro --store .repro-store store ls
    repro --store .repro-store store show fig5
    repro --store .repro-store scenario ls      # persisted N-way scenarios
    repro --store .repro-store store gc --dry-run
    repro store diff A/manifest.json B/manifest.json
    repro --store .repro-store sched replay --trace seed:0:10 \\
        --policy interference --policy baseline  # placement policies head to head
    repro --store .repro-store sched replay --trace seed:0:10:2:0.5 --replan
    repro sched decide G-CC:4 --machines 2       # one admission what-if
    repro --store .repro-store serve start --port 7453 --budget-s 0.25
    repro serve submit G-CC:4 t000 --port 7453   # one live admission
    repro serve drain --trace seed:0:10:2:0.5 --port 7453 --json
    repro serve metrics --port 7453; repro serve stop --port 7453
    repro traffic gen --seed 0 --out day.json    # a seeded diurnal day
    repro traffic stats --trace diurnal:0 --json # per-hour arrival shape
    repro --store .repro-store traffic-replay --rate 8 --replan
    repro --store .repro-store sched replay --traffic model.json
    repro --store .repro-store store ls --json   # scripted consumption
    repro --store .repro-store store stats       # per-artifact run/cache stats
    repro --store .repro-store campaign --workers 2 --telemetry  # record spans
    repro --store .repro-store trace summary     # where did the wall time go?
    repro --store .repro-store trace export --format chrome --out trace.json
    repro -v --store .repro-store fig5           # INFO logging to stderr

Experiment ids are artifact names in the runner registry
(:mod:`repro.session.registry`): table1, fig2, table2, fig3, fig4,
fig5, table3, fig6, fig7, fig8, table4, plus the extension studies
(solo, insights, predict, efficiency, allocation).  Every invocation
builds one :class:`~repro.session.session.Session`, so ``--parallel``
(or ``--executor thread``) fans the independent sweep cells out with
bit-identical results.

With ``--store DIR`` the session reads measurements through the
persistent :class:`~repro.store.store.ResultStore` and writes fresh
ones behind, every executed artifact is streamed into
``DIR/results/`` + a per-process index segment under ``DIR/index/``,
and ``run-all`` freezes the campaign into ``DIR/manifest.json``.

One store safely serves many processes: ``repro campaign --workers N``
forks N workers that steal artifacts off the shared registry, and
``run-all --shard I/N`` runs a deterministic slice (launch the N
shards concurrently on one store — the index is per-process segmented
and cache writes are lock-coordinated, so the merged campaign is
cell-for-cell identical to a serial one).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core import ExperimentConfig
from repro.engine.interval import LLC_POLICIES
from repro.errors import ReproError, StoreError
from repro.session import (
    ParallelExecutor,
    Scenario,
    Session,
    ThreadExecutor,
    get_runner,
    parse_pinning,
    parse_way_mask,
    runner_names,
)
from repro.workloads.calibration import APPLICATIONS, MINI_BENCHMARKS

#: Non-artifact CLI commands sharing the experiment position
#: ("scenario" doubles as a registered runner: bare `repro scenario`
#: runs the default scenario, `repro scenario run ...` the subcommand).
_COMMANDS = (
    "list", "run-all", "campaign", "store", "scenario", "sched", "trace",
    "serve", "traffic",
)

#: Shipped placement policies (mirrors repro.sched.policy.POLICIES;
#: spelled out so parser construction stays import-light).
_POLICY_CHOICES = ("baseline", "interference")

#: Artifacts that honour the --llc-policy/--smt engine overrides.
_SCENARIO_ARTIFACTS = ("scenario", "consolidate-n", "scenario-set")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-interference",
        description="Regenerate figures/tables of the interference characterization paper.",
        epilog=(
            "Trace / traffic spec grammar for 'sched replay', 'serve drain' "
            "and 'traffic' (--trace seed:S:N[:T[:D]] | diurnal:S[:H[:T]] | "
            "FILE; --traffic MODEL.json): see docs/trace-format.md. "
            "Subsystem map: docs/architecture.md."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=list(dict.fromkeys(runner_names() + list(_COMMANDS))),
        help="artifact name from the runner registry, or list / run-all / store / scenario",
    )
    parser.add_argument(
        "subargs",
        nargs="*",
        help="arguments for 'store' (ls | show <artifact-or-run-id> | gc | "
        "diff <manifest-A> <manifest-B> | stats), 'scenario' "
        "(run <app[:threads]> ... | ls), 'sched' "
        "(replay | decide <app[:threads]>), 'trace' "
        "(show | export | summary), 'serve' "
        "(start | submit <app[:threads]> [id] | drain | stop | metrics) "
        "and 'traffic' (gen | show | stats)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log to stderr: -v INFO, -vv DEBUG (default: warnings only)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress warnings on stderr (errors only)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record spans + metrics into <store>/telemetry during this "
        "invocation (requires --store; inherited by campaign/pool "
        "workers; never changes results — inspect with 'trace')",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated subset of applications (default: all 25)",
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="threads per application (default 4)"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="measurement repetitions (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0, help="jitter seed")
    parser.add_argument("--csv", action="store_true", help="CSV output where supported")
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent result store: read measurements through DIR, "
        "write fresh ones behind, stream records + index",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "parallel", "thread"),
        default=None,
        help="sweep fan-out backend (default serial; 'parallel' = process "
        "pool, 'thread' = thread pool for hosts where fork dominates)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="shorthand for --executor parallel",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for --executor parallel/thread (default: CPU count); "
        "for 'campaign': number of worker processes (default 2)",
    )
    parser.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="tasks per worker dispatch for scenario fan-outs "
        "(default: automatic from task and worker counts)",
    )
    parser.add_argument(
        "--engine-batch",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="solve scenario sweeps through the stacked batch engine "
        "(default on; --no-engine-batch restores the per-cell scalar "
        "path — results are bit-identical; also settable via "
        "REPRO_ENGINE_BATCH=0)",
    )
    parser.add_argument(
        "--llc-policy",
        choices=LLC_POLICIES,
        default=None,
        help="LLC sharing policy override for scenario / consolidate-n "
        "(default: the engine's 'pressure' model)",
    )
    parser.add_argument(
        "--smt",
        action="store_true",
        help="run scenarios on the SMT-enabled spec variant "
        "(2 hardware threads per core)",
    )
    parser.add_argument(
        "--ways",
        metavar="NAME:BITMAP",
        nargs="+",
        default=None,
        help="per-app CAT LLC way masks for 'scenario run', e.g. "
        "--ways G-CC:0xF0 Stream:0x0F (apps without a mask keep all ways)",
    )
    parser.add_argument(
        "--pin",
        metavar="NAME:CORE[,CORE...]",
        nargs="+",
        default=None,
        help="per-app core pinnings for 'scenario run', e.g. "
        "--pin G-CC:0,1 Stream:0,1 (pinned cores are reserved; unpinned "
        "apps schedule onto the remaining ones)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="for 'store gc': report what would be pruned without deleting",
    )
    parser.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="for 'run-all': run only round-robin shard I of N (1-based) "
        "of the runner registry; launch all N shards against one --store "
        "(concurrently is fine) for a sharded campaign",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="manifest output path for run-all "
        "(default: <store>/manifest.json, or ./manifest.json without --store)",
    )
    parser.add_argument(
        "--trace",
        metavar="SPEC",
        default=None,
        help="for 'sched replay' / 'serve drain' / 'traffic show|stats': "
        "arrival trace — seed:S:N[:T[:D]] (synthetic), diurnal:S[:H[:T]] "
        "(an open-loop diurnal day) or a trace JSON file path "
        "(default: a 10-arrival trace seeded from --seed); grammar in "
        "docs/trace-format.md",
    )
    parser.add_argument(
        "--traffic",
        metavar="MODEL",
        default=None,
        help="for 'traffic', 'traffic-replay', 'sched replay' and 'serve "
        "drain': generate the arrival trace from a traffic-model JSON "
        "file (curve + mix + rate; schema in docs/trace-format.md); "
        "mutually exclusive with --trace",
    )
    parser.add_argument(
        "--hours",
        type=float,
        default=None,
        help="for 'traffic' / 'traffic-replay': trace hours to generate "
        "(default 24, one full day)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="for 'traffic' / 'traffic-replay': time scale factor — trace "
        "minutes per simulated minute (default 60: a 24h day in 1440 "
        "simulated seconds)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="for 'traffic' / 'traffic-replay': arrivals per trace hour at "
        "the diurnal peak (default 6)",
    )
    parser.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        action="append",
        default=None,
        help="for 'sched': placement policy; repeat to replay several "
        "head to head (default: baseline and interference)",
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=None,
        help="for 'sched': homogeneous cluster size (default 2)",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=None,
        help="for 'sched': per-tenant slowdown SLO (default: the paper's "
        "1.5x victim threshold)",
    )
    parser.add_argument(
        "--cluster",
        metavar="PATH",
        default=None,
        help="for 'sched decide': cluster state JSON (machines + resident "
        "tenants; default: an empty homogeneous cluster of --machines)",
    )
    parser.add_argument(
        "--replan",
        action="store_true",
        help="for 'sched replay': re-plan the vacated machine on every "
        "departure (re-partitions / SLO-relief migrations land in the "
        "decision log as replan events)",
    )
    parser.add_argument(
        "--host",
        default=None,
        help="for 'serve': daemon bind/connect address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="for 'serve': daemon port (default 7453; 0 binds an "
        "ephemeral port, announced on stdout)",
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=None,
        help="for 'serve start': per-arrival admission-latency budget in "
        "seconds — observability only (responses/metrics flag overruns; "
        "decisions never change)",
    )
    parser.add_argument(
        "--no-replan",
        action="store_true",
        help="for 'serve start': disable departure-time re-planning "
        "(the daemon re-plans by default, unlike offline replay)",
    )
    parser.add_argument(
        "--solo-s",
        type=float,
        default=None,
        help="for 'serve submit': the arrival's work in solo-execution "
        "seconds (default 1.0)",
    )
    parser.add_argument(
        "--format",
        choices=("chrome", "csv", "json"),
        default=None,
        help="for 'trace export': chrome (Perfetto-loadable trace-event "
        "JSON, the default), csv (per-span-name summary rows) or json "
        "(raw spans + merged metrics)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="for 'trace export' / 'traffic gen': write to PATH instead "
        "of stdout",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="for 'trace show': print at most N spans (default: all)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON output for 'sched', 'serve', 'traffic', "
        "'traffic-replay', 'store ls', 'store stats', 'scenario ls' and "
        "'trace show/summary'",
    )
    return parser


def _list_text() -> str:
    lines = ["experiments:"]
    for name in runner_names():
        runner = get_runner(name)
        lines.append(f"  {name:<12} {runner.title}")
    lines.append(
        "commands: run-all [--shard I/N] (campaign + manifest), "
        "campaign (multi-process run-all), store ls/show/gc/diff/stats, "
        "scenario run [--ways NAME:BITMAP ...] [--pin NAME:CORES ...] / ls, "
        "sched replay [--trace seed:S:N] [--policy P ...] / decide APP[:T], "
        "trace show/export/summary (spans recorded with --telemetry), "
        "serve start/submit/drain/stop/metrics (the scheduler daemon), "
        "traffic gen/show/stats [--traffic MODEL] (diurnal open-loop days)"
    )
    lines.append("applications: " + ", ".join(APPLICATIONS))
    lines.append("mini-benchmarks: " + ", ".join(MINI_BENCHMARKS))
    return "\n".join(lines)


def _resolve_executor_arg(args: argparse.Namespace):
    name = args.executor or ("parallel" if args.parallel else None)
    if name == "parallel":
        return ParallelExecutor(args.workers)
    if name == "thread":
        return ThreadExecutor(args.workers)
    return None


def _store_command(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """``repro store ls / show <target> / gc [--dry-run] / diff A B``."""
    from repro.store import (
        ResultStore,
        diff_manifests,
        live_engine_fingerprints,
        load_manifest,
        render_diff,
    )

    sub = args.subargs[0] if args.subargs else "ls"
    if sub == "diff":
        # diff reads manifest files directly; no --store needed.
        if len(args.subargs) < 3:
            print("error: store diff needs two manifest paths", file=sys.stderr)
            return 2
        diff = diff_manifests(
            load_manifest(args.subargs[1]), load_manifest(args.subargs[2])
        )
        print(render_diff(diff))
        return 0 if not (diff["changed"] or diff["only_in_a"] or diff["only_in_b"]) else 1
    if args.store is None:
        print("error: 'store' requires --store DIR", file=sys.stderr)
        return 2
    store = ResultStore(args.store)
    if sub == "ls":
        counts = store.describe()
        if args.json:
            from dataclasses import asdict

            print(
                json.dumps(
                    {
                        "store": str(store.root),
                        "counts": counts,
                        "records": [asdict(e) for e in store.query()],
                    },
                    sort_keys=True,
                )
            )
            return 0
        print(
            f"store {store.root}: {counts['solo_entries']} solo, "
            f"{counts['corun_entries']} co-run, "
            f"{counts['scenario_entries']} scenario, "
            f"{counts['records']} record(s), "
            f"{counts['index_lines']} index line(s)"
        )
        for entry in store.query():
            print(
                f"  {entry.run_id:<32} {entry.artifact:<12} "
                f"spec={entry.spec_fingerprint} {entry.path}"
            )
        return 0
    if sub == "show":
        if len(args.subargs) < 2:
            print("error: store show needs an artifact name or run id", file=sys.stderr)
            return 2
        target = args.subargs[1]
        record = (
            store.latest(target) if target in runner_names() else store.load(target)
        )
        runner = get_runner(record.artifact)
        from repro.session import Runner

        if type(runner).decode is not Runner.decode:
            # The runner rebuilds its result object from the payload, so
            # the stored record renders exactly like a live run.
            print(runner.render(record.result, csv=args.csv))
        else:
            # Default decode keeps the raw JSON payload: show it as-is.
            print(json.dumps(record.result, indent=1, default=str))
        print(json.dumps(record.provenance, indent=1))
        return 0
    if sub == "stats":
        return _store_stats(args, store)
    if sub == "gc":
        live = live_engine_fingerprints(config.spec, config.engine_config)
        summary = store.gc(live, dry_run=args.dry_run)
        verb = "would prune" if summary["dry_run"] else "pruned"
        print(
            f"{verb} {summary['removed_entries']} cache entr(ies) in "
            f"{len(summary['removed_dirs'])} orphaned shard(s); "
            f"kept {summary['kept_entries']}"
        )
        for shard in summary["removed_dirs"]:
            print(f"  {shard}")
        return 0
    print(
        f"error: unknown store subcommand {sub!r}; use ls, show, gc, diff "
        "or stats",
        file=sys.stderr,
    )
    return 2


def _store_stats(args: argparse.Namespace, store) -> int:
    """``repro store stats [--json]``: per-artifact run counts, total /
    mean durations and cache-tier hit rates, aggregated from the merged
    index (no record files are opened)."""
    per: dict[str, dict] = {}
    for entry in store.query():
        agg = per.setdefault(
            entry.artifact,
            {"runs": 0, "total_s": 0.0, "memory": 0, "disk": 0, "engine": 0},
        )
        agg["runs"] += 1
        agg["total_s"] += entry.duration_s
        for key, count in entry.cache.items():
            if not isinstance(count, int) or count <= 0:
                continue
            if key.endswith("_disk_hits"):
                agg["disk"] += count
            elif key.endswith("_hits"):
                agg["memory"] += count
            elif key.endswith("_misses"):
                agg["engine"] += count
    stats = {}
    for name, agg in sorted(per.items()):
        lookups = agg["memory"] + agg["disk"] + agg["engine"]
        stats[name] = {
            "runs": agg["runs"],
            "total_s": agg["total_s"],
            "mean_s": agg["total_s"] / agg["runs"],
            "lookups": lookups,
            "memory_hits": agg["memory"],
            "disk_hits": agg["disk"],
            "engine_runs": agg["engine"],
            "hit_rate": (
                (agg["memory"] + agg["disk"]) / lookups if lookups else 0.0
            ),
        }
    if args.json:
        print(
            json.dumps(
                {"store": str(store.root), "artifacts": stats}, sort_keys=True
            )
        )
        return 0
    from repro.core.report import ascii_table

    rows = [
        [
            name,
            s["runs"],
            f"{s['total_s']:.3f}",
            f"{s['mean_s']:.3f}",
            s["memory_hits"],
            s["disk_hits"],
            s["engine_runs"],
            f"{s['hit_rate'] * 100:.1f}%",
        ]
        for name, s in stats.items()
    ]
    print(
        ascii_table(
            ["artifact", "runs", "total s", "mean s", "mem", "disk", "engine", "hit rate"],
            rows,
            title=f"{sum(s['runs'] for s in stats.values())} run(s) of "
            f"{len(stats)} artifact(s) in {store.root}",
        ),
        end="",
    )
    return 0


def _by_name(specs, parse, flag: str) -> dict:
    """Parse NAME:VALUE specs into a dict, refusing duplicate names —
    a repeated name would silently keep only the last value, which is
    exactly wrong for self-pair scenarios (use the Python API's
    placement-aligned sequence form for per-seat values there)."""
    from repro.errors import ScenarioError

    out: dict = {}
    for spec in specs:
        name, value = parse(spec)
        if name in out:
            raise ScenarioError(
                f"{flag} names {name!r} twice; one value per workload "
                "(for a self-pair, use Scenario.with_ways/with_pinning "
                "with a placement-aligned list)"
            )
        out[name] = value
    return out


def _scenario_command(args: argparse.Namespace, session: Session) -> int:
    """``repro scenario run <app[:threads]> ...`` / ``repro scenario ls``."""
    sub = args.subargs[0]
    if sub == "ls":
        if session.store is None:
            print("error: 'scenario ls' requires --store DIR", file=sys.stderr)
            return 2
        entries = session.store.scenarios()
        if args.json:
            print(
                json.dumps(
                    {"store": str(session.store.root), "scenarios": entries},
                    sort_keys=True,
                )
            )
            return 0
        print(f"{len(entries)} persisted N-way scenario(s) in {session.store.root}")
        for e in entries:
            payload = e["scenario"]
            apps = "+".join(f"{name}:{threads}" for name, threads in payload["apps"])
            policy = payload["llc_policy"] or "default"
            smt = "on" if payload["smt"] else "off"
            extras = ""
            if payload.get("llc_ways"):
                masks = "/".join(
                    f"{m:#x}" if m is not None else "-"
                    for m in payload["llc_ways"]
                )
                extras += f" ways={masks}"
            if payload.get("pinning"):
                pins = "/".join(
                    ",".join(str(c) for c in p) if p is not None else "-"
                    for p in payload["pinning"]
                )
                extras += f" pin={pins}"
            print(
                f"  {apps:<44} llc={policy:<8} smt={smt} "
                f"engine={e['engine_fingerprint']}{extras}"
            )
        return 0
    if sub == "run":
        if len(args.subargs) < 2:
            print(
                "error: scenario run needs placements, e.g. "
                "scenario run G-CC:2 fotonik3d:2 swaptions:2",
                file=sys.stderr,
            )
            return 2
        scenario = Scenario.of(
            *args.subargs[1:],
            threads=args.threads,
            llc_policy=args.llc_policy,
            smt=args.smt,
        )
        if args.ways:
            scenario = scenario.with_ways(
                _by_name(args.ways, parse_way_mask, "--ways")
            )
        if args.pin:
            scenario = scenario.with_pinning(
                _by_name(args.pin, parse_pinning, "--pin")
            )
        record = session.run("scenario", scenario=scenario)
        print(get_runner("scenario").render(record.result, csv=args.csv))
        return 0
    print(
        f"error: unknown scenario subcommand {sub!r}; use run or ls",
        file=sys.stderr,
    )
    return 2


def _traffic_trace(args: argparse.Namespace, session: Session):
    """Resolve the arrival trace shared by the traffic-aware commands:
    ``--traffic MODEL.json`` (generated; the file's own ``seed`` /
    ``hours`` keys are honored unless ``--hours`` overrides), ``--trace
    SPEC`` (incl. the ``diurnal:`` form), or a default diurnal day from
    the session roster and the ``--seed/--hours/--scale/--rate`` knobs."""
    from repro.sched.trace import parse_trace
    from repro.traffic import (
        DiurnalCurve,
        TrafficModel,
        WorkloadMix,
        generate_from_file,
    )
    from repro.traffic.model import DEFAULT_RATE_PER_HOUR

    if args.traffic is not None:
        return generate_from_file(args.traffic, hours=args.hours)
    if args.trace is not None:
        return parse_trace(args.trace, session.config.workloads)
    model = TrafficModel(
        mix=WorkloadMix.uniform(session.config.workloads),
        curve=DiurnalCurve.business_hours(
            args.scale if args.scale is not None else 60.0
        ),
        rate_per_hour=(
            args.rate if args.rate is not None else DEFAULT_RATE_PER_HOUR
        ),
    )
    return model.generate(
        seed=args.seed,
        hours=args.hours if args.hours is not None else 24.0,
    )


def _traffic_command(args: argparse.Namespace, session: Session) -> int:
    """``repro traffic gen [--out P] / show / stats`` — generate and
    inspect open-loop diurnal arrival traces without replaying them."""
    from repro.core.report import ascii_table
    from repro.traffic import trace_stats

    sub = args.subargs[0] if args.subargs else "show"
    if len(args.subargs) > 1:
        print(
            f"error: unexpected argument(s): {' '.join(args.subargs[1:])}",
            file=sys.stderr,
        )
        return 2
    if sub not in ("gen", "show", "stats"):
        print(
            f"error: unknown traffic subcommand {sub!r}; use gen, show "
            "or stats",
            file=sys.stderr,
        )
        return 2
    trace = _traffic_trace(args, session)
    if sub == "gen":
        if args.out is not None:
            trace.to_json(args.out)
            print(
                f"wrote {len(trace.arrivals)} arrival(s) / "
                f"{len(trace) - len(trace.arrivals)} departure(s) to "
                f"{args.out} (trace {trace.fingerprint})"
            )
        else:
            print(json.dumps(trace.payload(), indent=None if args.json else 1))
        return 0
    if sub == "show":
        if args.json:
            print(json.dumps(trace.payload(), sort_keys=True))
            return 0
        rows = [
            [
                f"{e.time_s:.3f}",
                e.kind,
                e.tenant,
                e.workload or "-",
                e.threads or "-",
                f"{e.solo_s:.3f}" if e.kind == "arrival" else "-",
                e.hint or "-",
            ]
            for e in trace
        ]
        print(
            ascii_table(
                ["time_s", "kind", "tenant", "workload", "threads", "solo_s", "hint"],
                rows,
                title=(
                    f"{len(trace.arrivals)} arrival(s), "
                    f"{len(trace) - len(trace.arrivals)} departure(s) "
                    f"(trace {trace.fingerprint})"
                ),
            ),
            end="",
        )
        return 0
    bucket_s = 3600.0 / (args.scale if args.scale is not None else 60.0)
    stats = trace_stats(trace, bucket_s=bucket_s)
    if args.json:
        print(json.dumps(stats.payload(), sort_keys=True))
    else:
        print(stats.render(), end="")
    return 0


def _traffic_replay_command(args: argparse.Namespace, session: Session) -> int:
    """``repro traffic-replay`` invoked directly: route the traffic
    knobs into the registered runner (campaigns run its defaults)."""
    kwargs: dict = {}
    if args.traffic is not None:
        kwargs["traffic"] = args.traffic
    if args.hours is not None:
        kwargs["hours"] = args.hours
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.rate is not None:
        kwargs["rate"] = args.rate
    if args.policy:
        kwargs["policies"] = tuple(args.policy)
    if args.machines is not None:
        kwargs["machines"] = args.machines
    if args.slo is not None:
        kwargs["slo"] = args.slo
    if args.replan:
        kwargs["replan"] = True
    record = session.run("traffic-replay", **kwargs)
    runner = get_runner("traffic-replay")
    if args.json:
        print(
            json.dumps(
                {
                    "replay": runner.encode(record.result),
                    "cache": record.provenance["cache"],
                },
                sort_keys=True,
            )
        )
    else:
        print(runner.render(record.result), end="")
    return 0


def _sched_command(args: argparse.Namespace, session: Session) -> int:
    """``repro sched replay [--trace ... --policy ...]`` /
    ``repro sched decide <app[:threads]> [--cluster FILE]``."""
    from repro.sched import Cluster, PlacementEvaluator, Tenant, get_policy
    from repro.session.scenario import parse_placement

    sub = args.subargs[0] if args.subargs else "replay"
    machines = args.machines if args.machines is not None else 2
    if sub == "replay":
        if len(args.subargs) > 1:
            print(
                f"error: unexpected argument(s): {' '.join(args.subargs[1:])}",
                file=sys.stderr,
            )
            return 2
        kwargs: dict = {}
        if args.trace is not None:
            kwargs["trace"] = args.trace
        elif args.traffic is not None:
            from repro.traffic import generate_from_file

            kwargs["trace"] = generate_from_file(args.traffic, hours=args.hours)
        if args.policy:
            kwargs["policies"] = tuple(args.policy)
        if args.machines is not None:
            kwargs["machines"] = machines
        if args.slo is not None:
            kwargs["slo"] = args.slo
        if args.replan:
            kwargs["replan"] = True
        record = session.run("sched-replay", **kwargs)
        runner = get_runner("sched-replay")
        if args.json:
            print(
                json.dumps(
                    {
                        "comparison": runner.encode(record.result),
                        "cache": record.provenance["cache"],
                    },
                    sort_keys=True,
                )
            )
        else:
            print(runner.render(record.result))
        return 0
    if sub == "decide":
        from repro.core.classify import VICTIM_THRESHOLD

        if len(args.subargs) < 2:
            print(
                "error: sched decide needs an arrival, e.g. sched decide G-CC:4",
                file=sys.stderr,
            )
            return 2
        placement = parse_placement(args.subargs[1], default_threads=args.threads)
        if args.cluster is not None:
            try:
                payload = json.loads(Path(args.cluster).read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: cannot read cluster {args.cluster}: {exc}", file=sys.stderr)
                return 2
            cluster = Cluster.from_payload(payload, session.spec)
        else:
            cluster = Cluster.homogeneous(machines, session.spec)
        tenant = Tenant(
            tenant="arrival",
            workload=placement.workload,
            threads=placement.threads,
            solo_s=1.0,
        )
        policy = get_policy((args.policy or ["interference"])[0])
        slo = args.slo if args.slo is not None else VICTIM_THRESHOLD
        decision, _ = policy.decide(
            cluster, tenant, PlacementEvaluator(session), slo=slo
        )
        if args.json:
            print(json.dumps(decision.payload(), sort_keys=True))
        elif decision.admitted:
            residents = ", ".join(decision.co_tenants) or "(empty machine)"
            predicted = (
                "; predicted slowdowns "
                + ", ".join(f"{s:.3f}x" for s in decision.predicted)
                if decision.predicted
                else ""
            )
            print(
                f"admit {placement.label} on {decision.machine} "
                f"[{decision.variant}] with {residents}"
                f"{predicted} ({decision.candidates} candidate(s), "
                f"policy {decision.policy}, SLO {slo:.2f}x)"
            )
        else:
            print(
                f"reject {placement.label}: {decision.reason} "
                f"({decision.candidates} candidate(s), policy "
                f"{decision.policy}, SLO {slo:.2f}x)"
            )
        return 0 if decision.admitted else 1
    print(
        f"error: unknown sched subcommand {sub!r}; use replay or decide",
        file=sys.stderr,
    )
    return 2


def _serve_command(args: argparse.Namespace, session: Session) -> int:
    """``repro serve start`` (the daemon) and its client subcommands:
    ``submit <app[:threads]> [id]``, ``drain [--trace SPEC]``, ``stop``
    and ``metrics``."""
    import asyncio

    from repro.serve import ServeClient, ServeDaemon, drain_trace

    sub = args.subargs[0] if args.subargs else "start"
    host = args.host or "127.0.0.1"
    port = args.port if args.port is not None else 7453
    if sub == "start":
        if len(args.subargs) > 1:
            print(
                f"error: unexpected argument(s): {' '.join(args.subargs[1:])}",
                file=sys.stderr,
            )
            return 2
        from repro.sched import Cluster

        cluster = None
        machines = args.machines if args.machines is not None else 2
        if args.cluster is not None:
            try:
                payload = json.loads(Path(args.cluster).read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(
                    f"error: cannot read cluster {args.cluster}: {exc}",
                    file=sys.stderr,
                )
                return 2
            cluster = Cluster.from_payload(payload, session.spec)
        daemon = ServeDaemon(
            session,
            host=host,
            port=port,
            cluster=cluster,
            machines=machines,
            policy=(args.policy or ["interference"])[0],
            **({"slo": args.slo} if args.slo is not None else {}),
            replan=not args.no_replan,
            budget_s=args.budget_s,
        )

        def _announce(d: ServeDaemon) -> None:
            budget = f", budget {d.budget_s * 1e3:.0f}ms" if d.budget_s else ""
            print(
                f"serve: listening on {d.host}:{d.port} "
                f"(policy={d.scheduler.policy.name}, "
                f"slo={d.scheduler.slo:.2f}x, "
                f"replan={'on' if d.scheduler.replan else 'off'}, "
                f"machines={len(list(d.scheduler.cluster))}{budget})",
                flush=True,
            )

        asyncio.run(daemon.run(ready=_announce))
        print("serve: stopped", flush=True)
        return 0
    client = ServeClient(host, port)
    if sub == "submit":
        from repro.session.scenario import parse_placement

        if len(args.subargs) < 2:
            print(
                "error: serve submit needs an arrival, e.g. "
                "serve submit G-CC:4 [tenant-id]",
                file=sys.stderr,
            )
            return 2
        placement = parse_placement(args.subargs[1], default_threads=args.threads)
        tenant = args.subargs[2] if len(args.subargs) > 2 else placement.label
        response = asyncio.run(
            client.arrival(
                tenant=tenant,
                workload=placement.workload,
                threads=placement.threads,
                solo_s=args.solo_s if args.solo_s is not None else 1.0,
            )
        )
        if args.json:
            print(json.dumps(response, sort_keys=True))
            return 0 if response["decision"]["admitted"] else 1
        decision = response["decision"]
        verb = (
            f"admit on {decision['machine']} [{decision['variant']}]"
            if decision["admitted"]
            else f"reject ({decision['reason']})"
        )
        budget = (
            ""
            if response.get("within_budget") is None
            else (" within budget" if response["within_budget"] else " OVER BUDGET")
        )
        print(
            f"{tenant}: {verb} in {response['latency_s'] * 1e3:.2f}ms{budget}"
        )
        return 0 if decision["admitted"] else 1
    if sub == "drain":
        if len(args.subargs) > 1:
            print(
                f"error: unexpected argument(s): {' '.join(args.subargs[1:])}",
                file=sys.stderr,
            )
            return 2
        from repro.sched import ArrivalTrace, parse_trace

        if args.trace is not None:
            trace = parse_trace(args.trace, session.config.workloads)
        elif args.traffic is not None:
            from repro.traffic import generate_from_file

            trace = generate_from_file(args.traffic, hours=args.hours)
        else:
            trace = ArrivalTrace.synthetic(
                session.config.workloads, seed=session.config.seed
            )

        async def _drain():
            await client.wait_ready()
            return await drain_trace(client, trace)

        result = asyncio.run(_drain())
        if args.json:
            print(
                json.dumps(
                    {
                        "report": result.report.payload(),
                        "latencies": result.latencies,
                        "p50_latency_s": result.p50_latency_s,
                        "p95_latency_s": result.p95_latency_s,
                        "budget_misses": result.budget_misses,
                    },
                    sort_keys=True,
                )
            )
        else:
            print(result.render(), end="")
        return 0
    if sub == "stop":
        asyncio.run(client.shutdown())
        print(f"serve: asked {client.url} to stop")
        return 0
    if sub == "metrics":
        payload = asyncio.run(client.metrics())
        print(
            json.dumps(payload, sort_keys=True)
            if args.json
            else json.dumps(payload, indent=1, sort_keys=True)
        )
        return 0
    print(
        f"error: unknown serve subcommand {sub!r}; use start, submit, "
        "drain, stop or metrics",
        file=sys.stderr,
    )
    return 2


def _trace_command(args: argparse.Namespace) -> int:
    """``repro trace show [--limit N] / export [--format F] [--out P] /
    summary`` over ``<store>/telemetry`` (recorded with ``--telemetry``)."""
    from repro.telemetry.export import (
        chrome_trace,
        metrics_snapshot,
        read_spans,
        render_summary,
        summarize,
        summary_rows,
    )

    if args.store is None:
        print("error: 'trace' requires --store DIR", file=sys.stderr)
        return 2
    root = Path(args.store) / "telemetry"
    sub = args.subargs[0] if args.subargs else "summary"
    if len(args.subargs) > 1:
        print(
            f"error: unexpected argument(s): {' '.join(args.subargs[1:])}",
            file=sys.stderr,
        )
        return 2
    if sub not in ("show", "export", "summary"):
        print(
            f"error: unknown trace subcommand {sub!r}; use show, export "
            "or summary",
            file=sys.stderr,
        )
        return 2
    spans = read_spans(root)
    if not spans:
        print(
            f"no telemetry under {root} (record a run with --telemetry)",
            file=sys.stderr,
        )
        return 1
    if sub == "show":
        shown = spans if args.limit is None else spans[: args.limit]
        if args.json:
            for span in shown:
                print(json.dumps(span, sort_keys=True))
        else:
            base = spans[0]["ts"]
            for span in shown:
                tags = " ".join(
                    f"{k}={v}" for k, v in sorted((span.get("tags") or {}).items())
                )
                print(
                    f"+{span['ts'] - base:10.6f}s pid={span['pid']:<7} "
                    f"{span['dur_s'] * 1e3:9.3f}ms {span['name']:<22} {tags}"
                )
            if len(shown) < len(spans):
                print(f"... {len(spans) - len(shown)} more span(s); raise --limit")
        return 0
    if sub == "export":
        fmt = args.format or "chrome"
        if fmt == "chrome":
            payload = json.dumps(chrome_trace(spans))
        elif fmt == "json":
            payload = json.dumps(
                {"spans": spans, "metrics": metrics_snapshot(root)},
                sort_keys=True,
            )
        else:
            payload = "\n".join(
                ",".join(row) for row in summary_rows(summarize(spans))
            )
        if args.out is not None:
            Path(args.out).write_text(payload + "\n", encoding="utf-8")
            print(f"wrote {len(spans)} span(s) to {args.out} [{fmt}]")
        else:
            print(payload)
        return 0
    summary = summarize(spans)
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(render_summary(summary), end="")
    return 0


def _run_all(args: argparse.Namespace, session: Session) -> int:
    """Execute every registered runner (or one ``--shard I/N`` slice of
    them) and freeze the campaign manifest."""
    from repro.store import parse_shard, shard_names, write_manifest

    names = None
    if args.shard is not None:
        index, count = parse_shard(args.shard)
        names = shard_names(runner_names(), index, count)
        print(f"shard {index}/{count}: {', '.join(names)}")
        if count > 1:
            # Warm this shard's cell slice of the scenario-set sweep
            # first: the sweep splits at *cell* granularity across
            # shards, so whichever shard owns the artifact name later
            # materializes the canonical record mostly from cache hits
            # instead of re-simulating the whole sweep alone.
            slice_record = session.run("scenario-set", shard=args.shard)
            print(
                f"scenario-set shard {args.shard}: warmed "
                f"{len(slice_record.result.cells)} cell(s)"
            )
    records = session.run_all(include_extensions=True, names=names)
    for name, record in records.items():
        prov = record.provenance
        cache = prov["cache"]
        served = sum(
            cache.get(k, 0)
            for k in (
                "solo_hits", "corun_hits", "scenario_hits",
                "solo_disk_hits", "corun_disk_hits", "scenario_disk_hits",
            )
        )
        simulated = sum(
            cache.get(k, 0)
            for k in ("solo_misses", "corun_misses", "scenario_misses")
        )
        print(
            f"{name:<14} {prov['duration_s'] * 1e3:8.1f} ms   "
            f"cache: {served} served / {simulated} simulated"
        )
    if args.manifest is not None:
        manifest_path = Path(args.manifest)
    elif session.store is not None:
        manifest_path = session.store.root / "manifest.json"
    else:
        manifest_path = Path("manifest.json")
    if args.shard is not None and session.store is not None:
        # A shard only ran its slice: rebuild the manifest from the
        # store's merged index so it covers every shard finished so far
        # (the last shard's freeze covers the whole campaign).
        from repro.store import write_manifest_from_store

        manifest = write_manifest_from_store(
            session.store,
            session.config,
            manifest_path,
            executor_name=f"run-all --shard {args.shard}",
        )
        covered = len(manifest["artifacts"])
        print(f"manifest covers {covered} artifact(s) persisted so far")
    else:
        write_manifest(session, manifest_path, session.store)
    stats = session.stats
    print(
        f"{len(records)} artifacts -> {manifest_path}   "
        f"disk hits: {stats.solo_disk_hits} solo / {stats.corun_disk_hits} co-run"
        f" / {stats.scenario_disk_hits} scenario"
    )
    return 0


def _campaign_command(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """``repro campaign``: fork N workers over the runner registry, all
    sharing one store, with claim-file work stealing."""
    from repro.store import run_campaign

    if args.store is None:
        print("error: 'campaign' requires --store DIR", file=sys.stderr)
        return 2
    workers = args.workers if args.workers is not None else 2
    inner = args.executor or ("parallel" if args.parallel else None)
    summary = run_campaign(
        config,
        args.store,
        workers=workers,
        manifest_path=args.manifest,
        executor=inner,
        chunksize=args.chunksize,
    )
    for report in summary["workers"]:
        cache = report["cache"]
        served = sum(v for k, v in cache.items() if k.endswith("hits"))
        simulated = sum(v for k, v in cache.items() if k.endswith("misses"))
        print(
            f"worker pid={report['pid']}: {len(report['done'])} artifact(s) "
            f"[{', '.join(report['done'])}] cache: {served} served / "
            f"{simulated} simulated"
        )
    if summary["recovered"]:
        print(
            f"recovered {len(summary['recovered'])} artifact(s) re-queued "
            f"from dead worker(s): {', '.join(summary['recovered'])}"
        )
    totals = summary["cache"]
    disk = (
        totals.get("solo_disk_hits", 0)
        + totals.get("corun_disk_hits", 0)
        + totals.get("scenario_disk_hits", 0)
    )
    print(
        f"{len(summary['artifacts'])} artifacts -> {summary['manifest_path']}   "
        f"{workers} worker(s), {disk} disk hit(s) across the campaign"
    )
    return 0


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    if args.workloads:
        names = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
    else:
        names = APPLICATIONS
    return ExperimentConfig(
        threads=args.threads,
        repetitions=args.repetitions,
        seed=args.seed,
        workloads=names,
    )


def _configure_logging(args: argparse.Namespace) -> None:
    """Map ``-q`` / ``-v`` / ``-vv`` onto stdlib logging to stderr.

    The package modules (session, store, campaign, sched) log through
    ``logging.getLogger(__name__)``; default visibility is WARNING so
    normal runs stay byte-identical on stdout.
    """
    import logging

    if args.quiet:
        level = logging.ERROR
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    if args.quiet and args.verbose:
        print("error: --quiet and --verbose are mutually exclusive", file=sys.stderr)
        return 2
    _configure_logging(args)
    if args.experiment == "list":
        print(_list_text())
        return 0
    if (
        args.experiment
        not in ("store", "scenario", "sched", "trace", "serve", "traffic")
        and args.subargs
    ):
        print(
            f"error: unexpected argument(s): {' '.join(args.subargs)}",
            file=sys.stderr,
        )
        return 2
    if args.experiment not in ("sched", "serve", "traffic") and (
        args.trace is not None
    ):
        print(
            "error: --trace only applies to 'sched', 'serve' and 'traffic' "
            "(the replay artifacts run their seeded defaults)",
            file=sys.stderr,
        )
        return 2
    if args.experiment not in ("sched", "serve", "traffic-replay") and (
        args.policy
        or args.machines is not None
        or args.slo is not None
    ):
        print(
            "error: --policy/--machines/--slo only apply to 'sched', "
            "'serve' and 'traffic-replay'",
            file=sys.stderr,
        )
        return 2
    if args.cluster is not None and args.experiment not in ("sched", "serve"):
        print(
            "error: --cluster only applies to 'sched' and 'serve'",
            file=sys.stderr,
        )
        return 2
    if args.experiment not in ("sched", "serve", "traffic", "traffic-replay") and (
        args.traffic is not None
    ):
        print(
            "error: --traffic only applies to 'sched replay', 'serve drain', "
            "'traffic' and 'traffic-replay'",
            file=sys.stderr,
        )
        return 2
    if args.trace is not None and args.traffic is not None:
        print(
            "error: --trace and --traffic are mutually exclusive "
            "(one arrival stream per replay)",
            file=sys.stderr,
        )
        return 2
    if args.experiment not in ("traffic", "traffic-replay") and (
        args.hours is not None or args.scale is not None or args.rate is not None
    ):
        print(
            "error: --hours/--scale/--rate only apply to 'traffic' and "
            "'traffic-replay' (a --traffic model file carries its own knobs)",
            file=sys.stderr,
        )
        return 2
    if args.experiment != "serve" and (
        args.host is not None
        or args.port is not None
        or args.budget_s is not None
        or args.no_replan
        or args.solo_s is not None
    ):
        print(
            "error: --host/--port/--budget-s/--no-replan/--solo-s only "
            "apply to 'serve'",
            file=sys.stderr,
        )
        return 2
    if args.replan and args.experiment not in ("sched", "traffic-replay"):
        print(
            "error: --replan only applies to 'sched replay' and "
            "'traffic-replay' (the serve daemon re-plans by default; "
            "disable with --no-replan)",
            file=sys.stderr,
        )
        return 2
    json_ok = (
        args.experiment in ("sched", "serve", "traffic", "traffic-replay")
        or (
            args.experiment == "store"
            and (not args.subargs or args.subargs[0] in ("ls", "stats"))
        )
        or (args.experiment == "scenario" and args.subargs[:1] == ["ls"])
        or (
            args.experiment == "trace"
            and (not args.subargs or args.subargs[0] in ("show", "summary"))
        )
    )
    if args.json and not json_ok:
        print(
            "error: --json only applies to 'sched', 'serve', 'traffic', "
            "'traffic-replay', 'store ls/stats', 'scenario ls' and "
            "'trace show/summary' "
            "(use 'trace export --format json' for raw spans)",
            file=sys.stderr,
        )
        return 2
    if args.experiment != "trace" and (
        args.format is not None or args.limit is not None
    ):
        print(
            "error: --format/--limit only apply to 'trace'",
            file=sys.stderr,
        )
        return 2
    if args.out is not None and not (
        args.experiment == "trace"
        or (args.experiment == "traffic" and args.subargs[:1] == ["gen"])
    ):
        print(
            "error: --out only applies to 'trace export' and 'traffic gen'",
            file=sys.stderr,
        )
        return 2
    if args.telemetry and args.store is None:
        # The sink lives inside the store so traces travel with the
        # campaign they describe; refuse a homeless --telemetry.
        print("error: --telemetry requires --store DIR", file=sys.stderr)
        return 2
    if args.experiment not in _SCENARIO_ARTIFACTS and (
        args.llc_policy is not None or args.smt
    ):
        # Refuse rather than silently simulate the default model: only
        # the scenario-shaped artifacts honour these overrides.
        print(
            "error: --llc-policy/--smt only apply to 'scenario', "
            "'consolidate-n' and 'scenario-set' (wrap other studies in a "
            "scenario to vary them)",
            file=sys.stderr,
        )
        return 2
    if (args.ways or args.pin) and not (
        args.experiment == "scenario" and args.subargs[:1] == ["run"]
    ):
        # Way masks / pinnings attach to explicit placements only.
        print(
            "error: --ways/--pin only apply to 'scenario run' "
            "(cat-sweep sweeps its own mask allocations)",
            file=sys.stderr,
        )
        return 2
    if args.shard is not None and args.experiment != "run-all":
        print("error: --shard only applies to 'run-all'", file=sys.stderr)
        return 2
    if args.shard is not None and args.store is None:
        # A shard without a shared store would freeze a silently partial
        # manifest; sharding only makes sense against one --store DIR.
        print("error: run-all --shard requires --store DIR", file=sys.stderr)
        return 2
    try:
        if args.experiment == "trace":
            return _trace_command(args)
        if args.telemetry:
            from repro.telemetry.tracer import enable as _telemetry_enable

            _telemetry_enable(Path(args.store) / "telemetry")
        try:
            config = _build_config(args)
            if args.engine_batch is not None:
                # Exported so campaign / pool workers building their own
                # sessions resolve the same batch-vs-scalar choice.
                os.environ["REPRO_ENGINE_BATCH"] = "1" if args.engine_batch else "0"
            if args.experiment == "store":
                return _store_command(args, config)
            if args.experiment == "campaign":
                return _campaign_command(args, config)
            session = Session(
                config,
                executor=_resolve_executor_arg(args),
                store=args.store,
                chunksize=args.chunksize,
                engine_batch=args.engine_batch,
            )
            if args.experiment == "run-all":
                return _run_all(args, session)
            if args.experiment == "scenario" and args.subargs:
                return _scenario_command(args, session)
            if args.experiment == "sched":
                return _sched_command(args, session)
            if args.experiment == "serve":
                return _serve_command(args, session)
            if args.experiment == "traffic":
                return _traffic_command(args, session)
            if args.experiment == "traffic-replay":
                return _traffic_replay_command(args, session)
            runner = get_runner(args.experiment)
            kwargs = (
                {"llc_policy": args.llc_policy, "smt": args.smt}
                if args.experiment in _SCENARIO_ARTIFACTS
                else {}
            )
            record = session.run(args.experiment, **kwargs)
            print(runner.render(record.result, csv=args.csv))
        finally:
            if args.telemetry:
                from repro.telemetry.tracer import disable as _telemetry_disable

                _telemetry_disable()
    except StoreError as exc:
        print(f"store error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly (and keep
        # the interpreter from re-raising on stdout flush at shutdown).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
