"""Command-line interface: regenerate any paper artifact.

Usage::

    repro list
    repro fig2 [--workloads G-PR,G-CC] [--csv]
    repro fig5 --workloads G-CC,fotonik3d,swaptions --parallel
    repro table4

Experiment ids are artifact names in the runner registry
(:mod:`repro.session.registry`): table1, fig2, table2, fig3, fig4,
fig5, table3, fig6, fig7, fig8, table4, plus the extension studies
(solo, insights, predict, efficiency, allocation).  Every invocation
builds one :class:`~repro.session.session.Session`, so ``--parallel``
fans the independent sweep cells out over a process pool with
bit-identical results.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import ExperimentConfig
from repro.errors import ReproError
from repro.session import ParallelExecutor, Session, get_runner, runner_names
from repro.workloads.calibration import APPLICATIONS, MINI_BENCHMARKS


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-interference",
        description="Regenerate figures/tables of the interference characterization paper.",
    )
    parser.add_argument(
        "experiment",
        choices=runner_names() + ["list"],
        help="artifact name from the runner registry, or 'list'",
    )
    parser.add_argument(
        "--workloads",
        help="comma-separated subset of applications (default: all 25)",
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="threads per application (default 4)"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="measurement repetitions (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0, help="jitter seed")
    parser.add_argument("--csv", action="store_true", help="CSV output where supported")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan independent sweep cells out over a process pool",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for --parallel (default: CPU count)",
    )
    return parser


def _list_text() -> str:
    lines = ["experiments:"]
    for name in runner_names():
        runner = get_runner(name)
        lines.append(f"  {name:<12} {runner.title}")
    lines.append("applications: " + ", ".join(APPLICATIONS))
    lines.append("mini-benchmarks: " + ", ".join(MINI_BENCHMARKS))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print(_list_text())
        return 0
    if args.workloads:
        names = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
    else:
        names = APPLICATIONS
    try:
        config = ExperimentConfig(
            threads=args.threads,
            repetitions=args.repetitions,
            seed=args.seed,
            workloads=names,
        )
        executor = ParallelExecutor(args.workers) if args.parallel else None
        session = Session(config, executor=executor)
        runner = get_runner(args.experiment)
        record = session.run(args.experiment)
        print(runner.render(record.result, csv=args.csv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
