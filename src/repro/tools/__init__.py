"""Measurement toolset analogues (Section III-C): PCM bandwidth
monitoring and VTune hotspot attribution."""

from repro.tools.pcm import PcmMemoryMonitor, PcmReport, PcmSample
from repro.tools.vtune import RegionComparison, RegionReport, VtuneProfiler

__all__ = [
    "PcmMemoryMonitor",
    "PcmReport",
    "PcmSample",
    "RegionComparison",
    "RegionReport",
    "VtuneProfiler",
]
