"""Intel VTune analogue: hotspot attribution of hardware metrics.

The paper uses VTune 2017 event-based sampling to attribute CPI,
L2_PCP, LLC MPKI and the derived LL metric to source regions — that is
how it identifies ``gather`` (pagerank.c:63-66) as P-PR's contentious
code and fotonik3d's ``UUS`` update as its bottleneck (Table IV,
Figs 7–8).  :class:`VtuneProfiler` provides the same observables over
the engine's per-region accumulators, plus solo-vs-co-run comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.results import AppMetrics, RegionMetrics
from repro.errors import ExperimentError


@dataclass(frozen=True)
class RegionReport:
    """One hotspot row."""

    region: str
    cycles_share: float
    instructions_share: float
    cpi: float
    l2_pcp: float
    llc_mpki: float
    ll: float


@dataclass(frozen=True)
class RegionComparison:
    """Solo vs co-run metric deltas for one region (Table IV rows)."""

    region: str
    solo: RegionReport
    corun: RegionReport

    @property
    def cpi_inflation(self) -> float:
        return self.corun.cpi / self.solo.cpi if self.solo.cpi else float("inf")

    @property
    def mpki_inflation(self) -> float:
        if self.solo.llc_mpki == 0:
            return float("inf") if self.corun.llc_mpki else 1.0
        return self.corun.llc_mpki / self.solo.llc_mpki

    @property
    def ll_inflation(self) -> float:
        return self.corun.ll / self.solo.ll if self.solo.ll else float("inf")


def _region_report(name: str, rm: RegionMetrics, total_cycles: float, total_instr: float) -> RegionReport:
    return RegionReport(
        region=name,
        cycles_share=rm.cycles / total_cycles if total_cycles else 0.0,
        instructions_share=rm.instructions / total_instr if total_instr else 0.0,
        cpi=rm.cpi,
        l2_pcp=rm.l2_pcp,
        llc_mpki=rm.llc_mpki,
        ll=rm.ll,
    )


class VtuneProfiler:
    """Hotspot analysis over engine AppMetrics."""

    def hotspots(self, metrics: AppMetrics) -> list[RegionReport]:
        """Per-region reports sorted by cycle share (descending)."""
        total = metrics.total
        if not metrics.by_region:
            raise ExperimentError(f"{metrics.name}: no regions recorded")
        reports = [
            _region_report(name, rm, total.cycles, total.instructions)
            for name, rm in metrics.by_region.items()
        ]
        reports.sort(key=lambda r: r.cycles_share, reverse=True)
        return reports

    def top_hotspot(self, metrics: AppMetrics) -> RegionReport:
        """The dominant region (the paper's 'contentious code region')."""
        return self.hotspots(metrics)[0]

    def compare(self, solo: AppMetrics, corun: AppMetrics, region: str) -> RegionComparison:
        """Solo-vs-co-run comparison for one region (a Table IV cell)."""
        if region not in solo.by_region or region not in corun.by_region:
            raise ExperimentError(
                f"region {region!r} missing (have {sorted(solo.by_region)} / "
                f"{sorted(corun.by_region)})"
            )
        s_tot, c_tot = solo.total, corun.total
        return RegionComparison(
            region=region,
            solo=_region_report(region, solo.by_region[region], s_tot.cycles, s_tot.instructions),
            corun=_region_report(region, corun.by_region[region], c_tot.cycles, c_tot.instructions),
        )

    def report(self, metrics: AppMetrics) -> str:
        """VTune-style text summary for one application."""
        rows = self.hotspots(metrics)
        hdr = (
            f"{'region':<28}{'cycles%':>9}{'instr%':>8}{'CPI':>7}"
            f"{'L2_PCP':>8}{'LLC MPKI':>10}{'LL':>8}"
        )
        lines = [f"Hotspots for {metrics.name} ({metrics.threads} threads)", hdr, "-" * len(hdr)]
        for r in rows:
            lines.append(
                f"{r.region:<28}{100 * r.cycles_share:>8.1f}%{100 * r.instructions_share:>7.1f}%"
                f"{r.cpi:>7.2f}{100 * r.l2_pcp:>7.1f}%{r.llc_mpki:>10.2f}{r.ll:>8.1f}"
            )
        return "\n".join(lines)
