"""``pcm-memory`` analogue: fixed-granularity bandwidth sampling.

The paper measures bandwidth with Intel PCM 2.8's ``pcm-memory`` at
10-second granularity (Section III-C).  :class:`PcmMemoryMonitor`
reproduces that observable: it resamples an engine timeline (or any
stream of :class:`~repro.engine.results.BandwidthSample`) onto a fixed
grid and reports per-application and total bus bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.results import BandwidthSample
from repro.errors import ExperimentError
from repro.units import GB, MB


@dataclass(frozen=True)
class PcmSample:
    """One resampled observation."""

    time_s: float
    bytes_per_s: dict[str, float]

    @property
    def total_bytes_per_s(self) -> float:
        return sum(self.bytes_per_s.values())


@dataclass
class PcmReport:
    """Resampled bandwidth observations over one run."""

    granularity_s: float
    samples: list[PcmSample] = field(default_factory=list)

    @property
    def apps(self) -> list[str]:
        names: list[str] = []
        for s in self.samples:
            for n in s.bytes_per_s:
                if n not in names:
                    names.append(n)
        return names

    def series(self, app: str) -> np.ndarray:
        """Bandwidth series (bytes/s) for one app."""
        return np.array([s.bytes_per_s.get(app, 0.0) for s in self.samples])

    def average_bytes_per_s(self, app: str | None = None) -> float:
        """Time-averaged bandwidth for one app (None = machine total)."""
        if not self.samples:
            return 0.0
        if app is None:
            return float(np.mean([s.total_bytes_per_s for s in self.samples]))
        return float(self.series(app).mean())

    def peak_bytes_per_s(self, app: str | None = None) -> float:
        """Peak observed bandwidth."""
        if not self.samples:
            return 0.0
        if app is None:
            return float(max(s.total_bytes_per_s for s in self.samples))
        return float(self.series(app).max())

    def average_gb_s(self, app: str | None = None) -> float:
        """Average bandwidth in PCM's GB/s units (Table III)."""
        return self.average_bytes_per_s(app) / GB

    def table(self) -> str:
        """pcm-memory-style text table (MB/s columns per app + system)."""
        apps = self.apps
        header = f"{'time(s)':>8} " + " ".join(f"{a[:12]:>12}" for a in apps) + f" {'System':>12}"
        lines = [header, "-" * len(header)]
        for s in self.samples:
            cols = " ".join(f"{s.bytes_per_s.get(a, 0.0) / MB:>12.0f}" for a in apps)
            lines.append(f"{s.time_s:>8.1f} {cols} {s.total_bytes_per_s / MB:>12.0f}")
        return "\n".join(lines)


class PcmMemoryMonitor:
    """Resampler from engine timelines to fixed-granularity reports."""

    def __init__(self, granularity_s: float = 10.0) -> None:
        if granularity_s <= 0:
            raise ExperimentError("granularity must be positive")
        self.granularity_s = granularity_s

    def observe(self, timeline: list[BandwidthSample]) -> PcmReport:
        """Resample a timeline onto the fixed grid.

        Engine timeline samples carry the bandwidth of the *interval
        ending* at their timestamp; resampling takes the time-weighted
        mean inside each grid cell.
        """
        report = PcmReport(granularity_s=self.granularity_s)
        if not timeline:
            return report
        apps: list[str] = []
        for s in timeline:
            for n in s.bytes_per_s:
                if n not in apps:
                    apps.append(n)
        end = timeline[-1].time_s
        grid = np.arange(self.granularity_s, end + self.granularity_s, self.granularity_s)
        prev_t = 0.0
        idx = 0
        for cell_end in grid:
            cell_start = cell_end - self.granularity_s
            acc = {a: 0.0 for a in apps}
            weight = 0.0
            while idx < len(timeline) and timeline[idx].time_s <= cell_end + 1e-12:
                s = timeline[idx]
                dt = s.time_s - prev_t
                if dt > 0 and s.time_s > cell_start:
                    for a in apps:
                        acc[a] += s.bytes_per_s.get(a, 0.0) * dt
                    weight += dt
                prev_t = s.time_s
                idx += 1
            if weight > 0:
                report.samples.append(
                    PcmSample(
                        time_s=float(min(cell_end, end)),
                        bytes_per_s={a: acc[a] / weight for a in apps},
                    )
                )
        return report
