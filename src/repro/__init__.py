"""repro — interference characterization of emerging DL, graph and HPC
workloads under consolidation.

A full reproduction of "Characterizing the Performance of Emerging Deep
Learning, Graph, and High Performance Computing Workloads Under
Interference" (Xu, Song, Mao — arXiv:2303.15763), built as a library:

* :mod:`repro.machine` — the modelled Xeon E5-4650 platform (caches,
  four MSR-gated hardware prefetchers, bandwidth-limited memory);
* :mod:`repro.trace` — access streams, reuse distances, miss-ratio
  curves, and the kernel profiler;
* :mod:`repro.workloads` — the 25 applications of Table I plus the
  Bandit/STREAM mini-benchmarks, each a real algorithm with a trace
  generator, plus calibrated engine profiles;
* :mod:`repro.engine` — the interval engine that co-executes profiles
  under LLC sharing and memory-bus contention;
* :mod:`repro.tools` — PCM-memory and VTune analogues;
* :mod:`repro.core` — the paper's experiments: one runner per figure
  and table.

Quick start::

    from repro import ExperimentConfig, run_consolidation

    config = ExperimentConfig(workloads=("G-CC", "fotonik3d", "swaptions"))
    matrix = run_consolidation(config)
    print(matrix.render_fig5())
    print(matrix.classify("G-CC", "fotonik3d").relationship)
"""

from repro.core import (
    ExperimentConfig,
    PairClass,
    classify_pair,
    run_bandwidth_sweep,
    run_consolidation,
    run_gemini_vs_offenders,
    run_gemini_vs_stream,
    run_minibench,
    run_pair_bandwidth,
    run_prefetch_sensitivity,
    run_scalability,
    run_table4,
)
from repro.engine import EngineConfig, IntervalEngine
from repro.machine import Machine, MachineSpec, xeon_e5_4650
from repro.trace import MissRatioCurve, TraceProfiler
from repro.workloads.base import WorkloadProfile
from repro.workloads.registry import (
    get_all_profiles,
    get_profile,
    get_workload,
    list_workloads,
)

__version__ = "1.0.0"

__all__ = [
    "EngineConfig",
    "ExperimentConfig",
    "IntervalEngine",
    "Machine",
    "MachineSpec",
    "MissRatioCurve",
    "PairClass",
    "TraceProfiler",
    "WorkloadProfile",
    "__version__",
    "classify_pair",
    "get_all_profiles",
    "get_profile",
    "get_workload",
    "list_workloads",
    "run_bandwidth_sweep",
    "run_consolidation",
    "run_gemini_vs_offenders",
    "run_gemini_vs_stream",
    "run_minibench",
    "run_pair_bandwidth",
    "run_prefetch_sensitivity",
    "run_scalability",
    "run_table4",
    "xeon_e5_4650",
]
