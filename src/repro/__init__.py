"""repro — interference characterization of emerging DL, graph and HPC
workloads under consolidation.

A full reproduction of "Characterizing the Performance of Emerging Deep
Learning, Graph, and High Performance Computing Workloads Under
Interference" (Xu, Song, Mao — arXiv:2303.15763), built as a library:

* :mod:`repro.machine` — the modelled Xeon E5-4650 platform (caches,
  four MSR-gated hardware prefetchers, bandwidth-limited memory);
* :mod:`repro.trace` — access streams, reuse distances, miss-ratio
  curves, and the kernel profiler;
* :mod:`repro.workloads` — the 25 applications of Table I plus the
  Bandit/STREAM mini-benchmarks, each a real algorithm with a trace
  generator, plus calibrated engine profiles;
* :mod:`repro.engine` — the interval engine that co-executes profiles
  under LLC sharing and memory-bus contention;
* :mod:`repro.tools` — PCM-memory and VTune analogues;
* :mod:`repro.core` — the paper's experiments: one registered runner
  per figure and table;
* :mod:`repro.session` — the unified experiment substrate: a
  :class:`Session` owns the machine spec, cross-experiment solo and
  co-run caches, the seeded jitter model, and a pluggable executor
  that fans independent sweep cells out over a process or thread pool;
* :mod:`repro.store` — the persistent results database: a
  fingerprint-keyed on-disk solo/co-run cache (warm stores make cold
  processes bit-identical and ~15x faster), streamed ``RunRecord``\\ s
  with an append-only index and query API, and the ``repro run-all``
  campaign manifest.

Quick start::

    from repro import ExperimentConfig, Session

    config = ExperimentConfig(workloads=("G-CC", "fotonik3d", "swaptions"))
    session = Session(config)
    record = session.run("fig5")            # the consolidation sweep
    matrix = record.result
    print(matrix.render_fig5())
    print(matrix.classify("G-CC", "fotonik3d").relationship)
    session.run("table3")                   # solo/co-run caches shared
    record.to_json()                        # provenance + payload

Scale up with ``Session(config, executor="parallel")`` (bit-identical
to serial), persist across processes with
``Session(config, store=ResultStore(".repro-store"))``, run every
artifact with ``session.run_all()`` / ``repro run-all --store DIR``,
or keep using the historical ``run_*`` wrappers — they delegate to
the same registry.

Beyond pairs, declarative :class:`Scenario` values express N-way
consolidations, LLC-policy ablations and SMT spec variants::

    res = session.run_scenario(Scenario.of("G-CC:2", "fotonik3d:2", "swaptions:2"))
    res.normalized_time                     # fg slowdown vs solo
    session.run_scenarios(ScenarioSet.consolidations(apps, n=3, threads=2))
"""

from repro.core import (
    ExperimentConfig,
    NWayVerdict,
    PairClass,
    classify_nway,
    classify_pair,
    run_cat_sweep,
    run_bandwidth_sweep,
    run_consolidation,
    run_gemini_vs_offenders,
    run_gemini_vs_stream,
    run_minibench,
    run_pair_bandwidth,
    run_prefetch_sensitivity,
    run_scalability,
    run_table4,
)
from repro.engine import EngineConfig, IntervalEngine
from repro.machine import Machine, MachineSpec, xeon_e5_4650
from repro.session import (
    AppPlacement,
    ParallelExecutor,
    RunRecord,
    Runner,
    Scenario,
    ScenarioResult,
    ScenarioSet,
    SerialExecutor,
    Session,
    ThreadExecutor,
    get_runner,
    register_runner,
    runner_names,
)
from repro.store import ResultStore
from repro.trace import MissRatioCurve, TraceProfiler
from repro.workloads.base import WorkloadProfile
from repro.workloads.registry import (
    get_all_profiles,
    get_profile,
    get_workload,
    list_workloads,
)

__version__ = "1.1.0"

__all__ = [
    "AppPlacement",
    "EngineConfig",
    "ExperimentConfig",
    "IntervalEngine",
    "ParallelExecutor",
    "ResultStore",
    "RunRecord",
    "Runner",
    "Scenario",
    "ScenarioResult",
    "ScenarioSet",
    "SerialExecutor",
    "Session",
    "ThreadExecutor",
    "Machine",
    "MachineSpec",
    "MissRatioCurve",
    "NWayVerdict",
    "PairClass",
    "TraceProfiler",
    "WorkloadProfile",
    "__version__",
    "classify_nway",
    "classify_pair",
    "run_cat_sweep",
    "get_all_profiles",
    "get_profile",
    "get_runner",
    "get_workload",
    "list_workloads",
    "register_runner",
    "run_bandwidth_sweep",
    "run_consolidation",
    "run_gemini_vs_offenders",
    "run_gemini_vs_stream",
    "run_minibench",
    "run_pair_bandwidth",
    "run_prefetch_sensitivity",
    "run_scalability",
    "run_table4",
    "runner_names",
    "xeon_e5_4650",
]
