"""Piecewise diurnal rate curves over a time-scaled simulated clock.

A :class:`DiurnalCurve` holds 24 hourly rate multipliers and a
``time_scale_factor`` that compresses trace time into simulated time
the same way brad's ``get_time_of_the_day_unsimulated`` does: one
simulated minute advances the trace clock by ``time_scale_factor``
minutes, so at the default factor of 60 a full 24-hour trace day
elapses in 1440 simulated seconds.  The curve is pure arithmetic — no
randomness — which keeps the thinning sampler's determinism contract
confined to :mod:`repro.traffic.model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import TrafficError

#: Hours in a trace day; a curve always carries exactly this many knots.
HOURS_PER_DAY = 24

#: The default business-hours multipliers: a quiet night trough, a
#: morning ramp to the midday peak, and an evening decay.  Peak (1.0 at
#: hour 10) over trough (0.10 at hours 02–03) is 10x, comfortably above
#: the >= 3x contrast the traffic-replay acceptance check looks for.
BUSINESS_HOURS = (
    0.15, 0.12, 0.10, 0.10, 0.12, 0.18,  # 00-05  night trough
    0.30, 0.55, 0.80, 0.95, 1.00, 0.95,  # 06-11  morning ramp to peak
    0.85, 0.80, 0.85, 0.90, 0.85, 0.70,  # 12-17  afternoon plateau
    0.55, 0.45, 0.40, 0.30, 0.22, 0.18,  # 18-23  evening decay
)


@dataclass(frozen=True)
class DiurnalCurve:
    """24 hourly rate multipliers plus the simulated-to-trace time map."""

    multipliers: tuple[float, ...] = BUSINESS_HOURS
    #: Trace minutes that elapse per simulated minute (brad's knob).
    time_scale_factor: float = 60.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "multipliers", tuple(float(m) for m in self.multipliers))
        if len(self.multipliers) != HOURS_PER_DAY:
            raise TrafficError(
                f"a diurnal curve needs exactly {HOURS_PER_DAY} hourly "
                f"multipliers, got {len(self.multipliers)}"
            )
        if any(m <= 0 for m in self.multipliers):
            raise TrafficError("diurnal multipliers must all be > 0")
        if self.time_scale_factor <= 0:
            raise TrafficError("time_scale_factor must be > 0")

    # -- the simulated clock ------------------------------------------------

    @property
    def sim_s_per_hour(self) -> float:
        """Simulated seconds that cover one trace hour."""
        return 3600.0 / self.time_scale_factor

    @property
    def sim_s_per_day(self) -> float:
        """Simulated seconds that cover one full trace day."""
        return self.sim_s_per_hour * HOURS_PER_DAY

    def minute_of_day(self, sim_s: float) -> int:
        """Trace-clock minute-of-day for a simulated instant (brad's
        ``get_time_of_the_day_unsimulated``: simulated minutes times the
        scale factor, wrapped at midnight)."""
        return int(sim_s / 60.0 * self.time_scale_factor) % (HOURS_PER_DAY * 60)

    def hour_of_day(self, sim_s: float) -> int:
        return self.minute_of_day(sim_s) // 60

    def multiplier_at(self, sim_s: float) -> float:
        """The rate multiplier in force at a simulated instant."""
        return self.multipliers[self.hour_of_day(sim_s)]

    @property
    def peak_multiplier(self) -> float:
        return max(self.multipliers)

    @property
    def peak_hour(self) -> int:
        return self.multipliers.index(self.peak_multiplier)

    @property
    def trough_hour(self) -> int:
        return self.multipliers.index(min(self.multipliers))

    # -- builders -----------------------------------------------------------

    @staticmethod
    def business_hours(time_scale_factor: float = 60.0) -> "DiurnalCurve":
        """The default shape: quiet night, morning ramp, midday peak."""
        return DiurnalCurve(BUSINESS_HOURS, time_scale_factor)

    @staticmethod
    def flat(level: float = 1.0, time_scale_factor: float = 60.0) -> "DiurnalCurve":
        """A degenerate curve — constant rate; useful for isolating the
        mix from the shape in tests."""
        return DiurnalCurve((level,) * HOURS_PER_DAY, time_scale_factor)

    # -- round-trip ---------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        return {
            "multipliers": list(self.multipliers),
            "time_scale_factor": self.time_scale_factor,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "DiurnalCurve":
        try:
            return DiurnalCurve(
                multipliers=tuple(payload["multipliers"]),
                time_scale_factor=float(payload.get("time_scale_factor", 60.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TrafficError(f"bad diurnal-curve payload: {exc}") from None
