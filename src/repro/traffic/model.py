"""The open-loop traffic model: curve × mix → a seeded ArrivalTrace.

``TrafficModel.generate`` samples a nonhomogeneous Poisson process by
Lewis–Shedler thinning: candidate arrivals at the curve's *peak* rate,
each kept with probability ``multiplier(t) / peak``.  Thinning is what
makes the stream honestly open-loop — arrival times never depend on
what the scheduler did with earlier arrivals — while still following
the diurnal shape exactly in expectation.

Determinism contract (pinned by a golden-trace test): one
``random.Random(seed)`` stream, with this draw order per candidate —

1. ``expovariate(peak_rate)``        — gap to the next candidate
2. ``random()``                      — thinning accept roll
   ... and for accepted candidates only:
3. ``random()``                      — workload pick on the weight line
4. ``uniform(*solo_s)``              — solo work size
5. ``expovariate(1 / gap_s)``        — per-workload deferral, only when
                                       the component sets ``gap_s > 0``
6. ``random()``                      — cat-hint roll, only when the
                                       component sets ``cat_propensity > 0``
7. ``random()``                      — pin-hint roll, only when the
                                       component sets ``pin_propensity > 0``

Conditional draws (5–7) consume nothing when their knob is off, so a
mix without gaps or hints generates the exact trace it always did.
Floats are rounded to microseconds at emission, tenant ids are assigned
in final time order, and optional departures reuse
:meth:`ArrivalTrace.with_departures` (its own documented stream).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import TrafficError
from repro.sched.trace import ArrivalTrace, TraceEvent
from repro.traffic.diurnal import DiurnalCurve
from repro.traffic.mix import WorkloadMix

#: Default arrivals per *trace hour* at multiplier 1.0 (the peak).  With
#: the business-hours curve (mean multiplier ~0.52) a day yields ~75
#: arrivals — big enough to show peak-vs-trough contrast, small enough
#: for the argument-free campaign artifact.
DEFAULT_RATE_PER_HOUR = 6.0

#: Hard cap on candidates per generate() call, against degenerate knobs.
_MAX_CANDIDATES = 1_000_000


@dataclass(frozen=True)
class TrafficModel:
    """A diurnal curve plus a workload mix plus the rate knobs."""

    mix: WorkloadMix
    curve: DiurnalCurve = DiurnalCurve()
    #: Arrivals per trace hour when the curve multiplier is 1.0.
    rate_per_hour: float = DEFAULT_RATE_PER_HOUR
    #: Fraction of arrivals that gain a seeded early departure.
    departures: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise TrafficError("rate_per_hour must be > 0")
        if not 0.0 <= self.departures <= 1.0:
            raise TrafficError(
                f"departures fraction must lie in [0, 1], got {self.departures}"
            )

    def generate(self, seed: int = 0, hours: float = 24.0) -> ArrivalTrace:
        """A seeded open-loop day (or part of one): ``hours`` trace
        hours of thinned Poisson arrivals shaped by the curve.  Same
        ``(model, seed, hours)``, byte-identical trace."""
        if hours <= 0:
            raise TrafficError("hours must be > 0")
        duration_s = hours * self.curve.sim_s_per_hour
        peak = self.curve.peak_multiplier
        # Peak candidate rate in arrivals per *simulated* second.
        peak_rate = self.rate_per_hour * peak / self.curve.sim_s_per_hour
        rng = random.Random(seed)
        drawn: list[tuple[float, Any, float, str]] = []
        last_emit: dict[str, float] = {}
        t = 0.0
        for _ in range(_MAX_CANDIDATES):
            t += rng.expovariate(peak_rate)                      # draw 1
            if t >= duration_s:
                break
            if rng.random() >= self.curve.multiplier_at(t) / peak:  # draw 2
                continue
            comp = self.mix.pick(rng.random())                   # draw 3
            solo = rng.uniform(*comp.solo_s)                     # draw 4
            time_s = t
            if comp.gap_s > 0:
                defer = rng.expovariate(1.0 / comp.gap_s)        # draw 5
                earliest = last_emit.get(comp.workload, -1e18) + defer
                time_s = max(time_s, earliest)
                if time_s >= duration_s:
                    continue
            last_emit[comp.workload] = time_s
            hint = ""
            if comp.cat_propensity > 0:
                if rng.random() < comp.cat_propensity:           # draw 6
                    hint = "cat"
            if comp.pin_propensity > 0:
                if rng.random() < comp.pin_propensity and not hint:  # draw 7
                    hint = "pin"
            drawn.append((time_s, comp, solo, hint))
        else:
            raise TrafficError(
                "traffic generation exceeded the candidate cap; "
                "rate_per_hour x hours is degenerate"
            )
        if not drawn:
            raise TrafficError(
                f"model generated no arrivals over {hours} hour(s) at "
                f"{self.rate_per_hour}/h — raise the rate or the duration"
            )
        # Deferrals can reorder; a stable sort on time pins tie order to
        # draw order, then tenant ids follow final time order.
        drawn.sort(key=lambda d: d[0])
        events = tuple(
            TraceEvent(
                time_s=round(time_s, 6),
                kind="arrival",
                tenant=f"u{i:04d}",
                workload=comp.workload,
                threads=comp.threads,
                solo_s=round(solo, 6),
                hint=hint,
            )
            for i, (time_s, comp, solo, hint) in enumerate(drawn)
        )
        trace = ArrivalTrace(events)
        if self.departures > 0:
            trace = trace.with_departures(fraction=self.departures, seed=seed)
        return trace

    # -- round-trip ---------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        return {
            "curve": self.curve.payload(),
            "mix": self.mix.payload(),
            "rate_per_hour": self.rate_per_hour,
            "departures": self.departures,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TrafficModel":
        if "mix" not in payload:
            raise TrafficError("bad traffic-model payload: no mix")
        return TrafficModel(
            mix=WorkloadMix.from_payload(payload["mix"]),
            curve=(
                DiurnalCurve.from_payload(payload["curve"])
                if "curve" in payload
                else DiurnalCurve()
            ),
            rate_per_hour=float(payload.get("rate_per_hour", DEFAULT_RATE_PER_HOUR)),
            departures=float(payload.get("departures", 0.0)),
        )

    def to_json(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.payload(), indent=1) + "\n")
        return path


def load_model(path: "str | Path") -> TrafficModel:
    """Load a traffic-model JSON file (the :meth:`TrafficModel.payload`
    shape, optionally with top-level ``seed`` / ``hours`` defaults the
    generate helpers honor)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TrafficError(f"cannot read traffic model {path}: {exc}") from None
    if not isinstance(payload, dict):
        raise TrafficError(f"traffic model {path} is not a JSON object")
    return TrafficModel.from_payload(payload)


def generate_from_file(
    path: "str | Path",
    *,
    seed: "int | None" = None,
    hours: "float | None" = None,
) -> ArrivalTrace:
    """Generate a trace from a model file.  Explicit arguments win over
    the file's optional top-level ``seed`` / ``hours`` keys; the
    fallbacks are seed 0 and a full 24-hour day."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TrafficError(f"cannot read traffic model {path}: {exc}") from None
    if not isinstance(payload, dict):
        raise TrafficError(f"traffic model {path} is not a JSON object")
    model = TrafficModel.from_payload(payload)
    if seed is None:
        seed = int(payload.get("seed", 0))
    if hours is None:
        hours = float(payload.get("hours", 24.0))
    return model.generate(seed=seed, hours=hours)


def parse_diurnal(spec: str, workloads: Sequence[str]) -> ArrivalTrace:
    """Parse the ``diurnal:S[:H[:T]]`` trace-spec form: a business-hours
    day over a uniform mix of ``workloads`` — seed S, H trace hours
    (default 24), time scale factor T (default 60).  The heavier knobs
    (custom curves, weights, gaps, hints, departures) live in a model
    file passed via ``--traffic``."""
    parts = spec.split(":")
    if not parts or parts[0] != "diurnal":
        raise TrafficError(f"not a diurnal spec: {spec!r}")
    try:
        seed = int(parts[1])
        hours = float(parts[2]) if len(parts) > 2 else 24.0
        scale = float(parts[3]) if len(parts) > 3 else 60.0
    except (IndexError, ValueError):
        raise TrafficError(
            f"bad trace spec {spec!r}; expected diurnal:S[:H[:T]], "
            f"e.g. diurnal:0 or diurnal:0:24:60"
        ) from None
    model = TrafficModel(
        mix=WorkloadMix.uniform(workloads),
        curve=DiurnalCurve.business_hours(scale),
    )
    return model.generate(seed=seed, hours=hours)
