"""Descriptive statistics over an ArrivalTrace, bucketed by trace hour.

``trace_stats`` is the read-only half of the traffic CLI: it answers
"what does this day look like" without running a scheduler — arrivals,
offered work, and hint counts per simulated-hour bucket, the workload
histogram, and the peak-over-trough arrival contrast the acceptance
check cares about.  Pure arithmetic over the event stream; works on any
trace, generated or hand-written.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.report import ascii_table
from repro.errors import TrafficError
from repro.sched.trace import ArrivalTrace


@dataclass(frozen=True)
class HourStats:
    """One simulated-hour bucket of a trace."""

    index: int
    start_s: float
    end_s: float
    arrivals: int
    departures: int
    work_s: float
    threads: int
    cat_hints: int
    pin_hints: int

    def payload(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "work_s": round(self.work_s, 6),
            "threads": self.threads,
            "cat_hints": self.cat_hints,
            "pin_hints": self.pin_hints,
        }


@dataclass(frozen=True)
class TraceStats:
    """A whole trace summarized: hourly buckets plus totals."""

    hours: tuple[HourStats, ...]
    bucket_s: float
    workloads: dict[str, int]
    total_arrivals: int
    total_departures: int
    total_work_s: float

    @property
    def peak_hour(self) -> HourStats:
        return max(self.hours, key=lambda h: (h.arrivals, -h.index))

    @property
    def trough_hour(self) -> HourStats:
        return min(self.hours, key=lambda h: (h.arrivals, h.index))

    @property
    def peak_over_trough(self) -> float:
        """Peak-hour arrivals over trough-hour arrivals (inf when an
        hour is empty — the contrast the diurnal check looks for)."""
        trough = self.trough_hour.arrivals
        if trough == 0:
            return math.inf
        return self.peak_hour.arrivals / trough

    def payload(self) -> dict[str, Any]:
        return {
            "bucket_s": self.bucket_s,
            "hours": [h.payload() for h in self.hours],
            "workloads": dict(sorted(self.workloads.items())),
            "total_arrivals": self.total_arrivals,
            "total_departures": self.total_departures,
            "total_work_s": round(self.total_work_s, 6),
            "peak_hour": self.peak_hour.index,
            "trough_hour": self.trough_hour.index,
            "peak_over_trough": (
                None if math.isinf(self.peak_over_trough)
                else round(self.peak_over_trough, 3)
            ),
        }

    def render(self) -> str:
        rows = []
        for h in self.hours:
            mark = ""
            if h.index == self.peak_hour.index:
                mark = "peak"
            elif h.index == self.trough_hour.index:
                mark = "trough"
            hints = h.cat_hints + h.pin_hints
            rows.append(
                [
                    f"{h.index:02d}",
                    h.arrivals,
                    h.departures,
                    f"{h.work_s:.1f}s",
                    h.threads,
                    hints if hints else "-",
                    mark,
                ]
            )
        ratio = self.peak_over_trough
        contrast = "inf" if math.isinf(ratio) else f"{ratio:.1f}x"
        mix = ", ".join(f"{w}:{n}" for w, n in sorted(self.workloads.items()))
        table = ascii_table(
            ["hour", "arrivals", "departures", "work", "threads", "hints", ""],
            rows,
            title=(
                f"traffic stats: {self.total_arrivals} arrival(s), "
                f"{self.total_departures} departure(s), "
                f"{self.total_work_s:.1f}s offered work, "
                f"peak/trough {contrast}"
            ),
        )
        return table + f"workload mix: {mix}\n"


def trace_stats(trace: ArrivalTrace, *, bucket_s: float = 60.0) -> TraceStats:
    """Bucket a trace by simulated hour (``bucket_s`` simulated seconds
    per trace hour — a curve's ``sim_s_per_hour``; 60 at the default
    time scale factor of 60)."""
    if bucket_s <= 0:
        raise TrafficError("bucket_s must be > 0")
    span = max(e.time_s for e in trace.events)
    n = max(1, math.ceil(span / bucket_s)) if span > 0 else 1
    counts = [
        {"arrivals": 0, "departures": 0, "work": 0.0, "threads": 0,
         "cat": 0, "pin": 0}
        for _ in range(n)
    ]
    workloads: dict[str, int] = {}
    for e in trace.events:
        idx = min(int(e.time_s // bucket_s), n - 1)
        b = counts[idx]
        if e.kind == "arrival":
            b["arrivals"] += 1
            b["work"] += e.solo_s
            b["threads"] += e.threads
            if e.hint == "cat":
                b["cat"] += 1
            elif e.hint == "pin":
                b["pin"] += 1
            workloads[e.workload] = workloads.get(e.workload, 0) + 1
        else:
            b["departures"] += 1
    hours = tuple(
        HourStats(
            index=i,
            start_s=i * bucket_s,
            end_s=(i + 1) * bucket_s,
            arrivals=b["arrivals"],
            departures=b["departures"],
            work_s=b["work"],
            threads=b["threads"],
            cat_hints=b["cat"],
            pin_hints=b["pin"],
        )
        for i, b in enumerate(counts)
    )
    return TraceStats(
        hours=hours,
        bucket_s=bucket_s,
        workloads=workloads,
        total_arrivals=sum(h.arrivals for h in hours),
        total_departures=sum(h.departures for h in hours),
        total_work_s=sum(h.work_s for h in hours),
    )
