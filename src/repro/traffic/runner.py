"""The ``traffic-replay`` campaign artifact: a diurnal day per policy.

Where ``sched-replay`` answers "which policy wins on a memoryless
stream", ``traffic-replay`` answers the question the diurnal generator
exists for: *how does each policy hold up across the day* — peak-hour
pressure versus trough slack, bucketed per simulated trace hour.  One
seeded :class:`~repro.traffic.model.TrafficModel` day is generated
once, replayed through each policy over identical fresh clusters with
one shared :class:`~repro.sched.score.PlacementEvaluator` (the store is
the warm cache, so a warm campaign replays the whole day with zero
engine runs), and every report is sliced with
:meth:`~repro.sched.scheduler.ReplayReport.hourly` at the curve's
``sim_s_per_hour``.

CLI: ``repro traffic-replay [--traffic FILE | --seed S] [--hours H]
[--scale T] [--rate R] [--policy P ...]``; ``repro run-all`` / ``repro
campaign`` execute the argument-free default (a 24-hour business-hours
day over the session roster, two machines) like every other extension
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.classify import VICTIM_THRESHOLD
from repro.core.report import ascii_table
from repro.errors import TrafficError
from repro.sched.runner import DEFAULT_POLICIES
from repro.sched.scheduler import HourBucket, ReplayReport, replay_trace
from repro.sched.score import PlacementEvaluator
from repro.sched.trace import ArrivalTrace
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.traffic.diurnal import DiurnalCurve
from repro.traffic.mix import WorkloadMix
from repro.traffic.model import DEFAULT_RATE_PER_HOUR, TrafficModel, load_model


@dataclass
class TrafficReplay:
    """One generated day replayed under several policies, by the hour."""

    model: TrafficModel
    seed: int
    hours: float
    trace: ArrivalTrace
    machines: int
    slo: float
    reports: list[ReplayReport]
    hourly: dict[str, list[HourBucket]]

    @property
    def bucket_s(self) -> float:
        return self.model.curve.sim_s_per_hour

    def report(self, policy: str) -> ReplayReport:
        for r in self.reports:
            if r.policy == policy:
                return r
        raise TrafficError(
            f"no replay for policy {policy!r}; have "
            f"{', '.join(r.policy for r in self.reports)}"
        )

    def buckets(self, policy: str) -> "list[HourBucket]":
        if policy not in self.hourly:
            raise TrafficError(
                f"no hourly buckets for policy {policy!r}; have "
                f"{', '.join(sorted(self.hourly))}"
            )
        return self.hourly[policy]

    def peak_trough(self, policy: str) -> "tuple[HourBucket, HourBucket]":
        """The busiest and quietest hour of a policy's day, by arrivals
        (earliest wins ties — deterministic across runs)."""
        buckets = self.buckets(policy)
        peak = max(buckets, key=lambda b: (b.arrivals, -b.index))
        trough = min(buckets, key=lambda b: (b.arrivals, b.index))
        return peak, trough

    def render(self) -> str:
        head_rows = []
        for r in self.reports:
            peak, trough = self.peak_trough(r.policy)
            head_rows.append(
                [
                    r.policy,
                    len(r.admitted),
                    r.rejections,
                    r.violations,
                    f"{r.p95_slowdown:.3f}",
                    f"{r.utilization * 100:.1f}%",
                    f"h{peak.index:02d}: {peak.arrivals} arr, "
                    f"p95 {peak.p95_slowdown:.3f}",
                    f"h{trough.index:02d}: {trough.arrivals} arr, "
                    f"p95 {trough.p95_slowdown:.3f}",
                ]
            )
        out = ascii_table(
            [
                "policy", "admitted", "rejected", "SLO viol.",
                "p95", "util", "peak hour", "trough hour",
            ],
            head_rows,
            title=(
                f"traffic replay: {len(self.trace.arrivals)} arrival(s) over "
                f"{self.hours:g} trace hour(s), {self.machines} machine(s), "
                f"SLO {self.slo:.2f}x, seed {self.seed} "
                f"(trace {self.trace.fingerprint})"
            ),
        )
        for r in self.reports:
            rows = [
                [
                    f"{b.index:02d}",
                    b.arrivals,
                    b.admitted,
                    b.rejected,
                    b.violations,
                    f"{b.p50_slowdown:.3f}" if b.admitted else "-",
                    f"{b.p95_slowdown:.3f}" if b.admitted else "-",
                    f"{b.utilization * 100:.1f}%",
                ]
                for b in self.buckets(r.policy)
            ]
            out += ascii_table(
                [
                    "hour", "arrivals", "admitted", "rejected",
                    "SLO viol.", "p50", "p95", "util",
                ],
                rows,
                title=f"by hour [{r.policy}] ({self.bucket_s:g} sim-s buckets)",
            )
        return out

    # -- round-trip ---------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        return {
            "model": self.model.payload(),
            "seed": self.seed,
            "hours": self.hours,
            "trace": self.trace.payload(),
            "machines": self.machines,
            "slo": self.slo,
            "reports": [r.payload() for r in self.reports],
            "hourly": {
                policy: [b.payload() for b in buckets]
                for policy, buckets in self.hourly.items()
            },
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TrafficReplay":
        return TrafficReplay(
            model=TrafficModel.from_payload(payload["model"]),
            seed=payload["seed"],
            hours=payload["hours"],
            trace=ArrivalTrace.from_payload(payload["trace"]),
            machines=payload["machines"],
            slo=payload["slo"],
            reports=[ReplayReport.from_payload(r) for r in payload["reports"]],
            hourly={
                policy: [HourBucket.from_payload(b) for b in buckets]
                for policy, buckets in payload["hourly"].items()
            },
        )


@register_runner(
    "traffic-replay",
    title="a diurnal traffic day replayed per policy, by the hour (extension)",
    artifact=False,
    order=152,
)
class TrafficReplayRunner(Runner):
    """Generate one seeded diurnal day and replay it under each policy;
    the per-hour buckets expose the peak-vs-trough story a whole-day
    aggregate hides."""

    def execute(
        self,
        session,
        *,
        traffic: "str | None" = None,
        model: "TrafficModel | None" = None,
        seed: "int | None" = None,
        hours: float = 24.0,
        scale: float = 60.0,
        rate: float = DEFAULT_RATE_PER_HOUR,
        departures: float = 0.0,
        machines: int = 2,
        slo: float = VICTIM_THRESHOLD,
        policies: tuple[str, ...] = DEFAULT_POLICIES,
        replan: bool = False,
    ) -> TrafficReplay:
        if machines < 1:
            raise TrafficError("machines must be >= 1")
        if not policies:
            raise TrafficError("need at least one policy to replay")
        if traffic is not None and model is not None:
            raise TrafficError("pass either a traffic file or a model, not both")
        if traffic is not None:
            model = load_model(traffic)
        if model is None:
            model = TrafficModel(
                mix=WorkloadMix.uniform(session.config.workloads),
                curve=DiurnalCurve.business_hours(scale),
                rate_per_hour=rate,
                departures=departures,
            )
        if seed is None:
            seed = session.config.seed
        trace = model.generate(seed=seed, hours=hours)
        evaluator = PlacementEvaluator(session)
        reports = [
            replay_trace(
                trace, evaluator, machines=machines, policy=p, slo=slo,
                replan=replan,
            )
            for p in policies
        ]
        bucket_s = model.curve.sim_s_per_hour
        return TrafficReplay(
            model=model,
            seed=seed,
            hours=hours,
            trace=trace,
            machines=machines,
            slo=slo,
            reports=reports,
            hourly={r.policy: r.hourly(bucket_s) for r in reports},
        )

    def render(self, result: TrafficReplay, **_) -> str:
        return result.render()

    def encode(self, result: TrafficReplay) -> dict[str, Any]:
        return result.payload()

    def decode(self, payload: dict[str, Any]) -> TrafficReplay:
        return TrafficReplay.from_payload(payload)
