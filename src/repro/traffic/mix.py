"""Per-workload arrival mixes: weights, shapes, and hint propensities.

A :class:`WorkloadMix` is the "what arrives" half of a traffic model
(the :class:`~repro.traffic.diurnal.DiurnalCurve` is the "when").  Each
:class:`WorkloadComponent` carries an arrival-frequency weight, the
tenant shape (threads), the solo-work-size window, an optional
per-workload minimum execution gap (brad's repeating-analytics runners
sleep a gap between consecutive runs of the same query class), and
optional propensities for the generator to stamp advisory ``cat`` /
``pin`` placement hints on the arrival.

``pick`` is deliberately *not* a wrapper around ``random.choices`` — it
consumes exactly one pre-drawn uniform float so the traffic model's
draw-order contract stays explicit and auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import TrafficError


@dataclass(frozen=True)
class WorkloadComponent:
    """One workload's slice of the mix."""

    workload: str
    #: Relative arrival frequency (any positive scale; normalized at pick).
    weight: float = 1.0
    #: Tenant shape — engine slots an admitted arrival occupies.
    threads: int = 2
    #: Uniform window the solo work size is drawn from, seconds.
    solo_s: tuple[float, float] = (4.0, 9.0)
    #: Mean minimum gap between consecutive arrivals of *this* workload,
    #: simulated seconds (0 disables; drawn exponentially per arrival).
    gap_s: float = 0.0
    #: Probability an arrival carries the advisory "cat" hint.
    cat_propensity: float = 0.0
    #: Probability an arrival carries the advisory "pin" hint (a cat
    #: hint wins if both fire — one arrival carries at most one hint).
    pin_propensity: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "solo_s", tuple(float(s) for s in self.solo_s))
        if not self.workload:
            raise TrafficError("a mix component needs a workload name")
        if self.weight <= 0:
            raise TrafficError(f"{self.workload}: weight must be > 0")
        if self.threads < 1:
            raise TrafficError(f"{self.workload}: threads must be >= 1")
        lo, hi = self.solo_s
        if lo <= 0 or hi < lo:
            raise TrafficError(
                f"{self.workload}: solo_s window must satisfy 0 < lo <= hi"
            )
        if self.gap_s < 0:
            raise TrafficError(f"{self.workload}: gap_s must be >= 0")
        for name in ("cat_propensity", "pin_propensity"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise TrafficError(
                    f"{self.workload}: {name} must lie in [0, 1], got {p}"
                )

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "workload": self.workload,
            "weight": self.weight,
            "threads": self.threads,
            "solo_s": list(self.solo_s),
        }
        if self.gap_s:
            out["gap_s"] = self.gap_s
        if self.cat_propensity:
            out["cat_propensity"] = self.cat_propensity
        if self.pin_propensity:
            out["pin_propensity"] = self.pin_propensity
        return out

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "WorkloadComponent":
        try:
            return WorkloadComponent(
                workload=payload["workload"],
                weight=float(payload.get("weight", 1.0)),
                threads=int(payload.get("threads", 2)),
                solo_s=tuple(payload.get("solo_s", (4.0, 9.0))),
                gap_s=float(payload.get("gap_s", 0.0)),
                cat_propensity=float(payload.get("cat_propensity", 0.0)),
                pin_propensity=float(payload.get("pin_propensity", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TrafficError(f"bad mix-component payload: {exc}") from None


@dataclass(frozen=True)
class WorkloadMix:
    """An ordered roster of weighted components."""

    components: tuple[WorkloadComponent, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", tuple(self.components))
        if not self.components:
            raise TrafficError("a workload mix needs at least one component")
        seen: set[str] = set()
        for c in self.components:
            if c.workload in seen:
                raise TrafficError(f"workload {c.workload!r} appears twice in the mix")
            seen.add(c.workload)

    def __len__(self) -> int:
        return len(self.components)

    @property
    def workloads(self) -> tuple[str, ...]:
        return tuple(c.workload for c in self.components)

    @property
    def total_weight(self) -> float:
        return sum(c.weight for c in self.components)

    def component(self, workload: str) -> WorkloadComponent:
        for c in self.components:
            if c.workload == workload:
                return c
        raise TrafficError(
            f"no component for workload {workload!r}; have "
            f"{', '.join(self.workloads)}"
        )

    def pick(self, u: float) -> WorkloadComponent:
        """Map one uniform draw in [0, 1) onto the cumulative weight
        line.  Component order is significant — it fixes which workload
        a given draw selects, part of the determinism contract."""
        target = u * self.total_weight
        acc = 0.0
        for c in self.components:
            acc += c.weight
            if target < acc:
                return c
        return self.components[-1]

    # -- builders -----------------------------------------------------------

    @staticmethod
    def uniform(
        workloads: Sequence[str],
        *,
        threads: int = 2,
        solo_s: tuple[float, float] = (4.0, 9.0),
    ) -> "WorkloadMix":
        """Equal weights over a roster — the no-opinion default a
        session's workload list expands to."""
        if not workloads:
            raise TrafficError("a workload mix needs a roster")
        return WorkloadMix(
            tuple(
                WorkloadComponent(workload=w, threads=threads, solo_s=solo_s)
                for w in workloads
            )
        )

    # -- round-trip ---------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        return {"components": [c.payload() for c in self.components]}

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "WorkloadMix":
        comps = payload.get("components")
        if not isinstance(comps, list):
            raise TrafficError("bad workload-mix payload: no components list")
        return WorkloadMix(tuple(WorkloadComponent.from_payload(c) for c in comps))
