"""repro.traffic — seeded open-loop diurnal traffic generation.

The traffic layer turns the scheduler's memoryless synthetic streams
into *shaped days*: a :class:`DiurnalCurve` maps simulated seconds to a
time-of-day rate multiplier (brad-style ``time_scale_factor``
compression, so one trace day fits in seconds of simulated time), a
:class:`WorkloadMix` weights the roster and draws per-arrival work
sizes and placement-hint propensities, and a :class:`TrafficModel`
combines the two into ``generate(seed, hours)`` — a nonhomogeneous
Poisson stream (Lewis–Shedler thinning) emitted as a plain
:class:`~repro.sched.trace.ArrivalTrace` every existing consumer
(``sched replay``, ``serve drain``, the campaign runners) already
speaks.  Determinism contract: one ``random.Random(seed)`` stream with
a pinned draw order; same inputs, byte-identical trace.

See ``docs/trace-format.md`` for the trace schema and the
``diurnal:S[:H[:T]]`` / ``--traffic FILE`` spec grammar.
"""

from repro.traffic.diurnal import DiurnalCurve
from repro.traffic.mix import WorkloadComponent, WorkloadMix
from repro.traffic.model import (
    TrafficModel,
    generate_from_file,
    load_model,
    parse_diurnal,
)
from repro.traffic.stats import TraceStats, trace_stats

__all__ = [
    "DiurnalCurve",
    "WorkloadComponent",
    "WorkloadMix",
    "TrafficModel",
    "TraceStats",
    "trace_stats",
    "generate_from_file",
    "load_model",
    "parse_diurnal",
]
