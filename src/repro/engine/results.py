"""Result containers for the interval engine.

Every experiment in the paper reduces to these observables: runtimes
(normalized or absolute), the four VTune metrics (CPI, L2_PCP, LLC
MPKI, LL), and PCM-style bandwidth timelines.  The accumulator gathers
them per application *and* per code region so the provenance analysis
(Figs 7–8, Table IV) can attribute contention to source lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RegionMetrics:
    """Accumulated hardware metrics for one code region."""

    instructions: float = 0.0
    cycles: float = 0.0
    #: Cycles stalled on accesses past the private L2 (LLC or DRAM).
    pending_cycles: float = 0.0
    l2_misses: float = 0.0
    llc_misses: float = 0.0
    bus_bytes: float = 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def l2_pcp(self) -> float:
        """L2 Pending Cycle Percent: share of cycles waiting past L2."""
        return self.pending_cycles / self.cycles if self.cycles else 0.0

    @property
    def llc_mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        return 1000.0 * self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-instruction."""
        return 1000.0 * self.l2_misses / self.instructions if self.instructions else 0.0

    @property
    def ll(self) -> float:
        """The paper's LL metric: CPI * L2_PCP / (L2 misses per
        instruction) — the average load latency beyond the private L2
        as seen by one miss (cycles)."""
        if self.instructions == 0 or self.l2_misses == 0:
            return 0.0
        mpi = self.l2_misses / self.instructions
        return self.cpi * self.l2_pcp / mpi

    def merge(self, other: "RegionMetrics") -> None:
        """Accumulate another chunk into this one."""
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.pending_cycles += other.pending_cycles
        self.l2_misses += other.l2_misses
        self.llc_misses += other.llc_misses
        self.bus_bytes += other.bus_bytes


@dataclass
class AppMetrics:
    """Whole-application metrics: aggregate plus per-region split."""

    name: str
    threads: int
    runtime_s: float = 0.0
    by_region: dict[str, RegionMetrics] = field(default_factory=dict)

    def region(self, name: str) -> RegionMetrics:
        """Get (or create) a region's accumulator."""
        rm = self.by_region.get(name)
        if rm is None:
            rm = self.by_region[name] = RegionMetrics()
        return rm

    @property
    def total(self) -> RegionMetrics:
        """Aggregate over all regions."""
        agg = RegionMetrics()
        for rm in self.by_region.values():
            agg.merge(rm)
        return agg

    @property
    def avg_bandwidth_bytes(self) -> float:
        """Average bus bandwidth over the app's lifetime."""
        return self.total.bus_bytes / self.runtime_s if self.runtime_s > 0 else 0.0


@dataclass(frozen=True)
class BandwidthSample:
    """One PCM-style observation: per-app bus bandwidth at a timestamp."""

    time_s: float
    bytes_per_s: dict[str, float]

    @property
    def total_bytes_per_s(self) -> float:
        return sum(self.bytes_per_s.values())


@dataclass
class SoloRunResult:
    """Outcome of one application running alone."""

    metrics: AppMetrics
    timeline: list[BandwidthSample] = field(default_factory=list)

    @property
    def runtime_s(self) -> float:
        return self.metrics.runtime_s


@dataclass
class CoRunResult:
    """Outcome of a foreground/background consolidation pair.

    The background application restarts for as long as the foreground
    runs (the paper's protocol); ``bg_progress_rate`` is its steady
    instruction throughput relative to its solo throughput.
    """

    fg: AppMetrics
    bg: AppMetrics
    fg_solo_runtime_s: float
    bg_relative_rate: float
    timeline: list[BandwidthSample] = field(default_factory=list)

    @property
    def normalized_time(self) -> float:
        """Fig 5's cell value: fg co-run time / fg solo time."""
        if self.fg_solo_runtime_s <= 0:
            return 0.0
        return self.fg.runtime_s / self.fg_solo_runtime_s

    @property
    def bg_slowdown(self) -> float:
        """Background slowdown factor (>= 1 when it is hurt)."""
        return 1.0 / self.bg_relative_rate if self.bg_relative_rate > 0 else float("inf")


@dataclass
class ScenarioRunResult:
    """Outcome of an N-way consolidation scenario.

    ``apps[0]`` is the measured foreground (the paper's protocol
    generalized): every other application loops for as long as the
    foreground runs, and each background's progress is reported
    relative to its solo instruction rate.  For exactly two apps this
    carries the same observables as :class:`CoRunResult` —
    :meth:`to_corun` / :meth:`from_corun` convert losslessly.
    """

    apps: list[AppMetrics]
    fg_solo_runtime_s: float
    #: One entry per background app (``apps[1:]``): instruction
    #: throughput while consolidated / solo instruction throughput.
    bg_relative_rates: list[float]
    timeline: list[BandwidthSample] = field(default_factory=list)

    @property
    def fg(self) -> AppMetrics:
        return self.apps[0]

    @property
    def backgrounds(self) -> list[AppMetrics]:
        return self.apps[1:]

    @property
    def normalized_time(self) -> float:
        """Foreground co-run time / foreground solo time."""
        if self.fg_solo_runtime_s <= 0:
            return 0.0
        return self.fg.runtime_s / self.fg_solo_runtime_s

    def bg_slowdowns(self) -> list[float]:
        """Per-background slowdown factors (>= 1 when hurt)."""
        return [
            1.0 / r if r > 0 else float("inf") for r in self.bg_relative_rates
        ]

    def to_corun(self) -> CoRunResult:
        """Lossless view of a 2-app scenario as a legacy pair result."""
        if len(self.apps) != 2:
            raise ValueError(
                f"only 2-app scenarios convert to CoRunResult, got {len(self.apps)}"
            )
        return CoRunResult(
            fg=self.apps[0],
            bg=self.apps[1],
            fg_solo_runtime_s=self.fg_solo_runtime_s,
            bg_relative_rate=self.bg_relative_rates[0],
            timeline=self.timeline,
        )

    @staticmethod
    def from_corun(co: CoRunResult) -> "ScenarioRunResult":
        """Lift a legacy pair result into the scenario container."""
        return ScenarioRunResult(
            apps=[co.fg, co.bg],
            fg_solo_runtime_s=co.fg_solo_runtime_s,
            bg_relative_rates=[co.bg_relative_rate],
            timeline=co.timeline,
        )
