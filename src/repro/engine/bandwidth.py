"""Memory-bandwidth contention model.

Three effects, each visible in the paper's measurements:

* **queueing** — below saturation, load latency inflates with bus
  utilization (the curve shared with the trace layer); this is what
  hurts latency-bound (low-MLP) applications well before the bus fills.
* **stream-mixing peak loss** — the ~28 GB/s practical peak is what
  STREAM's four unit-stride streams extract; an application's
  ``bw_efficiency`` deficit manifests only when its streams must
  interleave with *other regular streams* (row-buffer thrash between
  competing streams).  Irregular co-runners slot between row hits, so
  fotonik3d+IRSmk collapses the pair total (Table III: ~24.5 GB/s,
  mutual 1.9x victims) while fotonik3d+G-SSSP coexists near full peak
  (Table IV: fotonik3d unharmed).
* **row-hit favouritism** — FR-FCFS schedulers prioritize row-buffer
  hits, so regular streaming requesters win bus share over irregular
  ones at saturation.  This is the paper's core asymmetry: streaming
  apps are offenders, graph apps are victims (fotonik3d is unharmed by
  G-SSSP while G-SSSP suffers, Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError
from repro.machine.memory import queueing_latency_multiplier
from repro.machine.spec import MemorySpec

#: Entitlement bonus per unit of access regularity (row-hit priority).
#: Sharing is max-min-like — equal entitlements capped by demand, with
#: leftovers redistributed — tilted mildly toward streaming requesters.
#: Pure demand-proportional sharing starves latency-bound victims far
#: beyond the paper's measurements; pure max-min denies the row-hit
#: favouritism Table IV demonstrates (fotonik3d unharmed by G-SSSP).
ROW_HIT_BONUS = 0.5
#: How quickly competing regular traffic exposes an app's efficiency
#: deficit (the stream-mixing peak loss above).
MIX_SENSITIVITY = 3.0


@dataclass(frozen=True)
class BusState:
    """Resolved state of the memory bus for one engine step."""

    demands: tuple[float, ...]
    achieved: tuple[float, ...]
    effective_peak: float
    utilization: float
    latency_multiplier: float

    @property
    def saturated(self) -> bool:
        return sum(self.demands) > sum(self.achieved) * (1 + 1e-9)


def _waterfill(demands: list[float], weights: list[float], capacity: float) -> list[float]:
    """Split ``capacity`` proportionally to ``weights``, never giving an
    app more than its demand; freed capacity is redistributed."""
    n = len(demands)
    out = [0.0] * n
    todo = [i for i in range(n) if demands[i] > 0]
    remaining = capacity
    for _ in range(n + 1):
        if not todo or remaining <= 0:
            break
        wsum = sum(weights[i] for i in todo)
        if wsum <= 0:
            share = remaining / len(todo)
            trial = {i: share for i in todo}
        else:
            trial = {i: remaining * weights[i] / wsum for i in todo}
        capped = [i for i in todo if trial[i] >= demands[i] - out[i]]
        if not capped:
            for i in todo:
                out[i] += trial[i]
            break
        for i in capped:
            grant = demands[i] - out[i]
            out[i] = demands[i]
            remaining -= grant
        todo = [i for i in todo if i not in capped]
    return out


def resolve_bus(
    demands: list[float],
    spec: MemorySpec,
    *,
    bw_efficiencies: list[float] | None = None,
    regularities: list[float] | None = None,
) -> BusState:
    """Resolve per-app achieved bandwidth and the latency multiplier.

    Args:
        demands: Unconstrained per-app demand (bytes/s).
        spec: Memory subsystem parameters.
        bw_efficiencies: Per-app achievable fraction of peak (pattern
            quality); defaults to 1.0.
        regularities: Per-app access regularity in [0, 1] (drives the
            FR-FCFS row-hit share bonus); defaults to 0.
    """
    n = len(demands)
    if any(d < 0 for d in demands):
        raise EngineError("bandwidth demands must be non-negative")
    effs = list(bw_efficiencies) if bw_efficiencies is not None else [1.0] * n
    regs = list(regularities) if regularities is not None else [0.0] * n
    if len(effs) != n or len(regs) != n:
        raise EngineError("bw_efficiencies/regularities must align with demands")

    total = sum(demands)
    peak = spec.peak_bandwidth_bytes
    if total > 0:
        regular_total = sum(d * r for d, r in zip(demands, regs))
        penalty = 0.0
        for d, e, r in zip(demands, effs, regs):
            competing = max(0.0, regular_total - d * r) / total
            penalty += (d * (1.0 - e) / total) * min(1.0, MIX_SENSITIVITY * competing)
        eff = max(0.1, 1.0 - penalty)
    else:
        eff = 1.0
    eff_peak = peak * eff

    if total <= eff_peak:
        achieved = tuple(demands)
        rho = total / eff_peak if eff_peak > 0 else 0.0
    else:
        weights = [1.0 + ROW_HIT_BONUS * r for r in regs]
        achieved = tuple(_waterfill(list(demands), weights, eff_peak))
        rho = 1.0
    return BusState(
        demands=tuple(demands),
        achieved=achieved,
        effective_peak=eff_peak,
        utilization=rho,
        latency_multiplier=queueing_latency_multiplier(rho, spec),
    )
