"""Shared-LLC capacity allocation model.

Under unmanaged sharing, an application's LLC occupancy tracks its
*insertion pressure* — the rate at which it brings new lines in — but
can never exceed its footprint (it cannot keep lines it never touches).
This is the standard fluid approximation of LRU sharing (cf. Chandra et
al., HPCA'05) and captures both paper phenomena:

* STREAM inserts at enormous rate with an unbounded footprint, so it
  squeezes co-runners' shares and inflates their LLC MPKI (Fig 7c);
* Bandit inserts at a high rate but into a footprint of a single cache
  set, so co-runners keep their capacity (Fig 6a's mild slowdowns).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EngineError

#: No application's share drops below this fraction of the LLC: even
#: under heavy thrash, recently-inserted lines of the victim survive
#: briefly (LRU gives every active inserter *some* residency).
MIN_SHARE_FRACTION = 0.02


def allocate_llc_ways(
    capacity_bytes: float,
    n_ways: int,
    masks: "list[int | None]",
    pressures: list[float],
    footprints: list[float],
    policy: str = "pressure",
) -> list[float]:
    """Split LLC capacity under per-app CAT way-mask bitmaps.

    Each way belongs to the apps whose mask includes its bit (an unset
    mask means the full bitmap, CAT's default CLOS behaviour).  Ways are
    grouped by their sharer signature; within one group capacity splits
    by the active ``policy``:

    * ``pressure`` — exclusive ways belong to their owner outright;
      overlapping ways share by insertion pressure, exactly like the
      unpartitioned fluid model (:func:`allocate_llc`) restricted to
      that group's capacity and sharers;
    * ``even`` — every sharer gets an equal slice of each group;
    * ``static`` — no dynamic contention at all: every sharer sees its
      whole masked capacity (the private-cache idealization).

    An all-ways mask for every app therefore degenerates to the global
    policy semantics.  Per-app totals are capped at the footprint — an
    app cannot keep lines it never touches, however many ways CAT
    grants it.
    """
    n = len(masks)
    if len(pressures) != n or len(footprints) != n:
        raise EngineError("masks, pressures and footprints must align")
    full = (1 << n_ways) - 1
    eff = [full if m is None else m for m in masks]
    way_bytes = capacity_bytes / n_ways
    groups: dict[tuple[int, ...], int] = {}
    for w in range(n_ways):
        sharers = tuple(i for i in range(n) if eff[i] >> w & 1)
        if sharers:
            groups[sharers] = groups.get(sharers, 0) + 1
    alloc = [0.0] * n
    for sharers, ways in groups.items():
        cap_g = ways * way_bytes
        if policy == "static":
            for i in sharers:
                alloc[i] += cap_g
        elif policy == "even":
            for i in sharers:
                alloc[i] += cap_g / len(sharers)
        elif len(sharers) == 1:
            alloc[sharers[0]] += cap_g
        else:
            part = allocate_llc(
                cap_g,
                [pressures[i] for i in sharers],
                [footprints[i] for i in sharers],
            )
            for i, a in zip(sharers, part):
                alloc[i] += a
    return [min(a, f) for a, f in zip(alloc, footprints)]


def allocate_llc(
    capacity_bytes: float,
    pressures: list[float],
    footprints: list[float],
) -> list[float]:
    """Split LLC capacity by insertion pressure, capped by footprint.

    Args:
        capacity_bytes: Total shared-LLC capacity.
        pressures: Per-app insertion rates (lines/s or any common unit).
        footprints: Per-app maximum useful/occupiable bytes.

    Returns:
        Per-app allocated bytes; allocations sum to <= capacity and each
        lies in [MIN_SHARE_FRACTION * capacity (if pressure > 0), footprint].
    """
    n = len(pressures)
    if n == 0:
        return []
    if len(footprints) != n:
        raise EngineError("pressures and footprints must align")
    if capacity_bytes <= 0:
        raise EngineError("LLC capacity must be positive")
    p = np.asarray(pressures, dtype=np.float64)
    f = np.asarray(footprints, dtype=np.float64)
    if np.any(p < 0) or np.any(f <= 0):
        raise EngineError("pressures must be >= 0, footprints > 0")

    if p.sum() == 0:
        # Nobody inserts: split evenly up to footprints.
        alloc = np.minimum(f, capacity_bytes / n)
        return alloc.tolist()

    floor = MIN_SHARE_FRACTION * capacity_bytes
    alloc = np.zeros(n)
    active = p > 0
    # Waterfill: give proportional shares, cap at footprints, and
    # redistribute the freed capacity among uncapped apps.
    remaining = capacity_bytes
    todo = np.flatnonzero(active)
    capped = np.zeros(n, dtype=bool)
    for _ in range(n + 1):
        if not len(todo) or remaining <= 0:
            break
        weights = p[todo] / p[todo].sum()
        trial = weights * remaining
        caps = f[todo]
        over = trial >= caps
        if not over.any():
            alloc[todo] = trial
            break
        hit = todo[over]
        alloc[hit] = f[hit]
        capped[hit] = True
        remaining -= float(f[hit].sum())
        todo = todo[~over]
    # Enforce the LRU floor for active inserters (steal proportionally
    # from the largest shares).
    for i in np.flatnonzero(active):
        if alloc[i] < min(floor, f[i]):
            need = min(floor, f[i]) - alloc[i]
            donors = [j for j in np.flatnonzero(active) if j != i and alloc[j] > floor]
            pool = sum(alloc[j] - floor for j in donors)
            if pool > 0:
                take = min(need, pool)
                for j in donors:
                    alloc[j] -= take * (alloc[j] - floor) / pool
                alloc[i] += take
    return alloc.tolist()
