"""Interval engine: analytic co-execution simulation (Section V's
methodology as a predictive model)."""

from repro.engine.bandwidth import BusState, resolve_bus
from repro.engine.batch import MAX_BATCH_SLOTS, BatchCell, solve_batch
from repro.engine.interval import (
    PREFETCH_COVERAGE,
    PREFETCH_HIDE,
    PREFETCH_OVERFETCH,
    SMT_MARGINAL_THROUGHPUT,
    EngineConfig,
    IntervalEngine,
)
from repro.engine.llc_sharing import MIN_SHARE_FRACTION, allocate_llc
from repro.engine.results import (
    AppMetrics,
    BandwidthSample,
    CoRunResult,
    RegionMetrics,
    ScenarioRunResult,
    SoloRunResult,
)

__all__ = [
    "AppMetrics",
    "BandwidthSample",
    "BatchCell",
    "BusState",
    "CoRunResult",
    "EngineConfig",
    "IntervalEngine",
    "MAX_BATCH_SLOTS",
    "MIN_SHARE_FRACTION",
    "PREFETCH_COVERAGE",
    "PREFETCH_HIDE",
    "PREFETCH_OVERFETCH",
    "RegionMetrics",
    "SMT_MARGINAL_THROUGHPUT",
    "ScenarioRunResult",
    "SoloRunResult",
    "allocate_llc",
    "resolve_bus",
    "solve_batch",
]
