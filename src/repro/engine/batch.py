"""Batched interval engine: one fixed point over many scenarios.

:func:`solve_batch` runs a whole set of consolidation scenarios
("cells") through the interval model at once.  Per-app region state —
CPI stacks, MLP, miss-ratio-curve lookups, LLC pressure allocation and
bus contention — is stacked into ``(cells, slots)`` numpy arrays and a
single fixed-point iteration advances *every* scenario simultaneously,
masking cells whose fixed point already converged and cells whose
foreground already finished.

The contract is **bit-identity** with the scalar engine: every floating
point operation of :meth:`IntervalEngine._solve` / ``_advance`` is
replicated in the same order on the same values, so a batched
:class:`~repro.engine.results.ScenarioRunResult` encodes to exactly the
same bytes as the scalar one and warm stores stay fingerprint-stable.
Two properties of the scalar path shape the implementation:

* python ``sum()`` and numpy's small-array sum reduce strictly
  left-to-right for fewer than eight elements, so per-slot reductions
  are replayed as masked sequential adds and cells with eight or more
  applications fall back to the scalar engine;
* the fixed point *applies* the damped update and then tests
  convergence, so converged cells keep their final update and are
  simply dropped from the active mask.

Cells the batch layout cannot represent exactly fall back to
:meth:`IntervalEngine.scenario_run` one by one — the scalar path stays
the correctness oracle, never an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.bandwidth import MIX_SENSITIVITY, ROW_HIT_BONUS
from repro.engine.interval import (
    LLC_PRESSURE_EXP,
    PREFETCH_COVERAGE,
    PREFETCH_HIDE,
    PREFETCH_OVERFETCH,
    SMT_MARGINAL_THROUGHPUT,
    _DAMP,
    _MAX_ITER,
    _MAX_STEPS,
    _TOL,
)
from repro.engine.llc_sharing import MIN_SHARE_FRACTION, allocate_llc_ways
from repro.engine.results import (
    AppMetrics,
    BandwidthSample,
    RegionMetrics,
    ScenarioRunResult,
)
from repro.errors import EngineError
from repro.telemetry.tracer import get_tracer
from repro.units import CACHE_LINE
from repro.workloads.base import WorkloadProfile

#: Cells with more applications than this use the scalar fallback: numpy
#: switches from sequential to pairwise (8-accumulator) summation at
#: eight elements, which would change float ordering vs ``sum()``.
MAX_BATCH_SLOTS = 7


@dataclass(frozen=True)
class BatchCell:
    """One scenario of a batch, in engine terms.

    Mirrors the arguments of :meth:`IntervalEngine.scenario_run`:
    ``profiles[0]`` is the measured foreground, every other profile
    loops for as long as the foreground runs.
    """

    profiles: tuple[WorkloadProfile, ...]
    threads: tuple[int, ...]
    fg_solo_runtime_s: float | None = None
    bg_solo_rates: tuple[float, ...] | None = None
    llc_ways: "tuple[int | None, ...] | None" = None
    pinnings: "tuple[tuple[int, ...] | None, ...] | None" = None
    max_dt: float = 5.0


def _seq_sum(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-cell sum over slots in slot order — exactly how ``sum()``
    (and numpy below 8 elements) reduces.  ``sum()`` starts from 0.0;
    starting from the first term instead is bit-identical because every
    engine quantity summed this way is non-negative (only a -0.0 first
    term could differ from ``0.0 + term``).  A fully-true mask (the
    common case for the static slot-liveness masks) skips the
    ``np.where`` masking entirely — ``where(True, v, 0.0)`` is ``v``."""
    if mask.all():
        total = values[:, 0]
        for j in range(1, values.shape[1]):
            total = total + values[:, j]
        return total
    total = np.where(mask[:, 0], values[:, 0], 0.0)
    for j in range(1, values.shape[1]):
        total = total + np.where(mask[:, j], values[:, j], 0.0)
    return total


def _waterfill_batch(
    demands: np.ndarray,
    weights: np.ndarray,
    capacity: np.ndarray,
    alive: np.ndarray,
    run0: np.ndarray,
) -> np.ndarray:
    """Vectorized ``bandwidth._waterfill`` across cells (``run0`` marks
    the cells whose bus actually saturated)."""
    n_slots = demands.shape[1]
    out = np.zeros_like(demands)
    todo = alive & (demands > 0.0)
    remaining = capacity.astype(np.float64).copy()
    running = run0.copy()
    for _ in range(n_slots + 1):
        running = running & todo.any(axis=1) & (remaining > 0.0)
        if not running.any():
            break
        wsum = _seq_sum(weights, todo)
        wsafe = np.where(wsum > 0.0, wsum, 1.0)
        trial = (remaining[:, None] * weights) / wsafe[:, None]
        capped = todo & (trial >= demands - out)
        any_capped = capped.any(axis=1)
        finish = running & ~any_capped
        out = np.where(finish[:, None] & todo, out + trial, out)
        cont = running & any_capped
        for j in range(n_slots):
            cm = cont & capped[:, j]
            if not cm.any():
                continue
            grant = demands[:, j] - out[:, j]
            out[:, j] = np.where(cm, demands[:, j], out[:, j])
            remaining = np.where(cm, remaining - grant, remaining)
        todo = todo & ~(capped & cont[:, None])
        running = cont
    return out


def _allocate_llc_batch(
    cap_bytes: float,
    p: np.ndarray,
    f: np.ndarray,
    alive: np.ndarray,
    n_apps: np.ndarray,
    cells: np.ndarray,
) -> np.ndarray:
    """Vectorized ``llc_sharing.allocate_llc`` across the ``cells``
    mask: proportional waterfill capped by footprints plus the LRU
    floor, with the zero-pressure even split."""
    n_slots = p.shape[1]
    psum = _seq_sum(p, alive)
    has_p = psum > 0.0
    floor = MIN_SHARE_FRACTION * cap_bytes
    alloc = np.zeros_like(p)
    active = alive & (p > 0.0)
    todo = active.copy()
    remaining = np.full(p.shape[0], cap_bytes)
    running = cells & has_p
    # In round one ``todo`` masks exactly the positive-pressure slots,
    # so the masked sum equals ``psum`` term for term (zeros either
    # way); later rounds recompute it after slots cap out.
    pt = psum
    for _ in range(n_slots + 1):
        running = running & todo.any(axis=1) & (remaining > 0.0)
        if not running.any():
            break
        ptsafe = np.where(pt > 0.0, pt, 1.0)
        trial = (p / ptsafe[:, None]) * remaining[:, None]
        over = todo & (trial >= f)
        any_over = over.any(axis=1)
        cont = running & any_over
        if not cont.any():
            # Every running cell finishes this round (the common case:
            # no footprint cap was hit anywhere).
            alloc = np.where(running[:, None] & todo, trial, alloc)
            break
        finish = running & ~any_over
        alloc = np.where(finish[:, None] & todo, trial, alloc)
        hit = over & cont[:, None]
        alloc = np.where(hit, f, alloc)
        remaining = np.where(cont, remaining - _seq_sum(f, hit), remaining)
        todo = todo & ~hit
        running = cont
        pt = _seq_sum(p, todo)
    # LRU floor: steal proportionally from shares above the floor, one
    # beneficiary slot at a time (the scalar loop order).  Donors never
    # drop below the floor, so a cell with no under-floor slot now
    # never gains one — the whole phase can be skipped up front.
    minf = np.minimum(floor, f)
    fl_cells = cells & has_p
    if bool((fl_cells[:, None] & active & (alloc < minf)).any()):
        for i in range(n_slots):
            needm = fl_cells & active[:, i] & (alloc[:, i] < minf[:, i])
            if not needm.any():
                continue
            need = minf[:, i] - alloc[:, i]
            donors = active & (alloc > floor)
            donors[:, i] = False
            pool = _seq_sum(alloc - floor, donors)
            ok = needm & (pool > 0.0)
            if not ok.any():
                continue
            take = np.minimum(need, pool)
            poolsafe = np.where(pool > 0.0, pool, 1.0)
            give = (take[:, None] * (alloc - floor)) / poolsafe[:, None]
            alloc = np.where(ok[:, None] & donors, alloc - give, alloc)
            alloc[:, i] = np.where(ok, alloc[:, i] + take, alloc[:, i])
    if bool(has_p.all()):
        return alloc
    even = np.where(alive, np.minimum(f, (cap_bytes / n_apps)[:, None]), 0.0)
    return np.where(~has_p[:, None], even, alloc)


def batchable(cell: BatchCell) -> bool:
    """Whether a cell fits the batch layout exactly (else it takes the
    scalar fallback)."""
    return len(cell.profiles) <= MAX_BATCH_SLOTS


class _BatchRunner:
    """Stacked state + the masked step loop for one homogeneous batch
    (one engine: same spec and config for every cell)."""

    def __init__(self, engine, cells: "list[BatchCell]") -> None:
        self.engine = engine
        self.cells = cells
        self.spec = engine.spec
        self.cfg = engine.config
        self._setup()

    # -- constant tables ------------------------------------------------

    def _setup(self) -> None:
        spec = self.spec
        cfg = self.cfg
        cells = self.cells
        C = len(cells)
        self.C = C
        self.llc_cap = float(spec.llc.size_bytes)
        self.n_apps = np.array([len(c.profiles) for c in cells], dtype=np.int64)
        S = int(self.n_apps.max())
        self.S = S
        n_regions = [
            [len(p.regions) for p in c.profiles] for c in cells
        ]
        RT = max(max(row) for row in n_regions)
        self.n_regions = n_regions

        full = (1 << spec.llc_ways) - 1
        # Per-slot python bookkeeping.
        self.prof_names: list[list[str]] = []
        self.acc_names: list[list[list[str]]] = []  # [c][s] -> unique names
        self.sync_names: list[list[str | None]] = []
        self.pin_cells: list[int] = []
        mask_caps = np.zeros((C, S))
        has_masks = np.zeros(C, dtype=bool)
        RN = 1

        def table(fill: float = 0.0) -> np.ndarray:
            return np.full((C, S, RT), fill)

        t_ipc = table(1.0)
        t_mpki = table()          # l2_mpki/1000
        t_mpkiraw = table()       # l2_mpki as-is (metric accumulation)
        t_bpia = table()          # (l2_mpki/1000)*CACHE_LINE
        t_hide = table(1.0)       # 1 - PREFETCH_HIDE*cov
        t_bfac = table(1.0)       # 1 + write_fraction + overfetch
        t_mlp = table(1.0)
        t_sync = table()
        t_teff = np.ones((C, S, RT), dtype=np.int64)
        t_rinstr = table(1.0)
        t_cap0 = table(float(spec.memory.peak_bandwidth_bytes))
        t_foot = table(1.0)
        t_reg = table()
        t_eff = table(1.0)        # bw_efficiency
        t_wbus = table(1.0)       # 1 + ROW_HIT_BONUS*regularity
        t_mstatic = table()
        t_teven = table()
        t_tstatic = table()
        t_serial = np.zeros((C, S, RT), dtype=bool)
        t_gid = np.full((C, S, RT), -1, dtype=np.int64)
        t_nameidx = np.zeros((C, S, RT), dtype=np.int64)
        t_synctgt = np.zeros((C, S, RT), dtype=np.int64)

        mrc_gids: dict[int, int] = {}
        self.mrcs: list = []

        for c, cell in enumerate(cells):
            names_row: list[str] = []
            accs_row: list[list[str]] = []
            syncs_row: list[str | None] = []
            if cell.pinnings is not None and any(
                pin is not None for pin in cell.pinnings
            ):
                self.pin_cells.append(c)
            cell_masks = cell.llc_ways
            if cell_masks is not None and any(m is not None for m in cell_masks):
                has_masks[c] = True
                for s in range(len(cell.profiles)):
                    m = cell_masks[s]
                    mask_caps[c, s] = (
                        bin(m if m is not None else full).count("1")
                        * spec.llc_way_bytes
                    )
            n_c = len(cell.profiles)
            for s, (prof, thr) in enumerate(zip(cell.profiles, cell.threads)):
                names_row.append(prof.name)
                uniq: list[str] = []
                idx_of: dict[str, int] = {}
                for r in prof.regions:
                    nm = r.region.name
                    if nm not in idx_of:
                        idx_of[nm] = len(uniq)
                        uniq.append(nm)
                sync_nm = prof.sync_region_name or None
                if sync_nm and sync_nm not in idx_of:
                    idx_of[sync_nm] = len(uniq)
                    uniq.append(sync_nm)
                accs_row.append(uniq)
                syncs_row.append(sync_nm)
                RN = max(RN, len(uniq))
                work = prof.total_kinstr * 1000.0
                for k, r in enumerate(prof.regions):
                    t_ipc[c, s, k] = r.ipc_core
                    mpki_k = r.l2_mpki / 1000.0
                    t_mpki[c, s, k] = mpki_k
                    t_mpkiraw[c, s, k] = r.l2_mpki
                    t_bpia[c, s, k] = mpki_k * CACHE_LINE
                    cov = (
                        r.regularity * PREFETCH_COVERAGE
                        if cfg.prefetchers_on
                        else 0.0
                    )
                    t_hide[c, s, k] = 1.0 - PREFETCH_HIDE * cov
                    overfetch = (
                        PREFETCH_OVERFETCH * cov
                        if cfg.prefetch_bandwidth_tax
                        else 0.0
                    )
                    t_bfac[c, s, k] = 1.0 + r.write_fraction + overfetch
                    t_mlp[c, s, k] = r.mlp if cfg.use_mlp else 1.0
                    sync = 0.0 if r.serial else prof.scaling.sync_cpi(thr)
                    t_sync[c, s, k] = sync
                    teff = 1 if r.serial else thr
                    t_teff[c, s, k] = teff
                    t_rinstr[c, s, k] = (
                        work * prof.scaling.work_factor(thr)
                    ) * r.weight
                    t_cap0[c, s, k] = (
                        r.bw_efficiency * spec.memory.peak_bandwidth_bytes
                    )
                    t_foot[c, s, k] = r.footprint_bytes
                    t_reg[c, s, k] = r.regularity
                    t_eff[c, s, k] = r.bw_efficiency
                    t_wbus[c, s, k] = 1.0 + ROW_HIT_BONUS * r.regularity
                    t_serial[c, s, k] = r.serial
                    if cfg.llc_policy == "static":
                        cap_i = mask_caps[c, s] if has_masks[c] else self.llc_cap
                        t_mstatic[c, s, k] = r.mrc.miss_ratio(
                            min(r.footprint_bytes, float(cap_i))
                        )
                        t_tstatic[c, s, k] = min(r.footprint_bytes, self.llc_cap)
                    elif cfg.llc_policy == "even":
                        t_teven[c, s, k] = min(
                            r.footprint_bytes, self.llc_cap / n_c
                        )
                    gid = mrc_gids.get(id(r.mrc))
                    if gid is None:
                        gid = mrc_gids[id(r.mrc)] = len(self.mrcs)
                        self.mrcs.append(r.mrc)
                    t_gid[c, s, k] = gid
                    t_nameidx[c, s, k] = idx_of[r.region.name]
                    t_synctgt[c, s, k] = idx_of[sync_nm or r.region.name]
            self.prof_names.append(names_row)
            self.acc_names.append(accs_row)
            self.sync_names.append(syncs_row)

        self.RT = RT
        self.RN = RN
        self.has_masks = has_masks
        self.mask_caps = mask_caps
        self.alive = (
            np.arange(S)[None, :] < self.n_apps[:, None]
        )
        flat = lambda t: np.ascontiguousarray(t).reshape(C * S * RT)
        self.t = {
            "ipc": flat(t_ipc),
            "mpki": flat(t_mpki),
            "mpkiraw": flat(t_mpkiraw),
            "bpia": flat(t_bpia),
            "hide": flat(t_hide),
            "bfac": flat(t_bfac),
            "mlp": flat(t_mlp),
            "sync": flat(t_sync),
            "teff": flat(t_teff),
            "rinstr": flat(t_rinstr),
            "cap0": flat(t_cap0),
            "foot": flat(t_foot),
            "reg": flat(t_reg),
            "eff": flat(t_eff),
            "wbus": flat(t_wbus),
            "mstatic": flat(t_mstatic),
            "teven": flat(t_teven),
            "tstatic": flat(t_tstatic),
            "serial": flat(t_serial),
            "gid": flat(t_gid),
            "nameidx": flat(t_nameidx),
            "synctgt": flat(t_synctgt),
        }
        self._base = (
            np.arange(C)[:, None] * S + np.arange(S)[None, :]
        ) * RT

    # -- the masked step loop -------------------------------------------

    def run(self) -> "tuple[list[ScenarioRunResult], int, int]":
        spec = self.spec
        cfg = self.cfg
        C, S = self.C, self.S
        llc_cap = self.llc_cap
        llc_lat = float(spec.llc.latency_cycles)
        idle_lat = float(spec.memory.idle_latency_cycles)
        freq = spec.freq_hz
        peak = spec.memory.peak_bandwidth_bytes
        qgain = spec.memory.queue_gain
        qmax = spec.memory.max_utilization
        alive = self.alive
        t = self.t
        base = self._base
        policy = cfg.llc_policy
        # Constants needed inside the fixed point (gathered per
        # iteration for the rows still iterating).
        iter_keys = [
            "ipc", "mpki", "bpia", "hide", "bfac", "mlp", "sync",
            "cap0", "foot", "reg", "eff", "wbus",
        ]
        if policy == "static":
            iter_keys += ["mstatic", "tstatic"]
        else:
            iter_keys.append("gid")
            if policy == "even":
                iter_keys.append("teven")

        KI = {k: i for i, k in enumerate(iter_keys)}
        NK = len(iter_keys)

        region_i = np.zeros((C, S), dtype=np.int64)
        instr_done = np.zeros((C, S))
        total_instr = np.zeros((C, S))
        runs_completed = np.zeros((C, S), dtype=np.int64)
        visited = np.zeros((C, S, self.RT), dtype=bool)
        acc = {
            k: np.zeros((C, S, self.RN))
            for k in (
                "instructions",
                "cycles",
                "pending_cycles",
                "l2_misses",
                "llc_misses",
                "bus_bytes",
            )
        }
        now = np.zeros(C)
        steps = np.zeros(C, dtype=np.int64)
        active = np.ones(C, dtype=bool)
        max_dt_full = np.array([c.max_dt for c in self.cells])
        timelines: list[list[tuple[float, list[float]]]] = [[] for _ in range(C)]
        total_iters = 0
        total_steps = 0
        peak_pos = peak > 0.0

        # Per-ACTIVE-cell working state, kept compacted: row i of every
        # array below belongs to global cell ``act[i]``.  Rows are
        # dropped when their cell finishes, and region constants are
        # rewritten in place when a cell changes region — so the hot
        # loop never gathers or scatters against the full cell set.
        act = np.flatnonzero(active)
        alive_s = alive[act]
        napps_s = self.n_apps[act]
        hm_s = self.has_masks[act]
        gss = np.zeros((C, S, NK))
        teff_s = np.ones((C, S))
        smt_s = np.ones((C, S))
        alloc_s = np.where(alive_s, llc_cap / napps_s[:, None], 0.0)
        rho_s = np.full(C, 0.2)
        its_s = np.zeros(C, dtype=np.int64)

        def begin_step(rows: np.ndarray) -> None:
            nonlocal total_steps
            if bool((steps[rows] >= _MAX_STEPS).any()):
                raise EngineError("step budget exhausted; check profile scales")
            steps[rows] += 1
            total_steps += int(rows.size)

        def refresh(local_rows: np.ndarray, global_rows: np.ndarray) -> None:
            # Re-gather region constants and recompute the SMT scales
            # for cells entering a new region (bit-identical scalar
            # replication: vectorized for the unpinned case, per cell
            # when pinned).  ``local_rows`` index the compacted arrays,
            # ``global_rows`` the full tables.
            idxr = base[global_rows] + region_i[global_rows]
            for k, ki in KI.items():
                gss[local_rows, :, ki] = np.take(t[k], idxr)
            teff_r = np.take(t["teff"], idxr).astype(np.float64)
            teff_s[local_rows] = teff_r
            alive_r = alive[global_rows]
            smt_r = np.ones((global_rows.size, S))
            if spec.hyperthreading:
                live_t = _seq_sum(teff_r, alive_r).astype(np.int64)
                over = live_t > spec.n_cores
                per_core = live_t / spec.n_cores
                scale = (
                    1.0 + (per_core - 1.0) * SMT_MARGINAL_THROUGHPUT
                ) / np.where(per_core > 0, per_core, 1.0)
                smt_r = np.where(
                    (over[:, None]) & alive_r, scale[:, None], smt_r
                )
            smt_s[local_rows] = smt_r
            if self.pin_cells:
                loc_of = {
                    int(cg): int(lr)
                    for lr, cg in zip(local_rows, global_rows)
                }
                for c in self.pin_cells:
                    lr = loc_of.get(c)
                    if lr is None:
                        continue
                    smt_s[lr, :] = 1.0
                    cell = self.cells[c]
                    n_c = len(cell.profiles)
                    pins = cell.pinnings
                    reserved = {
                        core for pin in pins if pin is not None for core in pin
                    }
                    free = tuple(
                        core
                        for core in range(spec.n_cores)
                        if core not in reserved
                    )
                    if not free:
                        free = tuple(range(spec.n_cores))
                    occ = [0.0] * spec.n_cores
                    spans = []
                    for s in range(n_c):
                        cores = pins[s] if pins[s] is not None else free
                        spans.append(cores)
                        load = int(teff_s[lr, s]) / len(cores)
                        for core in cores:
                            occ[core] += load
                    for s in range(n_c):
                        per_core_s = sum(occ[core] for core in spans[s]) / len(
                            spans[s]
                        )
                        if per_core_s > 1.0:
                            if spec.hyperthreading:
                                smt_s[lr, s] = (
                                    1.0
                                    + (per_core_s - 1.0)
                                    * SMT_MARGINAL_THROUGHPUT
                                ) / per_core_s
                            else:
                                smt_s[lr, s] = 1.0 / per_core_s

        # Cells step asynchronously: every pass runs ONE fixed-point
        # iteration for every active cell; cells whose iteration just
        # converged (or hit the iteration cap) advance to their next
        # step boundary immediately and rejoin the next pass at
        # iteration zero of their next step, while the rest keep
        # iterating.  Per cell this replays exactly the scalar
        # step/iteration sequence — the passes only interleave
        # independent cells, they never mix their arithmetic.
        begin_step(act)
        refresh(np.arange(C), act)
        gid_groups: "list[tuple[int, np.ndarray]] | None" = None
        while act.size:
            B = int(act.size)
            total_iters += B
            gv = {k: gss[:, :, ki] for k, ki in KI.items()}

            if cfg.use_queueing:
                rho_c = np.minimum(rho_s, qmax)
                qmult = 1.0 + qgain * rho_c / (1.0 - rho_c)
            else:
                qmult = np.ones(B)
            if policy == "static":
                m = gv["mstatic"]
            else:
                if gid_groups is None:
                    # Group slots by miss-ratio curve with one stable
                    # sort (within a group the stable order keeps slots
                    # ascending, exactly like a flatnonzero scan).  The
                    # grouping only changes on region refresh or row
                    # compaction, so it is cached between passes.
                    gid_flat = gv["gid"].reshape(-1)
                    order = np.argsort(gid_flat, kind="stable")
                    sg = gid_flat[order]
                    splits = (
                        np.flatnonzero(sg[1:] != sg[:-1]) + 1
                    ).tolist()
                    gid_groups = [
                        (int(sg[a]), order[a:b])
                        for a, b in zip([0] + splits, splits + [sg.size])
                        if int(sg[a]) >= 0
                    ]
                alloc_flat = alloc_s.reshape(-1)
                m_flat = np.zeros(alloc_flat.size)
                for gid, sel in gid_groups:
                    m_flat[sel] = self.mrcs[gid].miss_ratios(
                        alloc_flat[sel]
                    )
                m = m_flat.reshape(B, S)
            mem_lat = idle_lat * qmult
            l_eff = llc_lat + (m * gv["hide"]) * mem_lat[:, None]
            stall_lat = (gv["mpki"] * l_eff) / gv["mlp"]
            bpi = (gv["bpia"] * m) * gv["bfac"]
            core_cpi = 1.0 / (gv["ipc"] * smt_s)
            cpi = core_cpi + gv["sync"] + stall_lat
            rate = freq / cpi
            demands = (bpi * rate) * teff_s

            # resolve_bus, vectorized.
            total = _seq_sum(demands, alive_s)
            regular_total = _seq_sum(demands * gv["reg"], alive_s)
            tsafe = np.where(total > 0.0, total, 1.0)
            competing = (
                np.maximum(0.0, regular_total[:, None] - demands * gv["reg"])
                / tsafe[:, None]
            )
            term = (
                (demands * (1.0 - gv["eff"])) / tsafe[:, None]
            ) * np.minimum(1.0, MIX_SENSITIVITY * competing)
            penalty = _seq_sum(term, alive_s)
            eff_bus = np.where(
                total > 0.0, np.maximum(0.1, 1.0 - penalty), 1.0
            )
            eff_peak = peak * eff_bus
            unsat = total <= eff_peak
            unsat_all = bool(unsat.all())
            if unsat_all:
                # Common case: no cell saturates its bus this
                # iteration.  ``achieved`` would be ``demands``
                # everywhere and ``saturated`` all false — skip the
                # waterfill entirely (bit-identical: the skipped
                # reductions reuse the very sums already computed).
                achieved = demands
                saturated = None
                sat_any = False
            else:
                wf = _waterfill_batch(
                    demands, gv["wbus"], eff_peak, alive_s, ~unsat
                )
                achieved = np.where(unsat[:, None], demands, wf)
                ach_total = _seq_sum(achieved, alive_s)
                saturated = total > ach_total * (1 + 1e-9)
                sat_any = bool(saturated.any())

            # Roofline correction.
            new_cpi = core_cpi + gv["sync"] + stall_lat
            new_rate = freq / new_cpi
            cap = gv["cap0"]
            if sat_any:
                cap = np.where(
                    saturated[:, None] & (achieved > 0.0),
                    np.minimum(cap, achieved),
                    cap,
                )
            has_bpi = bpi > 0.0
            den = np.where(has_bpi, bpi * teff_s, 1.0)
            rate_bw = cap / den
            hit_bw = has_bpi & (rate_bw < new_rate)
            new_rate = np.where(hit_bw, rate_bw, new_rate)
            new_cpi = np.where(hit_bw, freq / rate_bw, new_cpi)
            new_stall = np.where(
                hit_bw, (new_cpi - core_cpi) - gv["sync"], stall_lat
            )
            new_bps = (bpi * new_rate) * teff_s

            # LLC reallocation targets.  numpy's vectorized pow rounds
            # differently from libm in the last ulp, so the pressure
            # exponent is applied per element on python floats —
            # exactly the scalar engine's operation.
            any_masks = bool(hm_s.any())
            if any_masks or policy == "pressure":
                pbase = ((gv["mpki"] * m) * new_rate) * teff_s
                pressures = np.array(
                    [
                        v**LLC_PRESSURE_EXP
                        for v in pbase.reshape(-1).tolist()
                    ]
                ).reshape(B, S)
            if policy == "pressure":
                target = _allocate_llc_batch(
                    llc_cap,
                    np.where(alive_s, pressures, 0.0),
                    gv["foot"],
                    alive_s,
                    napps_s,
                    ~hm_s,
                )
            elif policy == "even":
                # Copy before masked-cell writes: the plane is a view
                # into the persistent region-constant stack.
                target = gv["teven"].copy() if any_masks else gv["teven"]
            else:
                target = gv["tstatic"].copy() if any_masks else gv["tstatic"]
            if any_masks:
                for i in np.flatnonzero(hm_s):
                    i = int(i)
                    c = int(act[i])
                    n_c = int(napps_s[i])
                    part = allocate_llc_ways(
                        llc_cap,
                        spec.llc_ways,
                        list(self.cells[c].llc_ways),
                        pressures[i, :n_c].tolist(),
                        gv["foot"][i, :n_c].tolist(),
                        policy,
                    )
                    target[i, :n_c] = part

            if unsat_all:
                # min(demands, demands) reduces to the sum already in
                # hand.
                total_achieved = total
            else:
                total_achieved = _seq_sum(
                    np.minimum(demands, achieved), alive_s
                )
            if peak_pos:
                # eff_bus is clamped to at least 0.1, so eff_peak > 0
                # exactly when the spec's peak bandwidth is.
                rho_new = np.minimum(total_achieved / eff_peak, 1.0)
            else:
                rho_new = np.zeros(B)

            # max() is exact whatever the reduction order, so the
            # scalar's per-slot running maximum collapses to one
            # masked row reduction.
            cand = np.abs(target - alloc_s) / llc_cap
            masked = np.where(
                alive_s & (alloc_s > 0.0), cand, -np.inf
            )
            delta = np.maximum(
                np.abs(rho_new - rho_s), masked.max(axis=1)
            )
            rho_s = (1 - _DAMP) * rho_s + _DAMP * rho_new
            alloc_s = (1 - _DAMP) * alloc_s + _DAMP * target
            its_s += 1
            leave = (delta < _TOL) | (its_s >= _MAX_ITER)
            conv_l = np.flatnonzero(leave)
            if not conv_l.size:
                continue
            its_s[conv_l] = 0

            # ---- advance the converged cells to their next boundary ----
            rows = act[conv_l]
            K = int(rows.size)
            alive_k = alive_s[conv_l]
            teff_k = teff_s[conv_l]
            rate_k = new_rate[conv_l]
            cpi_k = new_cpi[conv_l]
            stall_k = new_stall[conv_l]
            bps_k = new_bps[conv_l]
            m_k = m[conv_l]
            sync_k = gv["sync"][conv_l]
            speed = rate_k * teff_k
            if bool((alive_k & (speed <= 0.0)).any()):
                bad = np.argwhere(alive_k & (speed <= 0.0))[0]
                name = self.prof_names[int(rows[int(bad[0])])][int(bad[1])]
                raise EngineError(f"{name}: zero execution rate")
            region_k = region_i[rows]
            idxk = base[rows] + region_k
            rinstr_k = np.take(t["rinstr"], idxk)
            mpkiraw_k = np.take(t["mpkiraw"], idxk)
            nameidx_k = np.take(t["nameidx"], idxk)
            synctgt_k = np.take(t["synctgt"], idxk)
            instr_done_k = instr_done[rows]
            remaining = rinstr_k - instr_done_k
            spd_safe = np.where(alive_k, speed, 1.0)
            step_j = np.maximum(remaining / spd_safe, 1e-9)
            dt = np.minimum(
                max_dt_full[rows],
                np.where(alive_k, step_j, np.inf).min(axis=1),
            )
            instr = (rate_k * teff_k) * dt[:, None]

            ci_l, si = np.nonzero(alive_k)
            ci = rows[ci_l]
            ri = region_k[ci_l, si]
            tgt = nameidx_k[ci_l, si]
            inst_v = instr[ci_l, si]
            visited[ci, si, ri] = True
            acc["instructions"][ci, si, tgt] += inst_v
            acc["cycles"][ci, si, tgt] += inst_v * (
                cpi_k[ci_l, si] - sync_k[ci_l, si]
            )
            acc["pending_cycles"][ci, si, tgt] += inst_v * stall_k[ci_l, si]
            acc["l2_misses"][ci, si, tgt] += (
                inst_v * mpkiraw_k[ci_l, si]
            ) / 1000.0
            acc["llc_misses"][ci, si, tgt] += (
                (inst_v * mpkiraw_k[ci_l, si]) / 1000.0
            ) * m_k[ci_l, si]
            acc["bus_bytes"][ci, si, tgt] += bps_k[ci_l, si] * dt[ci_l]
            has_sync = sync_k[ci_l, si] > 0.0
            if bool(has_sync.any()):
                cs_l, ss = ci_l[has_sync], si[has_sync]
                cs = rows[cs_l]
                stgt = synctgt_k[cs_l, ss]
                acc["cycles"][cs, ss, stgt] += (
                    instr[cs_l, ss] * sync_k[cs_l, ss]
                )
                acc["instructions"][cs, ss, stgt] += 0.0
            total_instr[ci, si] += inst_v
            instr_done_k[ci_l, si] += inst_v
            instr_done[rows] = instr_done_k

            # Timeline samples (per cell, in slot order).
            t_next = now[rows] + dt
            for i in range(K):
                c = int(rows[i])
                n_c = len(self.cells[c].profiles)
                timelines[c].append(
                    (float(t_next[i]), bps_k[i, :n_c].tolist())
                )
            now[rows] = t_next

            # Region/phase transitions (few per pass: python
            # bookkeeping), then re-arm the continuing cells.
            done = alive_k & (instr_done_k >= rinstr_k - 1e-6)
            changed: list[int] = []
            finished = False
            for lc, s in np.argwhere(done):
                lc, s = int(lc), int(s)
                c = int(rows[lc])
                instr_done[c, s] = 0.0
                nxt = int(region_i[c, s]) + 1
                if nxt >= self.n_regions[c][s]:
                    nxt = 0
                    runs_completed[c, s] += 1
                    if s == 0:
                        active[c] = False
                        finished = True
                region_i[c, s] = nxt
                la = int(conv_l[lc])
                if active[c] and (not changed or changed[-1] != la):
                    changed.append(la)
            cont = rows[active[rows]]
            if cont.size:
                begin_step(cont)
            if changed:
                locs = np.unique(np.array(changed, dtype=np.int64))
                refresh(locs, act[locs])
                gid_groups = None
            if finished:
                gid_groups = None
                keep = active[act]
                act = act[keep]
                gss = gss[keep]
                teff_s = teff_s[keep]
                smt_s = smt_s[keep]
                alive_s = alive_s[keep]
                napps_s = napps_s[keep]
                hm_s = hm_s[keep]
                alloc_s = alloc_s[keep]
                rho_s = rho_s[keep]
                its_s = its_s[keep]

        return self._assemble(
            acc, visited, total_instr, now, timelines
        ), total_steps, total_iters

    # -- result assembly ------------------------------------------------

    def _assemble(
        self,
        acc: dict,
        visited: np.ndarray,
        total_instr: np.ndarray,
        now: np.ndarray,
        timelines: list,
    ) -> "list[ScenarioRunResult]":
        accl = {k: v.tolist() for k, v in acc.items()}
        visl = visited.tolist()
        til = total_instr.tolist()
        nowl = now.tolist()
        syncl = self.t["sync"].tolist()
        basel = self._base.tolist()
        results: list[ScenarioRunResult] = []
        for c, cell in enumerate(self.cells):
            n_c = len(cell.profiles)
            runtime = nowl[c]
            apps: list[AppMetrics] = []
            for s in range(n_c):
                uniq = self.acc_names[c][s]
                sync_nm = self.sync_names[c][s]
                vis_cs = visl[c][s]
                base_cs = basel[c][s]
                order: list[str] = []
                for k, r in enumerate(cell.profiles[s].regions):
                    if not vis_cs[k]:
                        continue
                    nm = r.region.name
                    if nm not in order:
                        order.append(nm)
                    if syncl[base_cs + k] > 0.0:
                        snm = sync_nm or nm
                        if snm not in order:
                            order.append(snm)
                by_region: dict[str, RegionMetrics] = {}
                for nm in order:
                    k = uniq.index(nm)
                    by_region[nm] = RegionMetrics(
                        instructions=accl["instructions"][c][s][k],
                        cycles=accl["cycles"][c][s][k],
                        pending_cycles=accl["pending_cycles"][c][s][k],
                        l2_misses=accl["l2_misses"][c][s][k],
                        llc_misses=accl["llc_misses"][c][s][k],
                        bus_bytes=accl["bus_bytes"][c][s][k],
                    )
                apps.append(
                    AppMetrics(
                        name=cell.profiles[s].name,
                        threads=cell.threads[s],
                        runtime_s=runtime,
                        by_region=by_region,
                    )
                )
            relative_rates = []
            for s in range(1, n_c):
                solo_rate = cell.bg_solo_rates[s - 1]
                rate = til[c][s] / runtime if runtime > 0 else 0.0
                relative_rates.append(
                    rate / solo_rate if solo_rate > 0 else 0.0
                )
            names_c = self.prof_names[c]
            timeline = [
                BandwidthSample(
                    time_s=t_s,
                    bytes_per_s=dict(zip(names_c, bps)),
                )
                for t_s, bps in timelines[c]
            ]
            results.append(
                ScenarioRunResult(
                    apps=apps,
                    fg_solo_runtime_s=cell.fg_solo_runtime_s,
                    bg_relative_rates=relative_rates,
                    timeline=timeline,
                )
            )
        return results


def solve_batch(engine, cells: "Sequence[BatchCell]") -> "list[ScenarioRunResult]":
    """Solve many scenarios at once on one engine (same spec/config).

    Cells the array layout cannot represent exactly (more than
    :data:`MAX_BATCH_SLOTS` applications) run through the scalar
    :meth:`IntervalEngine.scenario_run` fallback; everything else goes
    through one stacked fixed point.  Results are bit-identical to the
    scalar path, in input order.
    """
    cells = list(cells)
    if not cells:
        return []
    prepared = [_prepare_cell(engine, cell) for cell in cells]
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("engine.solve_batch", cells=len(prepared)) as span:
            return _solve_batch_impl(engine, prepared, tracer, span)
    return _solve_batch_impl(engine, prepared, tracer, None)


def _solve_batch_impl(
    engine, prepared: "list[BatchCell]", tracer, span
) -> "list[ScenarioRunResult]":
    eligible = [i for i, cell in enumerate(prepared) if batchable(cell)]
    results: list[ScenarioRunResult | None] = [None] * len(prepared)
    if eligible:
        runner = _BatchRunner(engine, [prepared[i] for i in eligible])
        batch_results, n_steps, n_iters = runner.run()
        for i, res in zip(eligible, batch_results):
            results[i] = res
        if span is not None:
            span.tag("batched", len(eligible))
            span.tag("steps", n_steps)
            span.tag("iterations", n_iters)
        tracer.merge_counters(
            "engine",
            {"batch_cells": len(eligible), "batch_count": 1},
        )
    for i, cell in enumerate(prepared):
        if results[i] is None:
            results[i] = engine.scenario_run(
                list(cell.profiles),
                list(cell.threads),
                fg_solo_runtime_s=cell.fg_solo_runtime_s,
                bg_solo_rates=list(cell.bg_solo_rates),
                llc_ways=(
                    list(cell.llc_ways) if cell.llc_ways is not None else None
                ),
                pinnings=(
                    list(cell.pinnings) if cell.pinnings is not None else None
                ),
                max_dt=cell.max_dt,
            )
    return results  # type: ignore[return-value]


def _prepare_cell(engine, cell: BatchCell) -> BatchCell:
    """Validate a cell exactly like the scalar ``_scenario_run`` prologue
    and fill in missing solo references (scalar engine, so references
    are bit-identical either way)."""
    profiles = cell.profiles
    threads = cell.threads
    if not profiles:
        raise EngineError("a scenario needs at least one application")
    if len(threads) != len(profiles):
        raise EngineError(
            f"{len(profiles)} profiles but {len(threads)} thread counts"
        )
    if any(t < 1 for t in threads):
        raise EngineError("every app needs at least one thread")
    if sum(threads) > engine.spec.n_slots:
        raise EngineError(
            f"{'+'.join(str(t) for t in threads)} threads exceed "
            f"{engine.spec.n_slots} hardware threads"
        )
    llc_ways = engine._check_way_masks(
        list(profiles), list(cell.llc_ways) if cell.llc_ways is not None else None
    )
    pinnings = engine._check_pinnings(
        list(profiles),
        list(threads),
        list(cell.pinnings) if cell.pinnings is not None else None,
    )
    fg_solo = cell.fg_solo_runtime_s
    if fg_solo is None:
        fg_solo = engine.solo_run(profiles[0], threads=threads[0]).runtime_s
    bg_rates = cell.bg_solo_rates
    if bg_rates is None:
        rates = []
        for prof, thr in zip(profiles[1:], threads[1:]):
            solo = engine.solo_run(prof, threads=thr)
            rates.append(solo.metrics.total.instructions / solo.runtime_s)
        bg_rates = tuple(rates)
    if len(bg_rates) != len(profiles) - 1:
        raise EngineError(
            f"{len(profiles) - 1} backgrounds but "
            f"{len(bg_rates)} solo rates"
        )
    return BatchCell(
        profiles=tuple(profiles),
        threads=tuple(threads),
        fg_solo_runtime_s=fg_solo,
        bg_solo_rates=tuple(bg_rates),
        llc_ways=tuple(llc_ways),
        pinnings=tuple(pinnings),
        max_dt=cell.max_dt,
    )
