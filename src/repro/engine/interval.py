"""The interval engine: fast analytic co-execution simulation.

Each application is a :class:`~repro.workloads.base.WorkloadProfile`.
The engine advances wall-clock time in steps bounded by phase
boundaries; inside each step it solves a damped fixed point coupling
three mechanisms:

1. **CPI stack** — ``CPI = 1/IPC_core + sync(t) + max(latency stall,
   bandwidth stall)`` where the latency stall walks L2 misses through
   the LLC (hit) or DRAM (miss, queue-inflated), divided by the phase's
   memory-level parallelism, with prefetch-covered misses mostly hidden;
2. **LLC sharing** — capacity splits by insertion pressure capped by
   footprint (:mod:`repro.engine.llc_sharing`); each app's miss ratio
   comes from its miss-ratio curve at its current share;
3. **bus contention** — sub-saturation latency inflation plus
   proportional throughput division at saturation
   (:mod:`repro.engine.bandwidth`).

The same engine runs solo characterization (Figs 2–4), 625-pair
consolidation (Fig 5) and the provenance profiling (Figs 7–8), so every
co-run number *emerges* from these mechanisms rather than being looked
up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError
from repro.engine.bandwidth import resolve_bus
from repro.engine.llc_sharing import allocate_llc, allocate_llc_ways
from repro.engine.results import (
    AppMetrics,
    BandwidthSample,
    CoRunResult,
    ScenarioRunResult,
    SoloRunResult,
)
from repro.machine.spec import MachineSpec, xeon_e5_4650
from repro.telemetry.tracer import get_tracer
from repro.units import CACHE_LINE
from repro.workloads.base import RegionProfile, WorkloadProfile

#: Fraction of a phase's "regular" L2-miss traffic the prefetchers cover.
PREFETCH_COVERAGE = 0.85
#: Fraction of a covered miss's DRAM latency that prefetching hides.
PREFETCH_HIDE = 0.88
#: Useless prefetched bytes per covered-miss byte (overfetch tax).
PREFETCH_OVERFETCH = 0.30
#: Super-linear weighting of LLC insertion pressure: heavy inserters
#: (STREAM) displace light ones more than proportionally, reproducing
#: the ~2.6x victim-MPKI inflation of Fig 7c.
LLC_PRESSURE_EXP = 1.6
#: SMT marginal throughput: the second hardware thread on a core adds
#: this fraction of single-thread throughput (Sandy Bridge-class SMT
#: yields ~1.3x aggregate).  Only active on ``hyperthreading=True``
#: specs when the live thread count oversubscribes the physical cores.
SMT_MARGINAL_THROUGHPUT = 0.30
#: Fixed-point iteration limits.
_MAX_ITER = 60
_TOL = 1e-5
_DAMP = 0.5
#: Step-count safety valve.
_MAX_STEPS = 200_000
#: Valid LLC sharing policies (the CAT-style partitioning axis).
LLC_POLICIES = ("pressure", "even", "static")


@dataclass
class _LiveApp:
    """Mutable execution state of one co-running application."""

    profile: WorkloadProfile
    threads: int
    looping: bool
    metrics: AppMetrics
    region_i: int = 0
    instr_done_in_region: float = 0.0
    runs_completed: int = 0
    finished: bool = False
    total_instructions: float = 0.0
    #: CAT way-mask bitmap restricting this app's LLC reach; ``None``
    #: means all ways (the unpartitioned default).
    llc_ways: int | None = None
    #: Physical core ids this app's threads are pinned to; ``None``
    #: schedules onto the cores no placement reserves.
    pinning: tuple[int, ...] | None = None

    @property
    def region(self) -> RegionProfile:
        return self.profile.regions[self.region_i]

    def region_instr(self) -> float:
        """Dynamic instructions of the current region at this thread
        count (work inflation applied)."""
        work = self.profile.total_kinstr * 1000.0 * self.profile.scaling.work_factor(self.threads)
        return work * self.region.weight

    def effective_threads(self) -> int:
        return 1 if self.region.serial else self.threads


@dataclass(frozen=True)
class _PhaseSolution:
    """Fixed-point outcome for one app during one step."""

    cpi: float
    sync_cpi: float
    stall_cpi: float
    rate_per_thread: float  # instructions / s
    bytes_per_s: float      # app-wide bus traffic
    llc_miss_ratio: float
    llc_alloc_bytes: float


@dataclass
class EngineConfig:
    """Tunable engine knobs (ablation benches sweep these)."""

    prefetchers_on: bool = True
    #: Count prefetch overfetch against the bus (ablation #3).
    prefetch_bandwidth_tax: bool = True
    #: LLC policy: "pressure" (default), "even", or "static" (no
    #: sharing penalty — infinite LLC for everyone; ablation #1).
    llc_policy: str = "pressure"
    #: Apply memory-level-parallelism overlap (ablation #4).
    use_mlp: bool = True
    #: Apply the queueing latency curve (ablation #2).
    use_queueing: bool = True

    def __post_init__(self) -> None:
        if self.llc_policy not in LLC_POLICIES:
            raise EngineError(f"unknown llc_policy {self.llc_policy!r}")


class IntervalEngine:
    """Analytic co-execution simulator over WorkloadProfiles."""

    def __init__(
        self,
        spec: MachineSpec | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.spec = spec if spec is not None else xeon_e5_4650()
        self.config = config if config is not None else EngineConfig()

    # -- fixed point -----------------------------------------------------

    def _solve(
        self,
        apps: list[_LiveApp],
        alloc0: list[float] | None,
        rho0: float,
    ) -> tuple[list[_PhaseSolution], list[float], float]:
        spec = self.spec
        cfg = self.config
        freq = spec.freq_hz
        llc_cap = float(spec.llc.size_bytes)
        llc_lat = float(spec.llc.latency_cycles)
        idle_lat = float(spec.memory.idle_latency_cycles)
        n = len(apps)

        alloc = list(alloc0) if alloc0 is not None else [llc_cap / n] * n
        rho = rho0
        # SMT pipeline sharing: when the live threads oversubscribe the
        # physical cores, each core time-slices its two hardware
        # threads; the second thread adds SMT_MARGINAL_THROUGHPUT of a
        # core's throughput, so per-thread core IPC scales down.  The
        # scale is exactly 1.0 whenever the spec disables SMT or the
        # threads fit the cores, keeping non-SMT results bit-identical.
        # With explicit pinning the contention is per-app: each app's
        # threads spread over its pinned cores, a core's occupancy is
        # what its residents pay for, and pinned cores are *reserved* —
        # unpinned apps spread over the remaining cores (as a real
        # scheduler would), falling back to all cores only when every
        # core is claimed by some pinning.
        smt_scales = [1.0] * n
        if any(a.pinning is not None for a in apps):
            reserved = {c for a in apps if a.pinning is not None for c in a.pinning}
            free = tuple(c for c in range(spec.n_cores) if c not in reserved)
            if not free:
                free = tuple(range(spec.n_cores))
            occ = [0.0] * spec.n_cores
            spans: list[tuple[int, ...]] = []
            for a in apps:
                cores = a.pinning if a.pinning is not None else free
                spans.append(cores)
                load = a.effective_threads() / len(cores)
                for c in cores:
                    occ[c] += load
            for i in range(n):
                per_core = sum(occ[c] for c in spans[i]) / len(spans[i])
                if per_core > 1.0:
                    if spec.hyperthreading:
                        smt_scales[i] = (
                            1.0 + (per_core - 1.0) * SMT_MARGINAL_THROUGHPUT
                        ) / per_core
                    else:
                        # A non-SMT core time-slices fairly: pure division.
                        smt_scales[i] = 1.0 / per_core
        elif spec.hyperthreading:
            live_threads = sum(a.effective_threads() for a in apps)
            if live_threads > spec.n_cores:
                per_core = live_threads / spec.n_cores
                smt_scales = [
                    (1.0 + (per_core - 1.0) * SMT_MARGINAL_THROUGHPUT) / per_core
                ] * n
        # Per-app CAT way masks: when any app carries a bitmap the LLC
        # targets come from the masked allocator; the no-mask path below
        # is kept verbatim so unpartitioned runs stay bit-identical.
        has_masks = any(a.llc_ways is not None for a in apps)
        mask_caps: list[float] = []
        if has_masks:
            full = (1 << spec.llc_ways) - 1
            mask_caps = [
                bin(a.llc_ways if a.llc_ways is not None else full).count("1")
                * spec.llc_way_bytes
                for a in apps
            ]
        sols: list[_PhaseSolution] = []
        for _ in range(_MAX_ITER):
            from repro.machine.memory import queueing_latency_multiplier

            qmult = (
                queueing_latency_multiplier(rho, spec.memory)
                if cfg.use_queueing
                else 1.0
            )
            miss_ratios: list[float] = []
            stalls_lat: list[float] = []
            bpis: list[float] = []
            cpis: list[float] = []
            rates: list[float] = []
            demands: list[float] = []
            syncs: list[float] = []
            for i, app in enumerate(apps):
                r = app.region
                if cfg.llc_policy == "static":
                    cap_i = mask_caps[i] if has_masks else llc_cap
                    m = r.mrc.miss_ratio(min(r.footprint_bytes, cap_i))
                else:
                    m = r.mrc.miss_ratio(alloc[i])
                cov = r.regularity * PREFETCH_COVERAGE if cfg.prefetchers_on else 0.0
                mem_lat = idle_lat * qmult
                l_eff = llc_lat + m * (1.0 - PREFETCH_HIDE * cov) * mem_lat
                mlp = r.mlp if cfg.use_mlp else 1.0
                stall_lat = (r.l2_mpki / 1000.0) * l_eff / mlp
                overfetch = PREFETCH_OVERFETCH * cov if cfg.prefetch_bandwidth_tax else 0.0
                bpi = (r.l2_mpki / 1000.0) * CACHE_LINE * m * (
                    1.0 + r.write_fraction + overfetch
                )
                sync = self.profile_sync(app)
                cpi = 1.0 / (r.ipc_core * smt_scales[i]) + sync + stall_lat
                t_eff = app.effective_threads()
                rate = freq / cpi
                miss_ratios.append(m)
                stalls_lat.append(stall_lat)
                bpis.append(bpi)
                cpis.append(cpi)
                syncs.append(sync)
                rates.append(rate)
                demands.append(bpi * rate * t_eff)

            bus = resolve_bus(
                demands,
                spec.memory,
                bw_efficiencies=[a.region.bw_efficiency for a in apps],
                regularities=[a.region.regularity for a in apps],
            )
            new_sols: list[_PhaseSolution] = []
            for i, app in enumerate(apps):
                r = app.region
                t_eff = app.effective_threads()
                stall = stalls_lat[i]
                core_cpi = 1.0 / (r.ipc_core * smt_scales[i])
                cpi = core_cpi + syncs[i] + stall
                rate = freq / cpi
                if bpis[i] > 0:
                    # Roofline: execution cannot outrun the bandwidth
                    # this pattern can extract — its own efficiency cap,
                    # and its fair share when the bus saturates.
                    cap = r.bw_efficiency * spec.memory.peak_bandwidth_bytes
                    if bus.saturated and bus.achieved[i] > 0:
                        cap = min(cap, bus.achieved[i])
                    rate_bw = cap / (bpis[i] * t_eff)
                    if rate_bw < rate:
                        rate = rate_bw
                        cpi = freq / rate
                        stall = cpi - core_cpi - syncs[i]
                new_sols.append(
                    _PhaseSolution(
                        cpi=cpi,
                        sync_cpi=syncs[i],
                        stall_cpi=stall,
                        rate_per_thread=rate,
                        bytes_per_s=bpis[i] * rate * t_eff,
                        llc_miss_ratio=miss_ratios[i],
                        llc_alloc_bytes=alloc[i],
                    )
                )

            # LLC reallocation from insertion pressures (or, with CAT
            # way masks present, the masked allocator: the global policy
            # is its all-ways degenerate case).
            if has_masks or cfg.llc_policy == "pressure":
                pressures = [
                    (
                        (a.region.l2_mpki / 1000.0)
                        * new_sols[i].llc_miss_ratio
                        * new_sols[i].rate_per_thread
                        * a.effective_threads()
                    )
                    ** LLC_PRESSURE_EXP
                    for i, a in enumerate(apps)
                ]
                footprints = [a.region.footprint_bytes for a in apps]
            if has_masks:
                target_alloc = allocate_llc_ways(
                    llc_cap,
                    spec.llc_ways,
                    [a.llc_ways for a in apps],
                    pressures,
                    footprints,
                    cfg.llc_policy,
                )
            elif cfg.llc_policy == "pressure":
                target_alloc = allocate_llc(llc_cap, pressures, footprints)
            elif cfg.llc_policy == "even":
                target_alloc = [
                    min(a.region.footprint_bytes, llc_cap / n) for a in apps
                ]
            else:  # static
                target_alloc = [
                    min(a.region.footprint_bytes, llc_cap) for a in apps
                ]

            total_achieved = sum(
                min(d, a) for d, a in zip(bus.demands, bus.achieved)
            )
            rho_new = (
                min(total_achieved / bus.effective_peak, 1.0)
                if bus.effective_peak > 0
                else 0.0
            )

            delta = abs(rho_new - rho)
            for i in range(n):
                if alloc[i] > 0:
                    delta = max(delta, abs(target_alloc[i] - alloc[i]) / llc_cap)
            rho = (1 - _DAMP) * rho + _DAMP * rho_new
            alloc = [
                (1 - _DAMP) * a + _DAMP * t for a, t in zip(alloc, target_alloc)
            ]
            sols = new_sols
            if delta < _TOL:
                break
        return sols, alloc, rho

    @staticmethod
    def profile_sync(app: _LiveApp) -> float:
        """Synchronization CPI of one app at its thread count (serial
        phases do not synchronize)."""
        if app.region.serial:
            return 0.0
        return app.profile.scaling.sync_cpi(app.threads)

    # -- time stepping -----------------------------------------------------

    def _advance(
        self,
        apps: list[_LiveApp],
        sols: list[_PhaseSolution],
        now: float,
        timeline: list[BandwidthSample],
        max_dt: float,
    ) -> float:
        # Step ends at the earliest phase boundary (or max_dt).
        dt = max_dt
        for app, sol in zip(apps, sols):
            if app.finished:
                continue
            t_eff = app.effective_threads()
            remaining = app.region_instr() - app.instr_done_in_region
            speed = sol.rate_per_thread * t_eff
            if speed <= 0:
                raise EngineError(f"{app.profile.name}: zero execution rate")
            dt = min(dt, max(remaining / speed, 1e-9))

        for app, sol in zip(apps, sols):
            if app.finished:
                continue
            t_eff = app.effective_threads()
            instr = sol.rate_per_thread * t_eff * dt
            r = app.region
            rm = app.metrics.region(r.region.name)
            rm.instructions += instr
            rm.cycles += instr * (sol.cpi - sol.sync_cpi)
            rm.pending_cycles += instr * sol.stall_cpi
            rm.l2_misses += instr * r.l2_mpki / 1000.0
            rm.llc_misses += instr * r.l2_mpki / 1000.0 * sol.llc_miss_ratio
            rm.bus_bytes += sol.bytes_per_s * dt
            # Synchronization cycles attributed to the sync region.
            if sol.sync_cpi > 0:
                sync_name = app.profile.sync_region_name or r.region.name
                app.metrics.region(sync_name).cycles += instr * sol.sync_cpi
                if app.profile.sync_region_name:
                    app.metrics.region(sync_name).instructions += 0.0
            app.total_instructions += instr
            app.instr_done_in_region += instr
            if app.instr_done_in_region >= app.region_instr() - 1e-6:
                app.instr_done_in_region = 0.0
                app.region_i += 1
                if app.region_i >= len(app.profile.regions):
                    app.region_i = 0
                    app.runs_completed += 1
                    if not app.looping:
                        app.finished = True

        timeline.append(
            BandwidthSample(
                time_s=now + dt,
                bytes_per_s={
                    app.metrics.name: sol.bytes_per_s
                    for app, sol in zip(apps, sols)
                    if not app.finished or True
                },
            )
        )
        return dt

    def _simulate(
        self,
        apps: list[_LiveApp],
        *,
        stop_when: int,
        max_dt: float,
    ) -> list[BandwidthSample]:
        """Run until app[stop_when] finishes; returns the timeline."""
        timeline: list[BandwidthSample] = []
        now = 0.0
        alloc: list[float] | None = None
        rho = 0.2
        for _ in range(_MAX_STEPS):
            if apps[stop_when].finished:
                break
            sols, alloc, rho = self._solve(apps, alloc, rho)
            now += self._advance(apps, sols, now, timeline, max_dt)
        else:
            raise EngineError("step budget exhausted; check profile scales")
        for app in apps:
            app.metrics.runtime_s = now
        return timeline

    # -- public API ----------------------------------------------------------

    def solo_run(
        self,
        profile: WorkloadProfile,
        *,
        threads: int = 4,
        max_dt: float = 5.0,
    ) -> SoloRunResult:
        """Run one application alone on the machine."""
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("engine.solo_run", app=profile.name, threads=threads):
                return self._solo_run(profile, threads=threads, max_dt=max_dt)
        return self._solo_run(profile, threads=threads, max_dt=max_dt)

    def _solo_run(
        self,
        profile: WorkloadProfile,
        *,
        threads: int = 4,
        max_dt: float = 5.0,
    ) -> SoloRunResult:
        if threads < 1 or threads > self.spec.n_slots:
            raise EngineError(f"threads must be in [1, {self.spec.n_slots}]")
        app = _LiveApp(
            profile=profile,
            threads=threads,
            looping=False,
            metrics=AppMetrics(name=profile.name, threads=threads),
        )
        timeline = self._simulate([app], stop_when=0, max_dt=max_dt)
        return SoloRunResult(metrics=app.metrics, timeline=timeline)

    def _check_way_masks(
        self,
        profiles: "list[WorkloadProfile] | tuple[WorkloadProfile, ...]",
        llc_ways: "list[int | None] | tuple[int | None, ...] | None",
    ) -> "list[int | None]":
        """Validate per-app CAT bitmaps against the spec's way count."""
        if llc_ways is None:
            return [None] * len(profiles)
        if len(llc_ways) != len(profiles):
            raise EngineError(
                f"{len(profiles)} profiles but {len(llc_ways)} way masks"
            )
        limit = 1 << self.spec.llc_ways
        for prof, mask in zip(profiles, llc_ways):
            if mask is None:
                continue
            if not isinstance(mask, int) or mask <= 0:
                raise EngineError(
                    f"{prof.name}: way mask must be a positive bitmap, got {mask!r}"
                )
            if mask >= limit:
                raise EngineError(
                    f"{prof.name}: way mask {mask:#x} exceeds the LLC's "
                    f"{self.spec.llc_ways} ways (max {limit - 1:#x})"
                )
        return list(llc_ways)

    def _check_pinnings(
        self,
        profiles: "list[WorkloadProfile] | tuple[WorkloadProfile, ...]",
        threads: "list[int] | tuple[int, ...]",
        pinnings: "list[tuple[int, ...] | None] | None",
    ) -> "list[tuple[int, ...] | None]":
        """Validate per-app core pinnings: known cores, no duplicates,
        and enough hardware-thread slots on the pinned cores — both per
        app and per core once every placement's load lands."""
        if pinnings is None:
            return [None] * len(profiles)
        if len(pinnings) != len(profiles):
            raise EngineError(
                f"{len(profiles)} profiles but {len(pinnings)} pinnings"
            )
        spec = self.spec
        out: list[tuple[int, ...] | None] = []
        occ = [0.0] * spec.n_cores
        for prof, t, pin in zip(profiles, threads, pinnings):
            if pin is None:
                out.append(None)
                continue
            cores = tuple(pin)
            if not cores:
                raise EngineError(f"{prof.name}: empty pinning")
            if len(set(cores)) != len(cores):
                raise EngineError(f"{prof.name}: duplicate cores in pinning {cores}")
            for c in cores:
                if not isinstance(c, int) or not 0 <= c < spec.n_cores:
                    raise EngineError(
                        f"{prof.name}: core {c!r} outside [0, {spec.n_cores})"
                    )
            if t > len(cores) * spec.slots_per_core:
                raise EngineError(
                    f"{prof.name}: {t} threads exceed the "
                    f"{len(cores) * spec.slots_per_core} slot(s) of cores {cores}"
                )
            for c in cores:
                occ[c] += t / len(cores)
            out.append(cores)
        overloaded = [c for c, load in enumerate(occ) if load > spec.slots_per_core + 1e-9]
        if overloaded:
            raise EngineError(
                f"pinnings oversubscribe core(s) {overloaded}: more pinned "
                f"threads than {spec.slots_per_core} slot(s) per core"
            )
        return out

    def scenario_run(
        self,
        profiles: "list[WorkloadProfile] | tuple[WorkloadProfile, ...]",
        threads: "list[int] | tuple[int, ...]",
        *,
        fg_solo_runtime_s: float | None = None,
        bg_solo_rates: "list[float] | tuple[float, ...] | None" = None,
        llc_ways: "list[int | None] | tuple[int | None, ...] | None" = None,
        pinnings: "list[tuple[int, ...] | None] | None" = None,
        max_dt: float = 5.0,
    ) -> ScenarioRunResult:
        """The N-way measurement primitive: consolidate ``profiles[0]``
        (the measured foreground) with any number of backgrounds.

        Every background loops for as long as the foreground runs (the
        paper's pair protocol generalized to N live applications).
        Solo references are computed on demand; pass them in when
        sweeping many scenarios to avoid recomputation.  ``co_run`` is
        a thin 2-app wrapper over this, so pair scenarios are
        bit-identical to the historical pair API.

        ``llc_ways`` gives each app a CAT way-mask bitmap (``None`` =
        all ways); ``pinnings`` pins each app's threads to explicit
        physical cores; pinned cores are *reserved*, and ``None``
        placements schedule onto the remaining ones.  Both lists
        align with ``profiles`` and are validated against the machine
        spec; omitting them keeps the unpartitioned model bit-identical.
        """
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "engine.scenario_run",
                apps="+".join(
                    f"{p.name}:{t}" for p, t in zip(profiles, threads)
                ),
                n=len(profiles),
            ):
                return self._scenario_run(
                    profiles,
                    threads,
                    fg_solo_runtime_s=fg_solo_runtime_s,
                    bg_solo_rates=bg_solo_rates,
                    llc_ways=llc_ways,
                    pinnings=pinnings,
                    max_dt=max_dt,
                )
        return self._scenario_run(
            profiles,
            threads,
            fg_solo_runtime_s=fg_solo_runtime_s,
            bg_solo_rates=bg_solo_rates,
            llc_ways=llc_ways,
            pinnings=pinnings,
            max_dt=max_dt,
        )

    def _scenario_run(
        self,
        profiles: "list[WorkloadProfile] | tuple[WorkloadProfile, ...]",
        threads: "list[int] | tuple[int, ...]",
        *,
        fg_solo_runtime_s: float | None = None,
        bg_solo_rates: "list[float] | tuple[float, ...] | None" = None,
        llc_ways: "list[int | None] | tuple[int | None, ...] | None" = None,
        pinnings: "list[tuple[int, ...] | None] | None" = None,
        max_dt: float = 5.0,
    ) -> ScenarioRunResult:
        if not profiles:
            raise EngineError("a scenario needs at least one application")
        if len(threads) != len(profiles):
            raise EngineError(
                f"{len(profiles)} profiles but {len(threads)} thread counts"
            )
        if any(t < 1 for t in threads):
            raise EngineError("every app needs at least one thread")
        if sum(threads) > self.spec.n_slots:
            raise EngineError(
                f"{'+'.join(str(t) for t in threads)} threads exceed "
                f"{self.spec.n_slots} hardware threads"
            )
        llc_ways = self._check_way_masks(profiles, llc_ways)
        pinnings = self._check_pinnings(profiles, threads, pinnings)
        if fg_solo_runtime_s is None:
            fg_solo_runtime_s = self.solo_run(
                profiles[0], threads=threads[0]
            ).runtime_s
        if bg_solo_rates is None:
            rates = []
            for prof, t in zip(profiles[1:], threads[1:]):
                solo = self.solo_run(prof, threads=t)
                rates.append(solo.metrics.total.instructions / solo.runtime_s)
            bg_solo_rates = rates
        if len(bg_solo_rates) != len(profiles) - 1:
            raise EngineError(
                f"{len(profiles) - 1} backgrounds but "
                f"{len(bg_solo_rates)} solo rates"
            )

        apps = [
            _LiveApp(
                profile=prof,
                threads=t,
                looping=i > 0,
                metrics=AppMetrics(name=prof.name, threads=t),
                llc_ways=llc_ways[i],
                pinning=pinnings[i],
            )
            for i, (prof, t) in enumerate(zip(profiles, threads))
        ]
        timeline = self._simulate(apps, stop_when=0, max_dt=max_dt)
        fg_runtime = apps[0].metrics.runtime_s
        relative_rates = []
        for app, solo_rate in zip(apps[1:], bg_solo_rates):
            rate = app.total_instructions / fg_runtime if fg_runtime > 0 else 0.0
            relative_rates.append(rate / solo_rate if solo_rate > 0 else 0.0)
        return ScenarioRunResult(
            apps=[a.metrics for a in apps],
            fg_solo_runtime_s=fg_solo_runtime_s,
            bg_relative_rates=relative_rates,
            timeline=timeline,
        )

    def solve_batch(self, cells) -> "list[ScenarioRunResult]":
        """Solve many scenarios at once (see :mod:`repro.engine.batch`):
        one numpy fixed point advances every cell simultaneously, with
        results bit-identical to per-cell :meth:`scenario_run` calls."""
        from repro.engine.batch import solve_batch

        return solve_batch(self, cells)

    def co_run(
        self,
        fg: WorkloadProfile,
        bg: WorkloadProfile,
        *,
        threads: int = 4,
        bg_threads: int | None = None,
        fg_solo_runtime_s: float | None = None,
        bg_solo_rate: float | None = None,
        max_dt: float = 5.0,
    ) -> CoRunResult:
        """Consolidate fg and bg (the paper's protocol): bg loops for as
        long as fg runs; fg's time is measured.

        ``bg_threads`` defaults to ``threads`` (the paper's symmetric
        4+4 split); asymmetric splits model core-allocation policies.
        A thin 2-app wrapper over :meth:`scenario_run` — the one code
        path guarantees pair results equal 2-app scenario results.
        """
        bg_threads = bg_threads if bg_threads is not None else threads
        if threads < 1 or bg_threads < 1:
            raise EngineError("both apps need at least one thread")
        return self.scenario_run(
            [fg, bg],
            [threads, bg_threads],
            fg_solo_runtime_s=fg_solo_runtime_s,
            bg_solo_rates=None if bg_solo_rate is None else [bg_solo_rate],
            max_dt=max_dt,
        ).to_corun()

    def speedup_curve(
        self, profile: WorkloadProfile, *, max_threads: int = 8
    ) -> dict[int, float]:
        """Fig 2: speedup vs thread count, normalized to one thread."""
        t1 = self.solo_run(profile, threads=1).runtime_s
        return {
            t: t1 / self.solo_run(profile, threads=t).runtime_s
            for t in range(1, max_threads + 1)
        }
