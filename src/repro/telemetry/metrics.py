"""The metrics registry: counters, gauges, histograms, one snapshot.

Before this module, the pipeline's operational numbers lived in four
unrelated shapes: :class:`~repro.session.session.CacheStats` dataclass
counters, the store's disk-hit fields inside provenance ``cache``
dicts, campaign worker progress dicts, and the scheduler's
:class:`~repro.sched.scheduler.ReplayReport` aggregates.  The
:class:`MetricsRegistry` unifies them behind one mutation API
(``counter/gauge/histogram``) and one read API (:meth:`snapshot`):

* **counters** — monotonically increasing event counts
  (``cache.solo_disk_hits``, ``campaign.artifacts_done``);
* **gauges** — last-written values (``sched.interference.p95_slowdown``);
* **histograms** — streaming count/sum/min/max aggregates of observed
  values, never the raw samples (``span.engine.scenario_run`` records
  every span duration).

The registry is in-process state; the active
:class:`~repro.telemetry.tracer.Tracer` persists its snapshot as a
``{"kind": "metrics"}`` line in the telemetry sink (one cumulative
snapshot per flush, last-per-pid wins on read), which is how
``repro trace summary`` aggregates metrics across campaign workers.

Thread safety: all mutations take the registry lock, so thread-pool
executors sharing one tracer cannot tear a histogram update.  Process
safety comes from the sink layout (one segment per pid), not from this
module.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_snapshots"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming aggregate of observed values (no raw samples kept)."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with one :meth:`snapshot`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def merge_counts(self, prefix: str, counts: Mapping[str, Any]) -> None:
        """Fold a plain counter dict (e.g. a ``CacheStats`` snapshot or
        a provenance ``cache`` delta) into prefixed counters; non-int
        and negative values are ignored rather than corrupting totals."""
        for key, value in counts.items():
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                continue
            self.counter(f"{prefix}.{key}" if prefix else key).inc(value)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready view of everything recorded so far."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.snapshot() for k, h in sorted(self._histograms.items())
                },
            }


def merge_snapshots(snapshots: "list[dict[str, Any]]") -> dict[str, Any]:
    """Combine per-process metric snapshots (``repro trace summary``
    over a campaign: one snapshot per worker pid).  Counters and
    histogram aggregates sum; gauges keep the last value seen."""
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        for k, v in (snap.get("counters") or {}).items():
            counters[k] = counters.get(k, 0) + int(v)
        for k, v in (snap.get("gauges") or {}).items():
            gauges[k] = float(v)
        for k, h in (snap.get("histograms") or {}).items():
            agg = histograms.setdefault(
                k, {"count": 0, "sum": 0.0, "min": float("inf"), "max": float("-inf")}
            )
            if not h.get("count"):
                continue
            agg["count"] += int(h["count"])
            agg["sum"] += float(h["sum"])
            agg["min"] = min(agg["min"], float(h["min"]))
            agg["max"] = max(agg["max"], float(h["max"]))
    for k, agg in histograms.items():
        if agg["count"]:
            agg["mean"] = agg["sum"] / agg["count"]
        else:
            agg.update(min=0.0, max=0.0, mean=0.0)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
