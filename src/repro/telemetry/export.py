"""Readers and exporters over a telemetry directory.

The sink side (:mod:`repro.telemetry.tracer`) writes one JSONL segment
per process; this module is the read side:

* :func:`read_events` / :func:`read_spans` — merge every segment,
  skipping torn tail lines and foreign schemas (same durability rules
  as the store index);
* :func:`metrics_snapshot` — the campaign-wide metrics view: the last
  cumulative snapshot of each pid, summed across pids;
* :func:`chrome_trace` — Chrome trace-event JSON (the ``traceEvents``
  array format).  Load the file in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``: one **lane per process pid** (campaign
  workers, pool workers, the driver), complete ``"X"`` events whose
  nesting reconstructs the span stack, tags preserved as ``args``;
* :func:`summarize` / :func:`render_summary` / :func:`summary_rows` —
  the flat per-span-name accounting behind ``repro trace summary``:
  count, total/mean/max duration, share of wall-clock, plus the
  **coverage** figure (fraction of the trace's wall time during which
  at least one named span was open — how much of the run telemetry can
  actually explain).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.telemetry.metrics import merge_snapshots
from repro.telemetry.tracer import SCHEMA_VERSION

__all__ = [
    "chrome_trace",
    "metrics_snapshot",
    "read_events",
    "read_spans",
    "render_summary",
    "summarize",
    "summary_rows",
]


def read_events(root: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    """Every well-formed event line across all segments, by start time.

    Missing directory means "no telemetry yet" (empty list, not an
    error); unparseable lines (a worker killed mid-append) and lines
    with a different schema are skipped, exactly like the store index.
    """
    base = Path(root)
    events: list[dict[str, Any]] = []
    if not base.is_dir():
        return events
    for path in sorted(base.glob("*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue  # segment vanished mid-read
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn tail line
            if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
                continue
            events.append(data)
    events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
    return events


def read_spans(root: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    """Just the span events, by start time."""
    return [e for e in read_events(root) if e.get("kind") == "span"]


def metrics_snapshot(root: "str | os.PathLike[str]") -> dict[str, Any]:
    """Campaign-wide metrics: each pid's *last* cumulative snapshot
    (flushes are cumulative, so earlier ones are subsets), merged
    across pids (counters/histograms sum, gauges last-wins)."""
    last_per_pid: dict[int, dict[str, Any]] = {}
    for event in read_events(root):
        if event.get("kind") == "metrics":
            last_per_pid[int(event.get("pid", 0))] = event.get("data") or {}
    return merge_snapshots([last_per_pid[pid] for pid in sorted(last_per_pid)])


def _category(name: str) -> str:
    """Trace-event category = the span name's subsystem prefix."""
    return name.split(".", 1)[0] if "." in name else name


def chrome_trace(spans: "list[dict[str, Any]]") -> dict[str, Any]:
    """Spans as Chrome trace-event JSON (one lane per pid).

    Timestamps are microseconds relative to the earliest span, so the
    viewer's timeline starts at zero whatever the wall clock said.
    """
    base = min((s.get("ts", 0.0) for s in spans), default=0.0)
    events: list[dict[str, Any]] = []
    pids: dict[int, None] = {}
    for s in spans:
        pid = int(s.get("pid", 0))
        pids.setdefault(pid, None)
        events.append(
            {
                "name": s.get("name", "?"),
                "cat": _category(s.get("name", "?")),
                "ph": "X",
                "ts": (s.get("ts", 0.0) - base) * 1e6,
                "dur": s.get("dur_s", 0.0) * 1e6,
                "pid": pid,
                "tid": int(s.get("tid", 0)),
                "args": dict(s.get("tags") or {}),
            }
        )
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"repro worker {pid}"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro-interference", "schema": SCHEMA_VERSION},
    }


def _union_seconds(intervals: "list[tuple[float, float]]") -> float:
    """Total length of the union of ``[start, end)`` intervals."""
    total = 0.0
    end_seen = float("-inf")
    for start, end in sorted(intervals):
        if end <= end_seen:
            continue
        total += end - max(start, end_seen)
        end_seen = end
    return total


def summarize(spans: "list[dict[str, Any]]") -> dict[str, Any]:
    """Per-span-name aggregates plus whole-trace accounting.

    ``wall_s`` is last span end minus first span start (across every
    process); ``covered_s`` is the union of all span intervals on that
    same timeline, and ``coverage`` their ratio — the fraction of the
    run's wall time attributed to *some* named span.  Per-name
    ``share_of_wall`` can sum past 1.0 (spans nest and lanes overlap);
    it answers "how hot is this name", not "where did the wall go".
    """
    names: dict[str, dict[str, Any]] = {}
    intervals: list[tuple[float, float]] = []
    t_min, t_max = float("inf"), float("-inf")
    for s in spans:
        name = s.get("name", "?")
        dur = float(s.get("dur_s", 0.0))
        ts = float(s.get("ts", 0.0))
        agg = names.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0}
        )
        agg["count"] += 1
        agg["total_s"] += dur
        if dur > agg["max_s"]:
            agg["max_s"] = dur
        if s.get("status") != "ok":
            agg["errors"] += 1
        intervals.append((ts, ts + dur))
        t_min = min(t_min, ts)
        t_max = max(t_max, ts + dur)
    wall_s = (t_max - t_min) if spans else 0.0
    covered_s = _union_seconds(intervals)
    for agg in names.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
        agg["share_of_wall"] = agg["total_s"] / wall_s if wall_s > 0 else 0.0
    return {
        "spans": len(spans),
        "pids": sorted({int(s.get("pid", 0)) for s in spans}),
        "wall_s": wall_s,
        "covered_s": covered_s,
        "coverage": covered_s / wall_s if wall_s > 0 else 0.0,
        "names": dict(
            sorted(names.items(), key=lambda kv: -kv[1]["total_s"])
        ),
    }


def summary_rows(summary: dict[str, Any]) -> list[list[str]]:
    """CSV-ready rows (header first) of the per-name aggregates."""
    rows = [["name", "count", "total_s", "mean_s", "max_s", "share_of_wall", "errors"]]
    for name, agg in summary["names"].items():
        rows.append(
            [
                name,
                str(agg["count"]),
                f"{agg['total_s']:.6f}",
                f"{agg['mean_s']:.6f}",
                f"{agg['max_s']:.6f}",
                f"{agg['share_of_wall']:.4f}",
                str(agg["errors"]),
            ]
        )
    return rows


def render_summary(summary: dict[str, Any]) -> str:
    """Human-readable ``repro trace summary`` output."""
    from repro.core.report import ascii_table

    rows = [
        [
            name,
            agg["count"],
            f"{agg['total_s'] * 1e3:.1f}",
            f"{agg['mean_s'] * 1e3:.2f}",
            f"{agg['max_s'] * 1e3:.2f}",
            f"{agg['share_of_wall'] * 100:.1f}%",
            agg["errors"] or "",
        ]
        for name, agg in summary["names"].items()
    ]
    table = ascii_table(
        ["span", "count", "total ms", "mean ms", "max ms", "of wall", "err"],
        rows,
        title=(
            f"{summary['spans']} span(s) across {len(summary['pids'])} "
            f"process(es)"
        ),
    )
    return table + (
        f"wall {summary['wall_s']:.3f}s, covered {summary['covered_s']:.3f}s "
        f"({summary['coverage'] * 100:.1f}% of wall attributed to named spans)\n"
    )
