"""repro.telemetry — spans, metrics, and trace export for the pipeline.

(Named ``telemetry`` — not ``trace`` — because :mod:`repro.trace` is
the reuse-distance *memory-access* trace package; this one is about
observing the pipeline itself.)

The paper's whole method is measuring interference, but until this
package the reproduction pipeline was a black box: no way to see where
a 97-cell scheduler replay spends its time, which cache tier answered
which scenario cell, or how campaign workers interleave.  Three pieces
fix that:

* :class:`~repro.telemetry.tracer.Tracer` — ``span("engine.solve",
  tags=...)`` context managers recording monotonic durations +
  wall-clock starts into a **process-safe JSONL sink**
  (``<store>/telemetry/<pid>-<token>.jsonl``, one segment per process,
  the store-index segment pattern).  Disabled (the default) it is the
  do-nothing :data:`~repro.telemetry.tracer.NULL_TRACER` — zero files,
  zero behavior change;
* :class:`~repro.telemetry.metrics.MetricsRegistry` —
  counters/gauges/histograms with one ``snapshot()``, unifying the
  session's ``CacheStats``, store disk-hit counters, campaign worker
  progress and scheduler replay aggregates;
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON (load it in
  Perfetto: one lane per worker pid) and flat per-span summaries,
  surfaced as ``repro trace show|export|summary --store DIR``.

Instrumented out of the box: ``engine.solo_run`` /
``engine.scenario_run``, ``session.run`` / ``session.run_scenario``
(tagged with the cache tier that answered: memory, disk or engine),
``store.append``, the campaign worker lifecycle (phase-tagged
PREPARING → RUNNING → MERGED) and ``sched.decide`` / ``sched.replay``.

Enable with CLI ``--telemetry`` (sink in ``<store>/telemetry``),
programmatically via :func:`enable`, or by exporting
``REPRO_TELEMETRY=<dir>`` — the env var is how campaign and pool
worker processes inherit tracing, each writing its own lane.

Determinism: tracing on vs off changes **nothing** inside the store —
records, manifests, cache entries and scheduler decision logs stay
byte-identical (timestamps live only in the out-of-band sink); the
test suite and CI ``store diff`` that invariant.
"""

from repro.telemetry.export import (
    chrome_trace,
    metrics_snapshot,
    read_events,
    read_spans,
    render_summary,
    summarize,
    summary_rows,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.tracer import (
    ENV_VAR,
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    span,
)

__all__ = [
    "ENV_VAR",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "disable",
    "enable",
    "get_tracer",
    "merge_snapshots",
    "metrics_snapshot",
    "read_events",
    "read_spans",
    "render_summary",
    "span",
    "summarize",
    "summary_rows",
]
