"""Span tracer with a process-safe JSONL sink.

One :class:`Tracer` per process writes **its own** segment file under
the telemetry root (``<store>/telemetry/<pid>-<token>.jsonl`` — the
same never-share-a-file pattern as the store's index segments), so any
number of campaign workers, pool workers and the driver can trace into
one store concurrently without a lock between processes.  Each line is
one event::

    {"kind": "span", "schema": 1, "name": "engine.scenario_run",
     "ts": <epoch-seconds at start>, "dur_s": <monotonic duration>,
     "pid": 1234, "tid": 140.., "status": "ok", "tags": {...}}
    {"kind": "metrics", "schema": 1, "ts": ..., "pid": 1234,
     "data": {"counters": ..., "gauges": ..., "histograms": ...}}

Durations come from ``time.perf_counter()`` (monotonic — a wall-clock
step cannot produce negative spans); ``ts`` is wall-clock only so the
exporters can align lanes from different processes on one timeline.

**Determinism contract**: telemetry is strictly out-of-band.  Nothing
here ever feeds back into results, cache keys, records, manifests or
decision logs — with tracing on, every simulated number is
byte-identical to the untraced run; only the side files under
``telemetry/`` differ (they hold all the timestamps).

**Disabled means free**: the module-level tracer defaults to
:data:`NULL_TRACER`, whose ``enabled`` is ``False``; instrumented call
sites check that one attribute and skip even building their tag dicts,
so an untraced run does no extra work and opens no files.

Activation is process-inheritable: :func:`enable` exports
``REPRO_TELEMETRY=<dir>`` so forked/spawned workers (campaign
processes, scenario pool workers) construct their own tracer into the
same directory on first use — which is exactly what gives the Chrome
trace one lane per worker pid.  A tracer that leaks across a ``fork``
(module globals are copied) re-homes itself to a fresh segment the
first time the child writes, so two processes never append to one
file.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
import weakref
from pathlib import Path
from typing import Any, IO

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "ENV_VAR",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "get_tracer",
    "span",
]

#: Version of the event-line schema; bumped on incompatible change.
SCHEMA_VERSION = 1

#: Environment variable carrying the telemetry root into child
#: processes; set by :func:`enable`, honoured by :func:`get_tracer`.
ENV_VAR = "REPRO_TELEMETRY"


class Span:
    """One timed operation; close it (or use it as a context manager)."""

    __slots__ = ("name", "tags", "ts", "pid", "tid", "dur_s", "_t0", "_tracer", "_done")

    def __init__(self, tracer: "Tracer", name: str, tags: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.ts = time.time()
        self.dur_s = 0.0
        self._t0 = time.perf_counter()
        self._done = False

    def tag(self, key: str, value: Any) -> "Span":
        """Attach/overwrite one tag (chainable); call before close."""
        self.tags[key] = value
        return self

    def close(self, status: str = "ok") -> None:
        if self._done:  # idempotent: context-manager exit after close()
            return
        self._done = True
        self.dur_s = time.perf_counter() - self._t0
        self._tracer._finish(self, status)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close("error" if exc_type is not None else "ok")


class _NullSpan:
    """The do-nothing span the null tracer hands out (one shared
    instance; ``tag`` discards, enter/exit are no-ops)."""

    __slots__ = ()

    def tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def close(self, status: str = "ok") -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Absent telemetry: every operation is a no-op.

    ``enabled`` is the one attribute hot paths read — when ``False``
    they skip tag construction entirely, so this class's methods only
    run for call sites that did not bother guarding (which is also
    fine: they cost a method call and nothing else).
    """

    enabled = False

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def merge_counters(self, prefix: str, counts: Any) -> None:
        pass

    def subscribe(self, fn: Any) -> Any:
        return fn

    def unsubscribe(self, fn: Any) -> None:
        pass

    def flush(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Writes spans + metric snapshots to a private JSONL segment."""

    enabled = True

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._fh: IO[str] | None = None
        self._segment: Path | None = None
        self._segment_pid: int | None = None
        #: Live-stream observers (see :meth:`subscribe`).
        self._subscribers: list = []
        # Flush the final metrics snapshot on clean interpreter exit —
        # pool/campaign workers end by process exit, not by an explicit
        # tracer shutdown.
        atexit.register(self._atexit_flush)
        # A fork child inherits this tracer (module globals are copied)
        # including the parent's accumulated metrics; without a reset its
        # final snapshot would re-report the parent's counts and the
        # cross-pid merge would double-count them.  Weakref so dead
        # tracers from enable/disable cycles don't pile up in the hook.
        if hasattr(os, "register_at_fork"):  # pragma: no branch
            ref = weakref.ref(self)
            os.register_at_fork(
                after_in_child=lambda: _reset_child_tracer(ref())
            )

    # -- sink ---------------------------------------------------------------

    def segment_path(self) -> Path:
        """This process's private segment (lazily created).

        Re-checked against the live pid on every use: a tracer copied
        into a child by ``fork`` abandons the parent's handle and opens
        its own segment, so no two processes ever share a file.
        """
        pid = os.getpid()
        if self._segment is None or self._segment_pid != pid:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover - parent fd already gone
                    pass
                self._fh = None
            token = os.urandom(4).hex()
            self._segment = self.root / f"{pid}-{token}.jsonl"
            self._segment_pid = pid
        return self._segment

    def _write_line(self, payload: dict[str, Any]) -> None:
        with self._lock:
            segment = self.segment_path()
            if self._fh is None:
                segment.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(segment, "a", encoding="utf-8")
            self._fh.write(json.dumps(payload, default=str) + "\n")
            self._fh.flush()
            subscribers = tuple(self._subscribers)
        # Notify outside the write lock: a slow observer must never
        # stall (or deadlock) the traced path, and an observer error
        # must never fail it — telemetry stays strictly out-of-band.
        for fn in subscribers:
            try:
                fn(payload)
            except Exception:  # pragma: no cover - observer bug, not ours
                pass

    # -- live streaming ------------------------------------------------------

    def subscribe(self, fn: Any) -> Any:
        """Register a callback invoked with every event payload (span
        or metrics line) *as it is written* — the hook the service
        tier's ``/events`` stream rides instead of tailing the sink.

        Called from whichever thread wrote the event; observers must be
        thread-safe and fast (hand off to a queue).  Returns ``fn`` so
        it can be used as a decorator; pair with :meth:`unsubscribe`.
        """
        with self._lock:
            self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Any) -> None:
        """Remove a subscriber (no-op when not registered)."""
        with self._lock:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a span; close it via context manager or ``close()``."""
        return Span(self, name, tags)

    def _finish(self, span: Span, status: str) -> None:
        self._write_line(
            {
                "kind": "span",
                "schema": SCHEMA_VERSION,
                "name": span.name,
                "ts": span.ts,
                "dur_s": span.dur_s,
                "pid": os.getpid(),
                "tid": span.tid,
                "status": status,
                "tags": span.tags,
            }
        )
        self.metrics.histogram(f"span.{span.name}").observe(span.dur_s)
        tier = span.tags.get("tier")
        if tier is not None:
            self.metrics.counter(f"tier.{tier}").inc()

    # -- metrics ------------------------------------------------------------

    def merge_counters(self, prefix: str, counts: Any) -> None:
        """Fold a plain counter dict into the registry (see
        :meth:`MetricsRegistry.merge_counts`)."""
        if counts:
            self.metrics.merge_counts(prefix, counts)

    def flush(self) -> None:
        """Persist the current cumulative metrics snapshot as one
        ``{"kind": "metrics"}`` line (readers keep the last per pid)."""
        self._write_line(
            {
                "kind": "metrics",
                "schema": SCHEMA_VERSION,
                "ts": time.time(),
                "pid": os.getpid(),
                "data": self.metrics.snapshot(),
            }
        )

    def _atexit_flush(self) -> None:
        # Only flush from the process that actually wrote spans — a
        # forked child that traced nothing should not create a segment
        # at interpreter exit just to store empty metrics.
        if self._fh is not None and self._segment_pid == os.getpid():
            try:
                self.flush()
            except OSError:  # pragma: no cover - sink dir removed at exit
                pass

    def _after_fork(self) -> None:
        """Start from scratch in a fork child: the parent owns the open
        segment handle and every metric recorded so far."""
        self._fh = None
        self._segment = None
        self._segment_pid = None
        self._lock = threading.Lock()
        self.metrics = MetricsRegistry()
        # Parent subscribers hold parent-side state (event loops,
        # queues); a fork child must not feed them.
        self._subscribers = []

    def close(self) -> None:
        """Flush metrics and release the segment handle.

        Unlike the atexit path this flushes even if no span was ever
        written — ``enable(); metrics work; disable()`` must not drop
        the snapshot on the floor.
        """
        snap = self.metrics.snapshot()
        recorded = any(snap[group] for group in ("counters", "gauges", "histograms"))
        if self._segment_pid in (None, os.getpid()) and (
            self._fh is not None or recorded
        ):
            self.flush()
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover
                    pass
                self._fh = None


def _reset_child_tracer(tracer: "Tracer | None") -> None:
    if tracer is not None:
        tracer._after_fork()


#: The process-wide tracer; ``None`` = not yet resolved against the
#: environment (first :func:`get_tracer` call decides).
_tracer: "Tracer | NullTracer | None" = None


def get_tracer() -> "Tracer | NullTracer":
    """The active tracer: the null tracer unless :func:`enable` ran in
    this process or ``REPRO_TELEMETRY`` is set (how forked/spawned
    workers inherit tracing)."""
    global _tracer
    if _tracer is None:
        root = os.environ.get(ENV_VAR)
        _tracer = Tracer(root) if root else NULL_TRACER
    return _tracer


def enable(root: "str | os.PathLike[str]") -> Tracer:
    """Turn tracing on for this process *and its children* (the root is
    exported as ``REPRO_TELEMETRY``).  Returns the live tracer."""
    global _tracer
    if isinstance(_tracer, Tracer):
        _tracer.close()
    tracer = Tracer(root)
    os.environ[ENV_VAR] = str(root)
    _tracer = tracer
    return tracer


def disable() -> None:
    """Flush and turn tracing off (children stop inheriting it too)."""
    global _tracer
    if isinstance(_tracer, Tracer):
        _tracer.close()
    os.environ.pop(ENV_VAR, None)
    _tracer = NULL_TRACER


def span(name: str, **tags: Any) -> "Span | _NullSpan":
    """Convenience: a span on the active tracer (hot paths should
    instead cache ``get_tracer()`` and guard on ``.enabled`` so tag
    construction is skipped when tracing is off)."""
    return get_tracer().span(name, **tags)
