"""The event-driven scheduler and its deterministic replay harness.

:class:`Scheduler` is the online decision loop: per arrival it asks
its :class:`~repro.sched.policy.PlacementPolicy` for a candidate
layout (scored through the :class:`~repro.sched.score.PlacementEvaluator`)
and applies the admitted layout to the cluster; departures evict and —
when a machine drops to one resident — deterministically clear its
partitions.  Every decision is appended to a serializable log.

:func:`replay_trace` runs an :class:`~repro.sched.trace.ArrivalTrace`
through one policy over a fresh cluster and *simulates time*: an
admitted tenant brings ``solo_s`` seconds of solo work, and under its
current layout that work drains at ``1 / slowdown`` of wall-time — so
a bad placement stretches residency, which holds slots longer, which
degrades later arrivals.  The loop advances to the next arrival,
explicit departure or projected completion (re-scoring layouts
whenever membership changes; the evaluator memo and the shared caches
make the steady intervals free) and accounts:

* per-tenant **achieved slowdown** (residency / solo work) and peak
  interval slowdown,
* **SLO violations** — a tenant whose interval slowdown ever reaches
  the threshold,
* **rejections**, and time-weighted machine **utilization**.

Everything derives from the trace and the session config; no clocks,
no ambient randomness.  The resulting :class:`ReplayReport` payload is
byte-identical across runs, processes and warm/cold stores — which is
what lets the ``sched-replay`` artifact live in the campaign manifest
like any figure.
"""

from __future__ import annotations

import json
import logging
import math
from dataclasses import dataclass, replace
from typing import Any

from repro.core.classify import VICTIM_THRESHOLD
from repro.core.report import ascii_table
from repro.errors import SchedError
from repro.sched.cluster import Cluster, Tenant
from repro.sched.policy import (
    Decision,
    PlacementPolicy,
    ReplanDecision,
    decision_from_payload,
    enumerate_candidates,
    enumerate_layouts,
    get_policy,
)
from repro.sched.score import PlacementEvaluator
from repro.sched.trace import ArrivalTrace
from repro.telemetry.tracer import get_tracer

logger = logging.getLogger(__name__)

#: Work-remaining epsilon: below this many solo-seconds a tenant is done.
_EPS = 1e-9


def percentile(values: "list[float]", q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 1]) — a pure-python
    match of the usual definition, 0.0 on an empty sample."""
    vs = sorted(values)
    if not vs:
        return 0.0
    pos = (len(vs) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(vs) - 1)
    frac = pos - lo
    return vs[lo] * (1.0 - frac) + vs[hi] * frac


class Scheduler:
    """Online decision loop over one cluster, one policy."""

    def __init__(
        self,
        cluster: Cluster,
        policy: PlacementPolicy,
        evaluator: PlacementEvaluator,
        *,
        slo: float = VICTIM_THRESHOLD,
        replan: bool = False,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.evaluator = evaluator
        self.slo = slo
        #: Re-plan the vacated machine on every departure (see
        #: :meth:`departure`); off by default so pre-existing replays
        #: keep their byte-identical decision logs.
        self.replan = replan
        #: Every decision made, in event order (admissions interleaved
        #: with any departure-triggered re-plans).
        self.decisions: list[Decision | ReplanDecision] = []

    def arrival(self, tenant: Tenant, *, time_s: float = 0.0) -> Decision:
        """Decide one arrival; admitted layouts are applied (residents
        re-partitioned, the tenant seated with its assigned mask/pins).

        Telemetry: one ``sched.decide`` span per arrival, tagged with
        the tenant, its workload and the admit/reject outcome.  The
        span only observes — the decision log stays byte-identical with
        tracing on or off.
        """
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "sched.decide",
                tenant=tenant.tenant,
                workload=tenant.workload,
                threads=tenant.threads,
            ) as sp:
                decision, candidate = self.policy.decide(
                    self.cluster, tenant, self.evaluator, slo=self.slo, time_s=time_s
                )
                sp.tag("admitted", decision.admitted)
                if decision.machine is not None:
                    sp.tag("machine", decision.machine)
        else:
            decision, candidate = self.policy.decide(
                self.cluster, tenant, self.evaluator, slo=self.slo, time_s=time_s
            )
        logger.debug(
            "decide %s (%s:%d): %s",
            tenant.tenant,
            tenant.workload,
            tenant.threads,
            "admit on %s" % decision.machine if decision.admitted else "reject",
        )
        if decision.admitted and candidate is not None:
            machine = self.cluster.machine(candidate.machine)
            machine.apply_layout(candidate.assignments())
            seat = candidate.arrival_placement
            machine.admit(
                replace(
                    tenant,
                    arrival_s=time_s,
                    llc_ways=seat.llc_ways,
                    pinning=seat.pinning,
                )
            )
        self.decisions.append(decision)
        return decision

    def departure(self, tenant_id: str, *, time_s: float = 0.0) -> Tenant:
        """Evict a resident tenant (explicit departure or completion).

        With :attr:`replan` on, the vacated machine is then re-planned
        incrementally: its residents are re-partitioned when a strictly
        cleaner layout exists, and the worst-off resident migrates to
        another machine when it is at/over the SLO there and a clean
        seat exists elsewhere.  Every action is logged as a
        :class:`ReplanDecision`; everything is scored through the same
        evaluator (and therefore the same warm store) as admissions.
        """
        machine = self.cluster.find(tenant_id)
        if machine is None:
            raise SchedError(f"departure of unknown tenant {tenant_id!r}")
        gone = machine.evict(tenant_id)
        if self.replan:
            tracer = get_tracer()
            if tracer.enabled:
                with tracer.span(
                    "sched.replan", machine=machine.name, trigger=tenant_id
                ) as sp:
                    n = len(self.decisions)
                    self._replan(machine, tenant_id, time_s=time_s)
                    sp.tag("actions", len(self.decisions) - n)
            else:
                self._replan(machine, tenant_id, time_s=time_s)
        return gone

    # -- departure re-planning ----------------------------------------------

    def _score(self, machine) -> tuple[float, ...]:
        return self.evaluator.slowdowns(machine.spec, machine.placements())

    @staticmethod
    def _rank(slowdowns: "tuple[float, ...]") -> tuple[float, float]:
        """Layout quality, smaller is better: (worst, mean) slowdown."""
        return (max(slowdowns), sum(slowdowns) / len(slowdowns))

    def _replan(self, machine, trigger: str, *, time_s: float) -> None:
        self._repartition(machine, trigger, time_s=time_s)
        if self._migrate(machine, trigger, time_s=time_s):
            # The source lost a resident: its partitions may now be
            # stale too (e.g. the migrant's fenced-off ways go unused).
            self._repartition(machine, trigger, time_s=time_s)

    def _repartition(self, machine, trigger: str, *, time_s: float) -> bool:
        """Redraw the vacated machine's masks/pins when a strictly
        cleaner resident-only layout exists.  Strictness is what keeps
        this idempotent: the current layout (or its equal) never wins,
        so a no-op departure logs nothing and replays stay canonical."""
        layouts = enumerate_layouts(machine)
        if not layouts:
            return False
        before = self._score(machine)
        current = self._rank(before)
        layout_slowdowns = self.evaluator.slowdowns_many(
            [(machine.spec, lay.placements) for lay in layouts]
        )
        scored = [
            (self._rank(sd), i, lay)
            for i, (lay, sd) in enumerate(zip(layouts, layout_slowdowns))
        ]
        best_rank, _, best = min(scored, key=lambda row: (row[0], row[1]))
        if best_rank >= current:
            return False
        machine.apply_layout(best.assignments())
        after = self._score(machine)
        self.decisions.append(
            ReplanDecision(
                time_s=time_s,
                policy=self.policy.name,
                trigger=trigger,
                action="repartition",
                machine=machine.name,
                target=None,
                tenant=None,
                variant=best.variant,
                tenants=best.tenants,
                before=before,
                after=after,
                reason="cleaner-layout",
            )
        )
        return True

    def _migrate(self, machine, trigger: str, *, time_s: float) -> bool:
        """Move the worst-off resident to a clean seat on another
        machine — only when it is at/over the SLO where it sits (the
        situation arrival-time admission can no longer fix) and the
        move is strictly better for it with nobody pushed to the SLO
        at the destination."""
        before = self._score(machine)
        if not before or max(before) < self.slo:
            return False
        residents = machine.residents()
        worst_i = max(range(len(before)), key=lambda i: before[i])
        mover = residents[worst_i]
        scored = []
        away = [
            cand
            for cand in enumerate_candidates(self.cluster, mover.unpartitioned())
            if cand.machine != machine.name
        ]
        away_slowdowns = self.evaluator.slowdowns_many(
            [(self.cluster.machine(cand.machine).spec, cand.placements) for cand in away]
        )
        for i, (cand, slowdowns) in enumerate(zip(away, away_slowdowns)):
            if any(s >= self.slo for s in slowdowns):
                continue
            if slowdowns[-1] >= before[worst_i]:
                continue
            scored.append((self._rank(slowdowns), i, cand, slowdowns))
        if not scored:
            return False
        _, _, best, predicted = min(scored, key=lambda row: (row[0], row[1]))
        machine.evict(mover.tenant)
        target = self.cluster.machine(best.machine)
        target.apply_layout(best.assignments())
        seat = best.arrival_placement
        target.admit(
            replace(mover, llc_ways=seat.llc_ways, pinning=seat.pinning)
        )
        self.decisions.append(
            ReplanDecision(
                time_s=time_s,
                policy=self.policy.name,
                trigger=trigger,
                action="migrate",
                machine=machine.name,
                target=best.machine,
                tenant=mover.tenant,
                variant=best.variant,
                tenants=best.tenants,
                before=before,
                after=predicted,
                reason="slo-relief",
            )
        )
        return True


@dataclass(frozen=True)
class TenantOutcome:
    """What one trace arrival experienced end to end."""

    tenant: str
    workload: str
    threads: int
    #: ``"completed"``, ``"evicted"`` (explicit departure with work
    #: left) or ``"rejected"``.
    status: str
    machine: str | None
    arrival_s: float
    end_s: float
    solo_s: float
    #: Residency / solo work for completions; work-weighted mean
    #: interval slowdown for evictions; 0.0 for rejections.
    achieved_slowdown: float
    peak_slowdown: float
    violated: bool

    @property
    def admitted(self) -> bool:
        return self.status != "rejected"

    def payload(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "workload": self.workload,
            "threads": self.threads,
            "status": self.status,
            "machine": self.machine,
            "arrival_s": self.arrival_s,
            "end_s": self.end_s,
            "solo_s": self.solo_s,
            "achieved_slowdown": self.achieved_slowdown,
            "peak_slowdown": self.peak_slowdown,
            "violated": self.violated,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TenantOutcome":
        return TenantOutcome(**payload)


@dataclass(frozen=True)
class HourBucket:
    """One simulated-hour slice of a replay: the arrivals that landed in
    it (aggregated by arrival time) plus the bucket's time-weighted
    utilization (aggregated by residency overlap, so one long tenant
    contributes to every bucket it spans)."""

    index: int
    start_s: float
    end_s: float
    arrivals: int
    admitted: int
    rejected: int
    violations: int
    p50_slowdown: float
    p95_slowdown: float
    mean_slowdown: float
    utilization: float

    def payload(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "violations": self.violations,
            "p50_slowdown": self.p50_slowdown,
            "p95_slowdown": self.p95_slowdown,
            "mean_slowdown": self.mean_slowdown,
            "utilization": self.utilization,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "HourBucket":
        return HourBucket(**payload)


@dataclass
class ReplayReport:
    """One policy's full replay: decisions, outcomes, aggregates."""

    policy: str
    slo: float
    machines: tuple[str, ...]
    total_slots: int
    trace_fingerprint: str
    decisions: "list[Decision | ReplanDecision]"
    outcomes: list[TenantOutcome]
    sim_time_s: float
    #: Time-weighted occupied-slot fraction over the whole replay.
    utilization: float

    # -- aggregates ---------------------------------------------------------

    @property
    def admitted(self) -> list[TenantOutcome]:
        return [o for o in self.outcomes if o.admitted]

    @property
    def rejections(self) -> int:
        return sum(1 for o in self.outcomes if not o.admitted)

    @property
    def violations(self) -> int:
        """Tenants whose interval slowdown ever reached the SLO."""
        return sum(1 for o in self.admitted if o.violated)

    @property
    def replans(self) -> int:
        """Departure-triggered re-planning actions in the decision log."""
        return sum(1 for d in self.decisions if isinstance(d, ReplanDecision))

    def slowdown_percentile(self, q: float) -> float:
        return percentile([o.achieved_slowdown for o in self.admitted], q)

    @property
    def p50_slowdown(self) -> float:
        return self.slowdown_percentile(0.50)

    @property
    def p95_slowdown(self) -> float:
        return self.slowdown_percentile(0.95)

    @property
    def mean_slowdown(self) -> float:
        adm = self.admitted
        if not adm:
            return 0.0
        return sum(o.achieved_slowdown for o in adm) / len(adm)

    def hourly(self, bucket_s: float) -> "list[HourBucket]":
        """Slice the replay into ``bucket_s``-second buckets (one per
        simulated trace hour for a diurnal day).  Arrival-keyed counts
        (admissions, rejections, violations, slowdown percentiles) land
        in the bucket of the tenant's arrival; utilization is the
        residency-overlap area ``Σ threads × overlap`` over the bucket's
        slot-seconds, which reconstructs the driver's global
        ``used_slots`` accounting exactly (``Machine.used_slots`` is the
        sum of resident threads), so the time-weighted mean of the
        buckets equals the report's headline ``utilization``.  The last
        bucket is clipped to ``sim_time_s``.  Pure post-processing — a
        stored report buckets identically to a live one."""
        if bucket_s <= 0:
            raise SchedError("bucket_s must be > 0")
        span = max(self.sim_time_s, 0.0)
        n = max(1, math.ceil(span / bucket_s)) if span > 0 else 1
        by_bucket: list[list[TenantOutcome]] = [[] for _ in range(n)]
        for o in self.outcomes:
            idx = min(int(o.arrival_s // bucket_s), n - 1)
            by_bucket[idx].append(o)
        buckets: list[HourBucket] = []
        for i in range(n):
            start = i * bucket_s
            end = min((i + 1) * bucket_s, span) if span > 0 else bucket_s
            width = max(end - start, 0.0)
            area = 0.0
            if width > 0 and self.total_slots > 0:
                for o in self.outcomes:
                    if not o.admitted:
                        continue
                    overlap = min(o.end_s, end) - max(o.arrival_s, start)
                    if overlap > 0:
                        area += o.threads * overlap
            outs = by_bucket[i]
            adm = [o for o in outs if o.admitted]
            slowdowns = [o.achieved_slowdown for o in adm]
            buckets.append(
                HourBucket(
                    index=i,
                    start_s=start,
                    end_s=end,
                    arrivals=len(outs),
                    admitted=len(adm),
                    rejected=len(outs) - len(adm),
                    violations=sum(1 for o in adm if o.violated),
                    p50_slowdown=percentile(slowdowns, 0.50),
                    p95_slowdown=percentile(slowdowns, 0.95),
                    mean_slowdown=(
                        sum(slowdowns) / len(slowdowns) if slowdowns else 0.0
                    ),
                    utilization=(
                        area / (self.total_slots * width) if width > 0 else 0.0
                    ),
                )
            )
        return buckets

    # -- serialization ------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "slo": self.slo,
            "machines": list(self.machines),
            "total_slots": self.total_slots,
            "trace_fingerprint": self.trace_fingerprint,
            "decisions": [d.payload() for d in self.decisions],
            "outcomes": [o.payload() for o in self.outcomes],
            "sim_time_s": self.sim_time_s,
            "utilization": self.utilization,
            "summary": {
                "admitted": len(self.admitted),
                "rejected": self.rejections,
                "violations": self.violations,
                "replans": self.replans,
                "p50_slowdown": self.p50_slowdown,
                "p95_slowdown": self.p95_slowdown,
                "mean_slowdown": self.mean_slowdown,
            },
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "ReplayReport":
        return ReplayReport(
            policy=payload["policy"],
            slo=payload["slo"],
            machines=tuple(payload["machines"]),
            total_slots=payload["total_slots"],
            trace_fingerprint=payload["trace_fingerprint"],
            decisions=[decision_from_payload(d) for d in payload["decisions"]],
            outcomes=[TenantOutcome.from_payload(o) for o in payload["outcomes"]],
            sim_time_s=payload["sim_time_s"],
            utilization=payload["utilization"],
        )

    def decision_log(self) -> str:
        """The canonical decision log: one JSON line per decision —
        byte-identical for identical (trace, config, policy)."""
        return "\n".join(
            json.dumps(d.payload(), sort_keys=True) for d in self.decisions
        )

    def render(self) -> str:
        rows = [
            [
                o.tenant,
                o.workload,
                o.machine if o.machine is not None else "-",
                o.status,
                f"{o.achieved_slowdown:.3f}" if o.admitted else "-",
                f"{o.peak_slowdown:.3f}" if o.admitted else "-",
                "yes" if o.violated else "",
            ]
            for o in self.outcomes
        ]
        table = ascii_table(
            ["tenant", "workload", "machine", "status", "achieved", "peak", "SLO hit"],
            rows,
            title=(
                f"Replay [{self.policy}] over {len(self.machines)} machine(s), "
                f"SLO {self.slo:.2f}x"
            ),
        )
        replans = f", {self.replans} replan(s)" if self.replans else ""
        return table + (
            f"{len(self.admitted)} admitted / {self.rejections} rejected, "
            f"{self.violations} SLO violation(s){replans}; slowdown p50 "
            f"{self.p50_slowdown:.3f}x p95 {self.p95_slowdown:.3f}x mean "
            f"{self.mean_slowdown:.3f}x; utilization "
            f"{self.utilization * 100:.1f}% over {self.sim_time_s:.1f}s\n"
        )


@dataclass
class _Active:
    """Book-keeping for one resident tenant during a replay."""

    tenant: Tenant
    machine: str
    remaining_s: float
    peak: float = 1.0
    violated: bool = False


def replay_trace(
    trace: ArrivalTrace,
    evaluator: PlacementEvaluator,
    *,
    machines: int = 2,
    policy: str = "interference",
    slo: float = VICTIM_THRESHOLD,
    cluster: Cluster | None = None,
    replan: bool = False,
) -> ReplayReport:
    """Replay a trace through one policy over a fresh cluster (or the
    given one) and simulate the tenants' lifetimes.  See the module
    docstring for the time model; ``replan`` turns on departure-time
    re-planning (migrations / re-partitions land in the decision log as
    ``replan`` events).

    Telemetry: the whole replay runs under a ``sched.replay`` span and,
    when tracing is enabled, the report's headline numbers are published
    as ``sched.<policy>.*`` gauges.  Simulated time is unaffected.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        report = _replay_trace_impl(
            trace, evaluator, machines=machines, policy=policy, slo=slo,
            cluster=cluster, replan=replan,
        )
    else:
        with tracer.span(
            "sched.replay",
            policy=policy,
            machines=machines if cluster is None else len(list(cluster)),
            arrivals=sum(1 for e in trace.events if e.kind == "arrival"),
        ) as sp:
            report = _replay_trace_impl(
                trace, evaluator, machines=machines, policy=policy, slo=slo,
                cluster=cluster, replan=replan,
            )
            sp.tag("sim_time_s", round(report.sim_time_s, 6))
            for key, value in (
                ("violations", report.violations),
                ("rejected", report.rejections),
                ("p95_slowdown", report.p95_slowdown),
                ("utilization", report.utilization),
            ):
                tracer.metrics.gauge(f"sched.{report.policy}.{key}").set(
                    float(value)
                )
    logger.info(
        "replayed %d event(s) through %s: sim_time=%.3fs",
        len(trace.events), report.policy, report.sim_time_s,
    )
    return report


def _replay_trace_impl(
    trace: ArrivalTrace,
    evaluator: PlacementEvaluator,
    *,
    machines: int,
    policy: str,
    slo: float,
    cluster: Cluster | None,
    replan: bool = False,
) -> ReplayReport:
    # The simulated-time loop itself lives in repro.sched.driver (shared,
    # verbatim, with the daemon drain — that sharing is what makes
    # daemon-vs-in-process replays byte-identical); here we only build the
    # scheduler and run the driver against its in-process port.
    import asyncio
    from concurrent.futures import ThreadPoolExecutor

    from repro.sched.driver import LocalPort, drive_trace

    if cluster is None:
        cluster = Cluster.homogeneous(machines, evaluator.session.spec)
    sched = Scheduler(
        cluster, get_policy(policy), evaluator, slo=slo, replan=replan
    )
    coro = drive_trace(LocalPort(sched), trace)
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    # Called with an event loop already running on this thread (async
    # caller, Jupyter): asyncio.run() would raise, so give the driver its
    # own loop on a helper thread.  The driver never yields to real I/O
    # through LocalPort, so this stays deterministic.
    with ThreadPoolExecutor(
        max_workers=1, thread_name_prefix="sched-replay"
    ) as pool:
        return pool.submit(asyncio.run, coro).result()
