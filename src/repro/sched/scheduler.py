"""The event-driven scheduler and its deterministic replay harness.

:class:`Scheduler` is the online decision loop: per arrival it asks
its :class:`~repro.sched.policy.PlacementPolicy` for a candidate
layout (scored through the :class:`~repro.sched.score.PlacementEvaluator`)
and applies the admitted layout to the cluster; departures evict and —
when a machine drops to one resident — deterministically clear its
partitions.  Every decision is appended to a serializable log.

:func:`replay_trace` runs an :class:`~repro.sched.trace.ArrivalTrace`
through one policy over a fresh cluster and *simulates time*: an
admitted tenant brings ``solo_s`` seconds of solo work, and under its
current layout that work drains at ``1 / slowdown`` of wall-time — so
a bad placement stretches residency, which holds slots longer, which
degrades later arrivals.  The loop advances to the next arrival,
explicit departure or projected completion (re-scoring layouts
whenever membership changes; the evaluator memo and the shared caches
make the steady intervals free) and accounts:

* per-tenant **achieved slowdown** (residency / solo work) and peak
  interval slowdown,
* **SLO violations** — a tenant whose interval slowdown ever reaches
  the threshold,
* **rejections**, and time-weighted machine **utilization**.

Everything derives from the trace and the session config; no clocks,
no ambient randomness.  The resulting :class:`ReplayReport` payload is
byte-identical across runs, processes and warm/cold stores — which is
what lets the ``sched-replay`` artifact live in the campaign manifest
like any figure.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, replace
from typing import Any

from repro.core.classify import VICTIM_THRESHOLD
from repro.core.report import ascii_table
from repro.errors import SchedError
from repro.sched.cluster import Cluster, Tenant
from repro.sched.policy import Decision, PlacementPolicy, get_policy
from repro.sched.score import PlacementEvaluator
from repro.sched.trace import ArrivalTrace
from repro.telemetry.tracer import get_tracer

logger = logging.getLogger(__name__)

#: Work-remaining epsilon: below this many solo-seconds a tenant is done.
_EPS = 1e-9


def percentile(values: "list[float]", q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 1]) — a pure-python
    match of the usual definition, 0.0 on an empty sample."""
    vs = sorted(values)
    if not vs:
        return 0.0
    pos = (len(vs) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(vs) - 1)
    frac = pos - lo
    return vs[lo] * (1.0 - frac) + vs[hi] * frac


class Scheduler:
    """Online decision loop over one cluster, one policy."""

    def __init__(
        self,
        cluster: Cluster,
        policy: PlacementPolicy,
        evaluator: PlacementEvaluator,
        *,
        slo: float = VICTIM_THRESHOLD,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.evaluator = evaluator
        self.slo = slo
        #: Every decision made, in arrival order.
        self.decisions: list[Decision] = []

    def arrival(self, tenant: Tenant, *, time_s: float = 0.0) -> Decision:
        """Decide one arrival; admitted layouts are applied (residents
        re-partitioned, the tenant seated with its assigned mask/pins).

        Telemetry: one ``sched.decide`` span per arrival, tagged with
        the tenant, its workload and the admit/reject outcome.  The
        span only observes — the decision log stays byte-identical with
        tracing on or off.
        """
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "sched.decide",
                tenant=tenant.tenant,
                workload=tenant.workload,
                threads=tenant.threads,
            ) as sp:
                decision, candidate = self.policy.decide(
                    self.cluster, tenant, self.evaluator, slo=self.slo, time_s=time_s
                )
                sp.tag("admitted", decision.admitted)
                if decision.machine is not None:
                    sp.tag("machine", decision.machine)
        else:
            decision, candidate = self.policy.decide(
                self.cluster, tenant, self.evaluator, slo=self.slo, time_s=time_s
            )
        logger.debug(
            "decide %s (%s:%d): %s",
            tenant.tenant,
            tenant.workload,
            tenant.threads,
            "admit on %s" % decision.machine if decision.admitted else "reject",
        )
        if decision.admitted and candidate is not None:
            machine = self.cluster.machine(candidate.machine)
            machine.apply_layout(candidate.assignments())
            seat = candidate.arrival_placement
            machine.admit(
                replace(
                    tenant,
                    arrival_s=time_s,
                    llc_ways=seat.llc_ways,
                    pinning=seat.pinning,
                )
            )
        self.decisions.append(decision)
        return decision

    def departure(self, tenant_id: str, *, time_s: float = 0.0) -> Tenant:
        """Evict a resident tenant (explicit departure or completion)."""
        machine = self.cluster.find(tenant_id)
        if machine is None:
            raise SchedError(f"departure of unknown tenant {tenant_id!r}")
        return machine.evict(tenant_id)


@dataclass(frozen=True)
class TenantOutcome:
    """What one trace arrival experienced end to end."""

    tenant: str
    workload: str
    threads: int
    #: ``"completed"``, ``"evicted"`` (explicit departure with work
    #: left) or ``"rejected"``.
    status: str
    machine: str | None
    arrival_s: float
    end_s: float
    solo_s: float
    #: Residency / solo work for completions; work-weighted mean
    #: interval slowdown for evictions; 0.0 for rejections.
    achieved_slowdown: float
    peak_slowdown: float
    violated: bool

    @property
    def admitted(self) -> bool:
        return self.status != "rejected"

    def payload(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "workload": self.workload,
            "threads": self.threads,
            "status": self.status,
            "machine": self.machine,
            "arrival_s": self.arrival_s,
            "end_s": self.end_s,
            "solo_s": self.solo_s,
            "achieved_slowdown": self.achieved_slowdown,
            "peak_slowdown": self.peak_slowdown,
            "violated": self.violated,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TenantOutcome":
        return TenantOutcome(**payload)


@dataclass
class ReplayReport:
    """One policy's full replay: decisions, outcomes, aggregates."""

    policy: str
    slo: float
    machines: tuple[str, ...]
    total_slots: int
    trace_fingerprint: str
    decisions: list[Decision]
    outcomes: list[TenantOutcome]
    sim_time_s: float
    #: Time-weighted occupied-slot fraction over the whole replay.
    utilization: float

    # -- aggregates ---------------------------------------------------------

    @property
    def admitted(self) -> list[TenantOutcome]:
        return [o for o in self.outcomes if o.admitted]

    @property
    def rejections(self) -> int:
        return sum(1 for o in self.outcomes if not o.admitted)

    @property
    def violations(self) -> int:
        """Tenants whose interval slowdown ever reached the SLO."""
        return sum(1 for o in self.admitted if o.violated)

    def slowdown_percentile(self, q: float) -> float:
        return percentile([o.achieved_slowdown for o in self.admitted], q)

    @property
    def p50_slowdown(self) -> float:
        return self.slowdown_percentile(0.50)

    @property
    def p95_slowdown(self) -> float:
        return self.slowdown_percentile(0.95)

    @property
    def mean_slowdown(self) -> float:
        adm = self.admitted
        if not adm:
            return 0.0
        return sum(o.achieved_slowdown for o in adm) / len(adm)

    # -- serialization ------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "slo": self.slo,
            "machines": list(self.machines),
            "total_slots": self.total_slots,
            "trace_fingerprint": self.trace_fingerprint,
            "decisions": [d.payload() for d in self.decisions],
            "outcomes": [o.payload() for o in self.outcomes],
            "sim_time_s": self.sim_time_s,
            "utilization": self.utilization,
            "summary": {
                "admitted": len(self.admitted),
                "rejected": self.rejections,
                "violations": self.violations,
                "p50_slowdown": self.p50_slowdown,
                "p95_slowdown": self.p95_slowdown,
                "mean_slowdown": self.mean_slowdown,
            },
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "ReplayReport":
        return ReplayReport(
            policy=payload["policy"],
            slo=payload["slo"],
            machines=tuple(payload["machines"]),
            total_slots=payload["total_slots"],
            trace_fingerprint=payload["trace_fingerprint"],
            decisions=[Decision.from_payload(d) for d in payload["decisions"]],
            outcomes=[TenantOutcome.from_payload(o) for o in payload["outcomes"]],
            sim_time_s=payload["sim_time_s"],
            utilization=payload["utilization"],
        )

    def decision_log(self) -> str:
        """The canonical decision log: one JSON line per decision —
        byte-identical for identical (trace, config, policy)."""
        return "\n".join(
            json.dumps(d.payload(), sort_keys=True) for d in self.decisions
        )

    def render(self) -> str:
        rows = [
            [
                o.tenant,
                o.workload,
                o.machine if o.machine is not None else "-",
                o.status,
                f"{o.achieved_slowdown:.3f}" if o.admitted else "-",
                f"{o.peak_slowdown:.3f}" if o.admitted else "-",
                "yes" if o.violated else "",
            ]
            for o in self.outcomes
        ]
        table = ascii_table(
            ["tenant", "workload", "machine", "status", "achieved", "peak", "SLO hit"],
            rows,
            title=(
                f"Replay [{self.policy}] over {len(self.machines)} machine(s), "
                f"SLO {self.slo:.2f}x"
            ),
        )
        return table + (
            f"{len(self.admitted)} admitted / {self.rejections} rejected, "
            f"{self.violations} SLO violation(s); slowdown p50 "
            f"{self.p50_slowdown:.3f}x p95 {self.p95_slowdown:.3f}x mean "
            f"{self.mean_slowdown:.3f}x; utilization "
            f"{self.utilization * 100:.1f}% over {self.sim_time_s:.1f}s\n"
        )


@dataclass
class _Active:
    """Book-keeping for one resident tenant during a replay."""

    tenant: Tenant
    machine: str
    remaining_s: float
    peak: float = 1.0
    violated: bool = False


def replay_trace(
    trace: ArrivalTrace,
    evaluator: PlacementEvaluator,
    *,
    machines: int = 2,
    policy: str = "interference",
    slo: float = VICTIM_THRESHOLD,
    cluster: Cluster | None = None,
) -> ReplayReport:
    """Replay a trace through one policy over a fresh cluster (or the
    given one) and simulate the tenants' lifetimes.  See the module
    docstring for the time model.

    Telemetry: the whole replay runs under a ``sched.replay`` span and,
    when tracing is enabled, the report's headline numbers are published
    as ``sched.<policy>.*`` gauges.  Simulated time is unaffected.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        report = _replay_trace_impl(
            trace, evaluator, machines=machines, policy=policy, slo=slo,
            cluster=cluster,
        )
    else:
        with tracer.span(
            "sched.replay",
            policy=policy,
            machines=machines if cluster is None else len(list(cluster)),
            arrivals=sum(1 for e in trace.events if e.kind == "arrival"),
        ) as sp:
            report = _replay_trace_impl(
                trace, evaluator, machines=machines, policy=policy, slo=slo,
                cluster=cluster,
            )
            sp.tag("sim_time_s", round(report.sim_time_s, 6))
            for key, value in (
                ("violations", report.violations),
                ("rejected", report.rejections),
                ("p95_slowdown", report.p95_slowdown),
                ("utilization", report.utilization),
            ):
                tracer.metrics.gauge(f"sched.{report.policy}.{key}").set(
                    float(value)
                )
    logger.info(
        "replayed %d event(s) through %s: sim_time=%.3fs",
        len(trace.events), report.policy, report.sim_time_s,
    )
    return report


def _replay_trace_impl(
    trace: ArrivalTrace,
    evaluator: PlacementEvaluator,
    *,
    machines: int,
    policy: str,
    slo: float,
    cluster: Cluster | None,
) -> ReplayReport:
    if cluster is None:
        cluster = Cluster.homogeneous(machines, evaluator.session.spec)
    sched = Scheduler(cluster, get_policy(policy), evaluator, slo=slo)
    active: dict[str, _Active] = {}
    outcomes: dict[str, TenantOutcome] = {}
    order: list[str] = []
    events = list(trace.events)
    i = 0
    now = 0.0
    util_area = 0.0

    def finish(tid: str, end_s: float, *, evicted: bool) -> None:
        a = active.pop(tid)
        sched.departure(tid, time_s=end_s)
        elapsed = end_s - a.tenant.arrival_s
        if evicted:
            done = a.tenant.solo_s - max(a.remaining_s, 0.0)
            achieved = elapsed / done if done > _EPS else 1.0
            status = "evicted"
        else:
            achieved = elapsed / a.tenant.solo_s
            status = "completed"
        outcomes[tid] = TenantOutcome(
            tenant=tid,
            workload=a.tenant.workload,
            threads=a.tenant.threads,
            status=status,
            machine=a.machine,
            arrival_s=a.tenant.arrival_s,
            end_s=end_s,
            solo_s=a.tenant.solo_s,
            achieved_slowdown=achieved,
            peak_slowdown=a.peak,
            violated=a.violated,
        )

    while i < len(events) or active:
        # Current per-tenant slowdowns under each machine's live layout.
        rates: dict[str, float] = {}
        for m in cluster:
            ids = tuple(m.tenants)
            if not ids:
                continue
            for tid, s in zip(ids, evaluator.slowdowns(m.spec, m.placements())):
                rates[tid] = s
        for tid, a in active.items():
            s = rates[tid]
            if s > a.peak:
                a.peak = s
            if s >= slo:
                a.violated = True
        next_event = events[i].time_s if i < len(events) else float("inf")
        next_done = float("inf")
        for tid, a in active.items():
            t_fin = now + a.remaining_s * rates[tid]
            if t_fin < next_done:
                next_done = t_fin
        t_next = min(next_event, next_done)
        dt = t_next - now
        if dt > 0:
            util_area += cluster.used_slots * dt
            for tid, a in active.items():
                a.remaining_s -= dt / rates[tid]
            now = t_next
        else:
            now = max(now, t_next)
        # Completions first (they free slots for same-instant arrivals).
        for tid in [t for t, a in active.items() if a.remaining_s <= _EPS]:
            finish(tid, now, evicted=False)
        while i < len(events) and events[i].time_s <= now + _EPS:
            e = events[i]
            i += 1
            if e.kind == "arrival":
                tenant = Tenant(
                    tenant=e.tenant,
                    workload=e.workload,
                    threads=e.threads,
                    solo_s=e.solo_s,
                    arrival_s=e.time_s,
                )
                order.append(e.tenant)
                decision = sched.arrival(tenant, time_s=e.time_s)
                if decision.admitted:
                    active[e.tenant] = _Active(
                        tenant=replace(tenant, arrival_s=e.time_s),
                        machine=decision.machine or "",
                        remaining_s=e.solo_s,
                    )
                else:
                    outcomes[e.tenant] = TenantOutcome(
                        tenant=e.tenant,
                        workload=e.workload,
                        threads=e.threads,
                        status="rejected",
                        machine=None,
                        arrival_s=e.time_s,
                        end_s=e.time_s,
                        solo_s=e.solo_s,
                        achieved_slowdown=0.0,
                        peak_slowdown=0.0,
                        violated=False,
                    )
            elif e.tenant in active:
                finish(e.tenant, now, evicted=True)
            # A departure of an already-finished tenant is a no-op.

    return ReplayReport(
        policy=sched.policy.name,
        slo=slo,
        machines=tuple(m.name for m in cluster),
        total_slots=cluster.total_slots,
        trace_fingerprint=trace.fingerprint,
        decisions=sched.decisions,
        outcomes=[outcomes[tid] for tid in order],
        sim_time_s=now,
        utilization=(
            util_area / (cluster.total_slots * now) if now > 0 else 0.0
        ),
    )
