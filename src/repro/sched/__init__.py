"""repro.sched — interference-aware placement over a simulated cluster.

PRs 1-5 built the measurement machinery: any N-way placement with CAT
way masks and pinning can be simulated (Scenario API), classified
(:func:`~repro.core.classify.classify_nway`) and persisted
(ResultStore).  This package is the payoff the ROADMAP names first —
something that *decides* placements with that machinery:

* :mod:`~repro.sched.cluster` — the cluster state: named machines,
  resident tenants, slot/core/way capacity, engine-ready layouts;
* :mod:`~repro.sched.trace` — deterministic seeded arrival traces
  (plus file round-trip) driving the scheduler;
* :mod:`~repro.sched.score` — :class:`PlacementEvaluator`: layout ->
  per-tenant slowdowns via foreground rotation through the Session,
  with the result store as the scheduler's warm cache;
* :mod:`~repro.sched.policy` — candidate enumeration (shared / CAT /
  pinned variants) and the two shipped policies: the naive slot
  bin-packer and the SLO-guarded interference-aware one;
* :mod:`~repro.sched.scheduler` — the event-driven :class:`Scheduler`
  and :func:`replay_trace`: simulated time where interference
  stretches residency, per-tenant slowdown percentiles, SLO
  violations, rejections and utilization;
* :mod:`~repro.sched.runner` — the ``sched-replay`` campaign artifact
  (``repro sched replay``) comparing policies head to head.
"""

from repro.sched.cluster import Cluster, Machine, Tenant, cores_needed
from repro.sched.driver import LocalPort, SchedulerPort, drive_trace
from repro.sched.policy import (
    POLICIES,
    BaselinePolicy,
    Candidate,
    Decision,
    InterferencePolicy,
    Layout,
    PlacementPolicy,
    ReplanDecision,
    decision_from_payload,
    enumerate_candidates,
    enumerate_layouts,
    get_policy,
)
from repro.sched.runner import DEFAULT_POLICIES, ReplayComparison, SchedReplayRunner
from repro.sched.scheduler import (
    HourBucket,
    ReplayReport,
    Scheduler,
    TenantOutcome,
    percentile,
    replay_trace,
)
from repro.sched.score import PlacementEvaluator
from repro.sched.trace import ArrivalTrace, TraceEvent, load_trace, parse_trace

__all__ = [
    "ArrivalTrace",
    "BaselinePolicy",
    "Candidate",
    "Cluster",
    "DEFAULT_POLICIES",
    "Decision",
    "HourBucket",
    "InterferencePolicy",
    "Layout",
    "LocalPort",
    "Machine",
    "POLICIES",
    "PlacementEvaluator",
    "PlacementPolicy",
    "ReplanDecision",
    "ReplayComparison",
    "ReplayReport",
    "SchedReplayRunner",
    "Scheduler",
    "SchedulerPort",
    "Tenant",
    "TenantOutcome",
    "TraceEvent",
    "cores_needed",
    "decision_from_payload",
    "drive_trace",
    "enumerate_candidates",
    "enumerate_layouts",
    "get_policy",
    "load_trace",
    "parse_trace",
    "percentile",
    "replay_trace",
]
