"""The ``sched-replay`` campaign artifact: policies replayed head to head.

One registered runner replays a deterministic arrival trace through
each requested policy over identical fresh clusters, sharing one
:class:`~repro.sched.score.PlacementEvaluator` — so both policies score
(and are judged by) the very same cached measurements, and a campaign
that already ran the pairwise sweeps pays mostly cache hits.  The
result round-trips through the store like any figure: the trace
payload is part of the record, so a stored comparison replays
identically.

CLI: ``repro sched replay [--trace seed:S:N | FILE] [--policy P ...]``;
``repro run-all`` / ``repro campaign`` execute the argument-free
default (a 10-arrival seeded trace from the session's roster over two
machines) like every other extension artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.classify import VICTIM_THRESHOLD
from repro.core.report import ascii_table
from repro.errors import SchedError
from repro.sched.scheduler import ReplayReport, replay_trace
from repro.sched.score import PlacementEvaluator
from repro.sched.trace import ArrivalTrace, parse_trace
from repro.session.base import Runner
from repro.session.registry import register_runner

#: Default policies of a comparison, in presentation order.
DEFAULT_POLICIES = ("baseline", "interference")


@dataclass
class ReplayComparison:
    """The same trace replayed under several policies."""

    trace: ArrivalTrace
    machines: int
    slo: float
    reports: list[ReplayReport]

    def report(self, policy: str) -> ReplayReport:
        for r in self.reports:
            if r.policy == policy:
                return r
        raise SchedError(
            f"no replay for policy {policy!r}; have "
            f"{', '.join(r.policy for r in self.reports)}"
        )

    def render(self) -> str:
        rows = [
            [
                r.policy,
                len(r.admitted),
                r.rejections,
                r.violations,
                f"{r.p50_slowdown:.3f}",
                f"{r.p95_slowdown:.3f}",
                f"{r.mean_slowdown:.3f}",
                f"{r.utilization * 100:.1f}%",
                f"{r.sim_time_s:.1f}s",
            ]
            for r in self.reports
        ]
        table = ascii_table(
            [
                "policy", "admitted", "rejected", "SLO viol.",
                "p50", "p95", "mean", "util", "sim time",
            ],
            rows,
            title=(
                f"sched replay: {len(self.trace.arrivals)} arrival(s) over "
                f"{self.machines} machine(s), SLO {self.slo:.2f}x "
                f"(trace {self.trace.fingerprint})"
            ),
        )
        return table + "".join(r.render() for r in self.reports)


@register_runner(
    "sched-replay",
    title="placement policies replayed over a seeded arrival trace (extension)",
    artifact=False,
    order=150,
)
class SchedReplayRunner(Runner):
    """Replay one arrival trace under each policy; the store doubles as
    the scheduler's warm cache, so repeated candidate scenarios are
    never re-simulated."""

    def execute(
        self,
        session,
        *,
        trace: "ArrivalTrace | str | None" = None,
        machines: int = 2,
        slo: float = VICTIM_THRESHOLD,
        policies: tuple[str, ...] = DEFAULT_POLICIES,
        arrivals: int = 10,
        threads: int = 2,
        departures: float = 0.0,
        replan: bool = False,
    ) -> ReplayComparison:
        if machines < 1:
            raise SchedError("machines must be >= 1")
        if not policies:
            raise SchedError("need at least one policy to replay")
        if isinstance(trace, str):
            trace = parse_trace(trace, session.config.workloads)
        if trace is None:
            trace = ArrivalTrace.synthetic(
                session.config.workloads,
                seed=session.config.seed,
                arrivals=arrivals,
                threads=threads,
            )
        if departures > 0:
            trace = trace.with_departures(
                fraction=departures, seed=session.config.seed
            )
        evaluator = PlacementEvaluator(session)
        reports = [
            replay_trace(
                trace, evaluator, machines=machines, policy=p, slo=slo,
                replan=replan,
            )
            for p in policies
        ]
        return ReplayComparison(
            trace=trace, machines=machines, slo=slo, reports=reports
        )

    def render(self, result: ReplayComparison, **_) -> str:
        return result.render()

    def encode(self, result: ReplayComparison) -> dict[str, Any]:
        return {
            "trace": result.trace.payload(),
            "machines": result.machines,
            "slo": result.slo,
            "reports": [r.payload() for r in result.reports],
        }

    def decode(self, payload: dict[str, Any]) -> ReplayComparison:
        return ReplayComparison(
            trace=ArrivalTrace.from_payload(payload["trace"]),
            machines=payload["machines"],
            slo=payload["slo"],
            reports=[ReplayReport.from_payload(r) for r in payload["reports"]],
        )
