"""The simulated-time trace driver, shared by replay and the daemon drain.

:func:`drive_trace` is the one copy of the scheduler's open-loop time
model: work drains at ``1 / slowdown`` of wall time, completions free
slots before same-instant arrivals, utilization is the time-weighted
occupied-slot area.  It talks to the scheduler only through a
:class:`SchedulerPort` — decide / depart / observe — so the very same
loop drives

* :class:`LocalPort` — an in-process :class:`~repro.sched.scheduler.Scheduler`
  (what :func:`~repro.sched.scheduler.replay_trace` runs), and
* ``repro.serve.drain.RemotePort`` — a live daemon over its JSON API.

Because every number the loop consumes (per-tenant slowdowns, tenant
homes, used slots, decision payloads) round-trips JSON exactly (Python
serializes floats via ``repr`` and parses them back bit-for-bit), a
daemon drain of a trace produces a :class:`ReplayReport` — decision log
included — **byte-identical** to the in-process replay of the same
trace against the same configuration.  That is the service tier's
acceptance contract, checkable with ``store diff``-style comparisons.

The port is async so the remote case can await the network; the local
port simply wraps synchronous calls.  Nothing here reads clocks or
randomness — simulated time comes from the trace alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sched.cluster import Tenant
from repro.sched.trace import ArrivalTrace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.policy import Decision, ReplanDecision
    from repro.sched.scheduler import ReplayReport, Scheduler

__all__ = ["LocalPort", "SchedulerPort", "drive_trace"]


class SchedulerPort:
    """What the driver needs from a scheduler, local or remote."""

    async def info(self) -> dict:
        """Static replay facts: ``policy``, ``slo``, ``machines``
        (names, cluster order) and ``total_slots``."""
        raise NotImplementedError

    async def decide(self, event: TraceEvent) -> "Decision":
        """Submit one arrival; returns the admission decision."""
        raise NotImplementedError

    async def depart(self, tenant_id: str, time_s: float) -> None:
        """Evict one tenant (completion or explicit departure); any
        re-planning happens behind this call."""
        raise NotImplementedError

    async def state(self) -> "tuple[dict[str, float], dict[str, str], int]":
        """The live cluster view: per-tenant slowdown rates, per-tenant
        machine homes, and occupied slots."""
        raise NotImplementedError

    async def decisions(self) -> "list[Decision | ReplanDecision]":
        """The full decision log, in event order."""
        raise NotImplementedError


class LocalPort(SchedulerPort):
    """An in-process scheduler behind the port interface."""

    def __init__(self, scheduler: "Scheduler") -> None:
        self.scheduler = scheduler

    async def info(self) -> dict:
        cluster = self.scheduler.cluster
        return {
            "policy": self.scheduler.policy.name,
            "slo": self.scheduler.slo,
            "machines": [m.name for m in cluster],
            "total_slots": cluster.total_slots,
        }

    async def decide(self, event: TraceEvent) -> "Decision":
        tenant = Tenant(
            tenant=event.tenant,
            workload=event.workload,
            threads=event.threads,
            solo_s=event.solo_s,
            arrival_s=event.time_s,
        )
        return self.scheduler.arrival(tenant, time_s=event.time_s)

    async def depart(self, tenant_id: str, time_s: float) -> None:
        self.scheduler.departure(tenant_id, time_s=time_s)

    async def state(self) -> "tuple[dict[str, float], dict[str, str], int]":
        rates: dict[str, float] = {}
        homes: dict[str, str] = {}
        occupied = [m for m in self.scheduler.cluster if m.tenants]
        all_slowdowns = self.scheduler.evaluator.slowdowns_many(
            [(m.spec, m.placements()) for m in occupied]
        )
        for m, slowdowns in zip(occupied, all_slowdowns):
            for tid, s in zip(tuple(m.tenants), slowdowns):
                rates[tid] = s
                homes[tid] = m.name
        return rates, homes, self.scheduler.cluster.used_slots

    async def decisions(self) -> "list[Decision | ReplanDecision]":
        return list(self.scheduler.decisions)


async def drive_trace(port: SchedulerPort, trace: ArrivalTrace) -> "ReplayReport":
    """Run one trace open-loop through a scheduler port and simulate
    the tenants' lifetimes; see the module docstring.  The time model
    is byte-for-byte the pre-refactor replay loop."""
    from repro.sched.scheduler import _EPS, ReplayReport, TenantOutcome, _Active

    info = await port.info()
    slo: float = info["slo"]
    total_slots: int = info["total_slots"]
    active: dict[str, _Active] = {}
    outcomes: dict[str, TenantOutcome] = {}
    order: list[str] = []
    events = list(trace.events)
    i = 0
    now = 0.0
    util_area = 0.0

    async def finish(tid: str, end_s: float, *, evicted: bool) -> None:
        a = active.pop(tid)
        await port.depart(tid, end_s)
        elapsed = end_s - a.tenant.arrival_s
        if evicted:
            done = a.tenant.solo_s - max(a.remaining_s, 0.0)
            achieved = elapsed / done if done > _EPS else 1.0
            status = "evicted"
        else:
            achieved = elapsed / a.tenant.solo_s
            status = "completed"
        outcomes[tid] = TenantOutcome(
            tenant=tid,
            workload=a.tenant.workload,
            threads=a.tenant.threads,
            status=status,
            machine=a.machine,
            arrival_s=a.tenant.arrival_s,
            end_s=end_s,
            solo_s=a.tenant.solo_s,
            achieved_slowdown=achieved,
            peak_slowdown=a.peak,
            violated=a.violated,
        )

    while i < len(events) or active:
        # Current per-tenant slowdowns (and homes — a re-planning
        # scheduler may have migrated someone) under each machine's
        # live layout.
        rates, homes, used_slots = await port.state()
        for tid, a in active.items():
            s = rates[tid]
            a.machine = homes[tid]
            if s > a.peak:
                a.peak = s
            if s >= slo:
                a.violated = True
        next_event = events[i].time_s if i < len(events) else float("inf")
        next_done = float("inf")
        for tid, a in active.items():
            t_fin = now + a.remaining_s * rates[tid]
            if t_fin < next_done:
                next_done = t_fin
        t_next = min(next_event, next_done)
        dt = t_next - now
        if dt > 0:
            util_area += used_slots * dt
            for tid, a in active.items():
                a.remaining_s -= dt / rates[tid]
            now = t_next
        else:
            now = max(now, t_next)
        # Completions first (they free slots for same-instant arrivals).
        for tid in [t for t, a in active.items() if a.remaining_s <= _EPS]:
            await finish(tid, now, evicted=False)
        while i < len(events) and events[i].time_s <= now + _EPS:
            e = events[i]
            i += 1
            if e.kind == "arrival":
                order.append(e.tenant)
                decision = await port.decide(e)
                if decision.admitted:
                    active[e.tenant] = _Active(
                        tenant=Tenant(
                            tenant=e.tenant,
                            workload=e.workload,
                            threads=e.threads,
                            solo_s=e.solo_s,
                            arrival_s=e.time_s,
                        ),
                        machine=decision.machine or "",
                        remaining_s=e.solo_s,
                    )
                else:
                    outcomes[e.tenant] = TenantOutcome(
                        tenant=e.tenant,
                        workload=e.workload,
                        threads=e.threads,
                        status="rejected",
                        machine=None,
                        arrival_s=e.time_s,
                        end_s=e.time_s,
                        solo_s=e.solo_s,
                        achieved_slowdown=0.0,
                        peak_slowdown=0.0,
                        violated=False,
                    )
            elif e.tenant in active:
                await finish(e.tenant, now, evicted=True)
            # A departure of an already-finished tenant is a no-op.

    return ReplayReport(
        policy=info["policy"],
        slo=slo,
        machines=tuple(info["machines"]),
        total_slots=total_slots,
        trace_fingerprint=trace.fingerprint,
        decisions=await port.decisions(),
        outcomes=[outcomes[tid] for tid in order],
        sim_time_s=now,
        utilization=(
            util_area / (total_slots * now) if now > 0 else 0.0
        ),
    )
