"""Scoring candidate layouts with the engine, through the Session.

The scheduler asks one question over and over: *if machine M holds
these placements, how much does each tenant slow down?*
:class:`PlacementEvaluator` answers it with the paper's
foreground-rotation protocol — each member of the layout measured once
as the scenario foreground against the rest — through
:meth:`Session.run_scenarios`, so every cell:

* deduplicates against the session's in-memory caches,
* reads through / writes behind the attached
  :class:`~repro.store.store.ResultStore` (**the store is the
  scheduler's warm cache**: a second replay over the same store
  re-simulates nothing), and
* is bit-identical to the same scenario run by any other artifact.

Layouts are additionally memoized here per ``(spec, placements)`` so a
replay that re-evaluates a stable machine every interval costs a dict
lookup, not even a cache probe.  Single-tenant layouts are exactly
``1.0`` by definition (a solo run normalized to itself) and never
touch the engine.

Heterogeneous clusters: a machine whose spec differs from the
session's (e.g. an SMT variant) is scored through a sibling session
sharing the same store — cache keys embed the spec fingerprint, so
results can never cross machine shapes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.core.classify import VICTIM_THRESHOLD, NWayVerdict, classify_nway
from repro.machine.spec import MachineSpec
from repro.session.base import fingerprint
from repro.session.scenario import AppPlacement, Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.session import Session


class PlacementEvaluator:
    """Layout -> per-tenant slowdowns, memoized, via one Session."""

    def __init__(self, session: "Session") -> None:
        self.session = session
        self._sessions: dict[str, "Session"] = {fingerprint(session.spec): session}
        self._memo: dict[tuple[str, tuple[AppPlacement, ...]], tuple[float, ...]] = {}

    def session_for(self, spec: MachineSpec) -> "Session":
        """The session that scores layouts on ``spec`` — the base one
        when the spec matches, else a sibling sharing executor, store
        and chunksize (lazily built, one per distinct spec)."""
        fp = fingerprint(spec)
        if fp not in self._sessions:
            from repro.session.session import Session

            self._sessions[fp] = Session(
                replace(self.session.config, spec=spec),
                executor=self.session.executor,
                store=self.session.store,
                chunksize=self.session.chunksize,
                engine_batch=self.session.engine_batch,
            )
        return self._sessions[fp]

    def slowdowns(
        self, spec: MachineSpec, placements: "tuple[AppPlacement, ...]"
    ) -> tuple[float, ...]:
        """Per-placement slowdown of a layout, by foreground rotation.

        ``result[i]`` is placement ``i``'s normalized execution time
        when it is the measured foreground against the others — the
        same number ``consolidate-n`` records for that rotation, served
        from the same caches.
        """
        placements = tuple(placements)
        if not placements:
            return ()
        if len(placements) == 1:
            # A lone tenant is its own solo reference: exactly 1.0,
            # engine-free (simulating it would only re-derive the
            # definition through the jitter model).
            return (1.0,)
        key = (fingerprint(spec), placements)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        n = len(placements)
        rotations = [placements[i:] + placements[:i] for i in range(n)]
        session = self.session_for(spec)
        results = session.run_scenarios([Scenario(rot) for rot in rotations])
        out = tuple(res.normalized_time for res in results)
        self._memo[key] = out
        return out

    def slowdowns_many(
        self,
        items: "list[tuple[MachineSpec, tuple[AppPlacement, ...]]]",
    ) -> "list[tuple[float, ...]]":
        """Score many layouts at once, one scenario fan-out per spec.

        The candidate layouts an arrival enumerates (or the machines a
        snapshot walks) differ only in placements, so their rotation
        scenarios can feed :meth:`Session.run_scenarios` as *one* batch
        per machine spec — the batch engine then solves them in a
        single stacked fixed point instead of one scalar solve per
        rotation.  Memoization, ordering and results are identical to
        calling :meth:`slowdowns` per item.
        """
        out: "list[tuple[float, ...] | None]" = [None] * len(items)
        # (spec fp) -> per-item pending work: item index, memo key,
        # rotation slice into the spec's scenario list.
        pending: dict[str, list[tuple[int, tuple, int, int]]] = {}
        specs: dict[str, MachineSpec] = {}
        scens: dict[str, list[Scenario]] = {}
        for i, (spec, placements) in enumerate(items):
            placements = tuple(placements)
            if not placements:
                out[i] = ()
                continue
            if len(placements) == 1:
                out[i] = (1.0,)
                continue
            fp = fingerprint(spec)
            key = (fp, placements)
            hit = self._memo.get(key)
            if hit is not None:
                out[i] = hit
                continue
            rotations = [
                placements[j:] + placements[:j] for j in range(len(placements))
            ]
            specs[fp] = spec
            batch = scens.setdefault(fp, [])
            start = len(batch)
            batch.extend(Scenario(rot) for rot in rotations)
            pending.setdefault(fp, []).append((i, key, start, len(batch)))
        for fp, work in pending.items():
            results = self.session_for(specs[fp]).run_scenarios(scens[fp])
            for i, key, a, b in work:
                scored = tuple(res.normalized_time for res in results[a:b])
                # Duplicate layouts within one call share the memo
                # entry; last write wins with identical bits.
                self._memo[key] = scored
                out[i] = scored
        return out  # type: ignore[return-value]

    def verdict(
        self,
        labels: "tuple[str, ...]",
        slowdowns: "tuple[float, ...]",
        *,
        threshold: float = VICTIM_THRESHOLD,
    ) -> NWayVerdict:
        """The paper's N-way taxonomy over one scored layout."""
        return classify_nway(labels, list(slowdowns), threshold=threshold)

    def cache_stats(self) -> dict[str, int]:
        """Summed cache counters across every spec's session."""
        totals: dict[str, int] = {}
        for s in self._sessions.values():
            for k, v in s.stats.snapshot().items():
                totals[k] = totals.get(k, 0) + v
        return totals
