"""Placement policies: who decides where an arrival lands.

Per arrival the scheduler enumerates :class:`Candidate` layouts — one
per (machine, partitioning variant) — and a policy picks one (or
rejects the arrival).  A candidate fully specifies the machine's
*next* layout: every resident's way mask / pinning plus the arrival's,
so admitting it is a deterministic state transition and its cost is
one :meth:`PlacementEvaluator.slowdowns` call on engine-ready
placements.

Variants per machine with room:

* ``shared`` — everyone unpartitioned (also the *re-partition to
  nothing* decision: admitting it clears existing masks);
* ``cat`` — the arrival is fenced into the top half of the LLC ways,
  residents share the bottom half (the ``contiguous_split`` shape the
  CAT sweep showed protects sensitive tenants);
* ``pinned`` — disjoint contiguous core blocks per tenant, when the
  machine has enough physical cores.

The two shipped policies bracket the design space the paper motivates:

* :class:`BaselinePolicy` (``"baseline"``) — a naive slot-count
  bin-packer: best-fit on free hardware-thread slots, never simulates,
  never partitions.  What a scheduler blind to interference does.
* :class:`InterferencePolicy` (``"interference"``) — scores every
  candidate with the engine, drops any whose predicted layout pushes a
  tenant to or past the SLO (:func:`classify_nway`'s victim threshold),
  and admits the mildest surviving layout; with no clean candidate it
  rejects, because parking a tenant where someone gets victimized is
  exactly the outcome the paper says to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.catsweep import contiguous_split, equal_way_shares, way_partition
from repro.core.classify import VICTIM_THRESHOLD
from repro.errors import SchedError
from repro.sched.cluster import Cluster, Machine, Tenant, cores_needed
from repro.sched.score import PlacementEvaluator
from repro.session.scenario import AppPlacement

#: Variant enumeration order — also the deterministic tie-break rank.
VARIANTS = ("shared", "cat", "pinned")


@dataclass(frozen=True)
class Candidate:
    """One admissible next layout for one machine: the residents plus
    the arrival (last), each with its assigned partitioning."""

    machine: str
    variant: str
    #: Tenant ids, residents in admission order, the arrival last.
    tenants: tuple[str, ...]
    #: Engine-ready layout aligned with ``tenants``.
    placements: tuple[AppPlacement, ...]

    def assignments(
        self,
    ) -> "dict[str, tuple[int | None, tuple[int, ...] | None]]":
        """tenant id -> (llc_ways, pinning) for :meth:`Machine.apply_layout`
        (the arrival excluded — it is admitted with its own placement)."""
        return {
            tid: (p.llc_ways, p.pinning)
            for tid, p in zip(self.tenants[:-1], self.placements[:-1])
        }

    @property
    def arrival_placement(self) -> AppPlacement:
        return self.placements[-1]


def enumerate_candidates(cluster: Cluster, tenant: Tenant) -> list[Candidate]:
    """Every candidate layout for an arrival, in deterministic order:
    machines in cluster order, variants in :data:`VARIANTS` order."""
    out: list[Candidate] = []
    for machine in cluster:
        if not machine.fits(tenant):
            continue
        residents = machine.residents()
        ids = tuple(t.tenant for t in residents) + (tenant.tenant,)
        bare = tuple(
            AppPlacement(t.workload, t.threads) for t in residents
        ) + (AppPlacement(tenant.workload, tenant.threads),)
        out.append(Candidate(machine.name, "shared", ids, bare))
        if not residents:
            # An empty machine has nobody to arbitrate against: the
            # partitioned variants would all be the shared one.
            continue
        spec = machine.spec
        if spec.llc_ways >= 2:
            arrival_mask, resident_mask = contiguous_split(
                spec.llc_ways, spec.llc_ways - spec.llc_ways // 2
            )
            out.append(
                Candidate(
                    machine.name,
                    "cat",
                    ids,
                    tuple(
                        AppPlacement(p.workload, p.threads, llc_ways=resident_mask)
                        for p in bare[:-1]
                    )
                    + (
                        AppPlacement(
                            tenant.workload, tenant.threads, llc_ways=arrival_mask
                        ),
                    ),
                )
            )
        members = residents + (tenant,)
        need = [cores_needed(t.threads, spec) for t in members]
        if sum(need) <= spec.n_cores:
            pinned: list[AppPlacement] = []
            offset = 0
            for t, n in zip(members, need):
                pinned.append(
                    AppPlacement(
                        t.workload,
                        t.threads,
                        pinning=tuple(range(offset, offset + n)),
                    )
                )
                offset += n
            out.append(Candidate(machine.name, "pinned", ids, tuple(pinned)))
    return out


@dataclass(frozen=True)
class Layout:
    """One resident-only re-partition of a machine — a :class:`Candidate`
    without an arrival.  The departure re-planner enumerates these for a
    vacated machine and applies the cleanest one."""

    machine: str
    variant: str
    #: Resident tenant ids, in admission order.
    tenants: tuple[str, ...]
    #: Engine-ready layout aligned with ``tenants``.
    placements: tuple[AppPlacement, ...]

    def assignments(
        self,
    ) -> "dict[str, tuple[int | None, tuple[int, ...] | None]]":
        """tenant id -> (llc_ways, pinning) for :meth:`Machine.apply_layout`
        (every resident named — this is a full re-partition)."""
        return {
            tid: (p.llc_ways, p.pinning)
            for tid, p in zip(self.tenants, self.placements)
        }


def enumerate_layouts(machine: Machine) -> list[Layout]:
    """Every re-partition of a machine's *current* residents, in
    :data:`VARIANTS` order: ``shared`` (masks and pins cleared), ``cat``
    (an equal N-way contiguous way partition — the
    :func:`~repro.core.catsweep.way_partition` shape), and ``pinned``
    (disjoint contiguous core blocks) when capacity allows.  Machines
    with fewer than two residents have nothing to arbitrate and
    enumerate nothing (eviction already canonicalizes them)."""
    residents = machine.residents()
    if len(residents) < 2:
        return []
    ids = tuple(t.tenant for t in residents)
    bare = tuple(AppPlacement(t.workload, t.threads) for t in residents)
    out = [Layout(machine.name, "shared", ids, bare)]
    spec = machine.spec
    if spec.llc_ways >= len(residents):
        masks = way_partition(
            spec.llc_ways, equal_way_shares(spec.llc_ways, len(residents))
        )
        out.append(
            Layout(
                machine.name,
                "cat",
                ids,
                tuple(
                    AppPlacement(t.workload, t.threads, llc_ways=m)
                    for t, m in zip(residents, masks)
                ),
            )
        )
    need = [cores_needed(t.threads, spec) for t in residents]
    if sum(need) <= spec.n_cores:
        pinned: list[AppPlacement] = []
        offset = 0
        for t, n in zip(residents, need):
            pinned.append(
                AppPlacement(
                    t.workload,
                    t.threads,
                    pinning=tuple(range(offset, offset + n)),
                )
            )
            offset += n
        out.append(Layout(machine.name, "pinned", ids, tuple(pinned)))
    return out


@dataclass(frozen=True)
class Decision:
    """One admission decision, fully serializable — the decision log a
    replay emits is a list of these, and byte-identical across runs."""

    time_s: float
    policy: str
    tenant: str
    workload: str
    threads: int
    admitted: bool
    #: Chosen machine / variant (``None`` when rejected).
    machine: str | None
    variant: str | None
    #: Co-resident tenant ids at admission time (the arrival excluded).
    co_tenants: tuple[str, ...]
    #: Predicted per-tenant slowdowns of the chosen layout, aligned
    #: ``co_tenants + (tenant,)``; empty when the policy does not score.
    predicted: tuple[float, ...]
    #: Candidates enumerated (0 = nothing had room).
    candidates: int
    #: ``"admitted"``, ``"no-capacity"`` or ``"slo-blocked"``.
    reason: str

    def payload(self) -> dict[str, Any]:
        return {
            "time_s": self.time_s,
            "policy": self.policy,
            "tenant": self.tenant,
            "workload": self.workload,
            "threads": self.threads,
            "admitted": self.admitted,
            "machine": self.machine,
            "variant": self.variant,
            "co_tenants": list(self.co_tenants),
            "predicted": list(self.predicted),
            "candidates": self.candidates,
            "reason": self.reason,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "Decision":
        return Decision(
            time_s=payload["time_s"],
            policy=payload["policy"],
            tenant=payload["tenant"],
            workload=payload["workload"],
            threads=payload["threads"],
            admitted=payload["admitted"],
            machine=payload["machine"],
            variant=payload["variant"],
            co_tenants=tuple(payload["co_tenants"]),
            predicted=tuple(payload["predicted"]),
            candidates=payload["candidates"],
            reason=payload["reason"],
        )


@dataclass(frozen=True)
class ReplanDecision:
    """One departure-triggered re-planning action, fully serializable.

    Its payload carries ``"event": "replan"`` as a discriminator, so a
    decision log can mix admissions and re-plans while plain
    :class:`Decision` payloads decode unchanged
    (:func:`decision_from_payload` dispatches on the key).
    """

    time_s: float
    policy: str
    #: The departed tenant whose eviction triggered this re-plan.
    trigger: str
    #: ``"repartition"`` (masks/pins redrawn in place) or ``"migrate"``
    #: (one resident moved to another machine).
    action: str
    #: The vacated machine.
    machine: str
    #: Destination machine of a migration (``None`` for repartitions).
    target: str | None
    #: The migrated tenant (``None`` for repartitions).
    tenant: str | None
    #: Layout variant applied (``shared`` / ``cat`` / ``pinned``).
    variant: str | None
    #: Tenants of the re-laid-out machine, after the action.
    tenants: tuple[str, ...]
    #: Per-tenant slowdowns before / after, aligned with the machine's
    #: residents at each instant.
    before: tuple[float, ...]
    after: tuple[float, ...]
    #: ``"cleaner-layout"`` or ``"slo-relief"``.
    reason: str

    #: Re-plans are bookkeeping, never admissions — kept ``False`` so a
    #: mixed decision list can be filtered uniformly.
    @property
    def admitted(self) -> bool:
        return False

    def payload(self) -> dict[str, Any]:
        return {
            "event": "replan",
            "time_s": self.time_s,
            "policy": self.policy,
            "trigger": self.trigger,
            "action": self.action,
            "machine": self.machine,
            "target": self.target,
            "tenant": self.tenant,
            "variant": self.variant,
            "tenants": list(self.tenants),
            "before": list(self.before),
            "after": list(self.after),
            "reason": self.reason,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "ReplanDecision":
        return ReplanDecision(
            time_s=payload["time_s"],
            policy=payload["policy"],
            trigger=payload["trigger"],
            action=payload["action"],
            machine=payload["machine"],
            target=payload["target"],
            tenant=payload["tenant"],
            variant=payload["variant"],
            tenants=tuple(payload["tenants"]),
            before=tuple(payload["before"]),
            after=tuple(payload["after"]),
            reason=payload["reason"],
        )


def decision_from_payload(
    payload: dict[str, Any],
) -> "Decision | ReplanDecision":
    """Decode one decision-log entry: admission payloads (no ``event``
    key — the pre-replan shape) or ``"event": "replan"`` entries."""
    if payload.get("event") == "replan":
        return ReplanDecision.from_payload(payload)
    return Decision.from_payload(payload)


def _reject(
    policy: str, tenant: Tenant, time_s: float, candidates: int, reason: str
) -> Decision:
    return Decision(
        time_s=time_s,
        policy=policy,
        tenant=tenant.tenant,
        workload=tenant.workload,
        threads=tenant.threads,
        admitted=False,
        machine=None,
        variant=None,
        co_tenants=(),
        predicted=(),
        candidates=candidates,
        reason=reason,
    )


class PlacementPolicy:
    """Interface: pick a candidate (or reject) for one arrival."""

    name: str = "abstract"

    def decide(
        self,
        cluster: Cluster,
        tenant: Tenant,
        evaluator: PlacementEvaluator,
        *,
        slo: float = VICTIM_THRESHOLD,
        time_s: float = 0.0,
    ) -> tuple[Decision, Candidate | None]:
        raise NotImplementedError


class BaselinePolicy(PlacementPolicy):
    """The naive slot-count bin-packer: best-fit on free slots (the
    fullest machine that still fits, packing before spreading), shared
    layout, no simulation, no SLO check."""

    name = "baseline"

    def decide(
        self,
        cluster: Cluster,
        tenant: Tenant,
        evaluator: PlacementEvaluator,
        *,
        slo: float = VICTIM_THRESHOLD,
        time_s: float = 0.0,
    ) -> tuple[Decision, Candidate | None]:
        fitting = [
            (m.free_slots, i, m)
            for i, m in enumerate(cluster)
            if m.fits(tenant)
        ]
        if not fitting:
            return _reject(self.name, tenant, time_s, 0, "no-capacity"), None
        _, _, machine = min(fitting)
        candidate = next(
            c
            for c in enumerate_candidates(cluster, tenant)
            if c.machine == machine.name and c.variant == "shared"
        )
        return (
            Decision(
                time_s=time_s,
                policy=self.name,
                tenant=tenant.tenant,
                workload=tenant.workload,
                threads=tenant.threads,
                admitted=True,
                machine=machine.name,
                variant="shared",
                co_tenants=candidate.tenants[:-1],
                predicted=(),
                candidates=len(fitting),
                reason="admitted",
            ),
            candidate,
        )


class InterferencePolicy(PlacementPolicy):
    """Score every candidate with the engine; admit the mildest layout
    that keeps *everyone* — residents and the arrival — under the SLO;
    reject when no layout does."""

    name = "interference"

    def decide(
        self,
        cluster: Cluster,
        tenant: Tenant,
        evaluator: PlacementEvaluator,
        *,
        slo: float = VICTIM_THRESHOLD,
        time_s: float = 0.0,
    ) -> tuple[Decision, Candidate | None]:
        candidates = enumerate_candidates(cluster, tenant)
        if not candidates:
            return _reject(self.name, tenant, time_s, 0, "no-capacity"), None
        scored: list[tuple[tuple[float, float], int, Candidate, tuple[float, ...]]] = []
        # One batched evaluation across the whole candidate set: the
        # rotations of every layout feed a single scenario fan-out per
        # machine spec (the serve daemon's cold-admission hot path).
        all_slowdowns = evaluator.slowdowns_many(
            [
                (cluster.machine(cand.machine).spec, cand.placements)
                for cand in candidates
            ]
        )
        for i, (cand, slowdowns) in enumerate(zip(candidates, all_slowdowns)):
            if any(s >= slo for s in slowdowns):
                continue
            score = (max(slowdowns), sum(slowdowns) / len(slowdowns))
            scored.append((score, i, cand, slowdowns))
        if not scored:
            return (
                _reject(self.name, tenant, time_s, len(candidates), "slo-blocked"),
                None,
            )
        _, _, best, predicted = min(scored, key=lambda row: (row[0], row[1]))
        return (
            Decision(
                time_s=time_s,
                policy=self.name,
                tenant=tenant.tenant,
                workload=tenant.workload,
                threads=tenant.threads,
                admitted=True,
                machine=best.machine,
                variant=best.variant,
                co_tenants=best.tenants[:-1],
                predicted=predicted,
                candidates=len(candidates),
                reason="admitted",
            ),
            best,
        )


#: Registry of shipped policies, in presentation order.
POLICIES: "dict[str, type[PlacementPolicy]]" = {
    BaselinePolicy.name: BaselinePolicy,
    InterferencePolicy.name: InterferencePolicy,
}


def get_policy(name: str) -> PlacementPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise SchedError(
            f"unknown policy {name!r}; use one of {', '.join(POLICIES)}"
        ) from None
