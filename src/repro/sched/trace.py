"""Deterministic arrival traces for scheduler replays.

An :class:`ArrivalTrace` is the scheduler's workload stream: a
time-ordered tuple of :class:`TraceEvent`\\ s (arrivals bringing
``solo_s`` seconds of solo work, plus optional explicit departures).
Traces come from two places and round-trip through one JSON payload:

* :meth:`ArrivalTrace.synthetic` — seeded generation from a workload
  roster: exponential inter-arrival gaps, uniform work sizes, workloads
  drawn round-robin-free from one ``random.Random(seed)`` stream.  The
  same ``(roster, seed, knobs)`` always yields the same byte-identical
  trace (``random`` is documented stable across Python versions, and
  every drawn float is rounded to microseconds so payloads stay tidy);
* :func:`load_trace` / :meth:`ArrivalTrace.to_json` — a trace file, for
  replaying a recorded or hand-written stream.

``parse_trace`` accepts the CLI's two spellings: ``seed:S:N[:T[:D]]``
(synthetic, N arrivals of T threads from seed S; an optional departure
fraction D synthesizes seeded early departures via
:meth:`ArrivalTrace.with_departures`) or a path to a trace JSON file.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.errors import SchedError
from repro.session.base import fingerprint as _fingerprint

#: Event kinds a trace may carry.
EVENT_KINDS = ("arrival", "departure")


@dataclass(frozen=True)
class TraceEvent:
    """One trace event.  Arrivals carry the tenant's shape and work;
    departures name a tenant to evict early (work left undone)."""

    time_s: float
    kind: str
    tenant: str
    workload: str = ""
    threads: int = 0
    solo_s: float = 0.0
    #: Advisory placement hint ("cat" / "pin" / ""): generators may mark
    #: an arrival as a candidate for cache fencing or core pinning;
    #: schedulers are free to ignore it.  Empty for plain arrivals, so
    #: traces without hints keep their historical byte-identical payload.
    hint: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise SchedError(
                f"unknown event kind {self.kind!r}; use one of {EVENT_KINDS}"
            )
        if self.hint not in ("", "cat", "pin"):
            raise SchedError(
                f"{self.tenant}: unknown hint {self.hint!r}; use 'cat' or 'pin'"
            )
        if self.time_s < 0:
            raise SchedError(f"{self.tenant}: event time must be >= 0")
        if not self.tenant:
            raise SchedError("an event needs a tenant id")
        if self.kind == "arrival":
            if not self.workload:
                raise SchedError(f"{self.tenant}: an arrival needs a workload")
            if self.threads < 1:
                raise SchedError(f"{self.tenant}: arrival threads must be >= 1")
            if self.solo_s <= 0:
                raise SchedError(f"{self.tenant}: arrival solo_s must be positive")

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "time_s": self.time_s,
            "kind": self.kind,
            "tenant": self.tenant,
        }
        if self.kind == "arrival":
            out["workload"] = self.workload
            out["threads"] = self.threads
            out["solo_s"] = self.solo_s
            if self.hint:
                out["hint"] = self.hint
        return out

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TraceEvent":
        return TraceEvent(
            time_s=payload["time_s"],
            kind=payload["kind"],
            tenant=payload["tenant"],
            workload=payload.get("workload", ""),
            threads=payload.get("threads", 0),
            solo_s=payload.get("solo_s", 0.0),
            hint=payload.get("hint", ""),
        )


@dataclass(frozen=True)
class ArrivalTrace:
    """A time-ordered, validated event stream."""

    events: tuple[TraceEvent, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not self.events:
            raise SchedError("a trace needs at least one event")
        last = 0.0
        seen: set[str] = set()
        for e in self.events:
            if e.time_s < last:
                raise SchedError(
                    f"trace events out of order at {e.tenant!r} (t={e.time_s})"
                )
            last = e.time_s
            if e.kind == "arrival":
                if e.tenant in seen:
                    raise SchedError(f"tenant id {e.tenant!r} arrives twice")
                seen.add(e.tenant)
            elif e.tenant not in seen:
                raise SchedError(
                    f"departure of {e.tenant!r} precedes its arrival"
                )

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def arrivals(self) -> tuple[TraceEvent, ...]:
        return tuple(e for e in self.events if e.kind == "arrival")

    @property
    def fingerprint(self) -> str:
        """Stable short hash of the canonical payload — the identity a
        replay report records for its input stream."""
        return _fingerprint("trace", self.payload())

    def payload(self) -> dict[str, Any]:
        return {"events": [e.payload() for e in self.events]}

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "ArrivalTrace":
        return ArrivalTrace(
            tuple(TraceEvent.from_payload(e) for e in payload.get("events", ()))
        )

    def to_json(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.payload(), indent=1) + "\n")
        return path

    # -- generation ---------------------------------------------------------

    @staticmethod
    def synthetic(
        workloads: Sequence[str],
        *,
        seed: int = 0,
        arrivals: int = 10,
        threads: int = 2,
        mean_gap_s: float = 2.0,
        solo_s: tuple[float, float] = (4.0, 9.0),
    ) -> "ArrivalTrace":
        """A seeded synthetic stream: ``arrivals`` tenants drawn from
        ``workloads`` with exponential inter-arrival gaps and uniform
        work sizes.  Same inputs, same trace — bit for bit."""
        if arrivals < 1:
            raise SchedError("a synthetic trace needs at least one arrival")
        if not workloads:
            raise SchedError("a synthetic trace needs a workload roster")
        rng = random.Random(seed)
        events: list[TraceEvent] = []
        t = 0.0
        for i in range(arrivals):
            t += rng.expovariate(1.0 / mean_gap_s)
            events.append(
                TraceEvent(
                    time_s=round(t, 6),
                    kind="arrival",
                    tenant=f"t{i:03d}",
                    workload=rng.choice(list(workloads)),
                    threads=threads,
                    solo_s=round(rng.uniform(*solo_s), 6),
                )
            )
        return ArrivalTrace(tuple(events))

    def with_departures(
        self,
        *,
        fraction: float = 0.35,
        seed: int = 0,
        window: tuple[float, float] = (0.3, 0.9),
    ) -> "ArrivalTrace":
        """This trace plus seeded *early departures*: a ``fraction`` of
        the arrivals (rounded, seeded sample) each gains a departure at
        ``arrival + U(window) * solo_s`` — inside the tenant's own solo
        residency, so the departure plausibly fires while it still
        holds a seat.  Same inputs, same trace — bit for bit; the
        service tier's drain uses this to exercise departure-triggered
        re-planning."""
        if fraction < 0 or fraction > 1:
            raise SchedError(f"departure fraction must lie in [0, 1], got {fraction}")
        arrivals = self.arrivals
        count = min(int(round(fraction * len(arrivals))), len(arrivals))
        if count < 1:
            return self
        rng = random.Random(seed)
        picks = sorted(rng.sample(range(len(arrivals)), count))
        extra = []
        for idx in picks:
            a = arrivals[idx]
            extra.append(
                TraceEvent(
                    time_s=round(a.time_s + rng.uniform(*window) * a.solo_s, 6),
                    kind="departure",
                    tenant=a.tenant,
                )
            )
        # Stable sort: at equal times existing events (arrivals first
        # among them) stay ahead of the synthesized departures.
        merged = sorted(self.events + tuple(extra), key=lambda e: e.time_s)
        return ArrivalTrace(tuple(merged))


def load_trace(path: "str | Path") -> ArrivalTrace:
    """Load a trace JSON file (the :meth:`ArrivalTrace.payload` shape)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SchedError(f"cannot read trace {path}: {exc}") from None
    if not isinstance(payload, dict):
        raise SchedError(f"trace {path} is not a JSON object")
    return ArrivalTrace.from_payload(payload)


def parse_trace(spec: str, workloads: Sequence[str]) -> ArrivalTrace:
    """Parse a CLI trace spec: ``seed:S:N[:T[:D]]`` (synthetic — seed S,
    N arrivals, T threads each, default 2; D > 0 additionally
    synthesizes early departures for that fraction of arrivals),
    ``diurnal:S[:H[:T]]`` (a diurnal open-loop day from
    :mod:`repro.traffic` — seed S, H trace hours, time scale T), or a
    trace-file path.  See ``docs/trace-format.md`` for the grammar."""
    if spec.startswith("diurnal:"):
        # Lazy import: sched must stay importable without traffic.
        from repro.traffic.model import parse_diurnal

        return parse_diurnal(spec, workloads)
    if spec.startswith("seed:"):
        parts = spec.split(":")
        try:
            seed = int(parts[1])
            arrivals = int(parts[2]) if len(parts) > 2 else 10
            threads = int(parts[3]) if len(parts) > 3 else 2
            departures = float(parts[4]) if len(parts) > 4 else 0.0
        except (IndexError, ValueError):
            raise SchedError(
                f"bad trace spec {spec!r}; expected seed:S:N[:T[:D]], "
                f"e.g. seed:0:10 or seed:0:10:2:0.5"
            ) from None
        trace = ArrivalTrace.synthetic(
            workloads, seed=seed, arrivals=arrivals, threads=threads
        )
        if departures > 0:
            trace = trace.with_departures(fraction=departures, seed=seed)
        return trace
    return load_trace(spec)
