"""The simulated cluster a placement scheduler decides over.

A :class:`Cluster` is a named set of :class:`Machine`\\ s; each machine
carries a :class:`~repro.machine.spec.MachineSpec` plus its resident
:class:`Tenant`\\ s — admitted workloads that occupy hardware-thread
slots (and optionally CAT LLC ways / pinned cores) until they finish
their work.  The model is deliberately the Scenario API's vocabulary:
``Machine.placements()`` returns the exact
:class:`~repro.session.scenario.AppPlacement` tuple the engine
simulates, so "what does this machine's current layout cost each
tenant?" is one :meth:`Session.run_scenario` rotation away — and every
answer lands in (or comes from) the shared result store.

Capacity accounting mirrors the engine's own validation: a machine has
``spec.n_slots`` hardware-thread slots (cores x 2 under SMT) and
``spec.n_cores`` physical cores; a tenant's threads occupy
``ceil(threads / slots_per_core)`` cores when pinned.  Everything here
is plain deterministic state — no clocks, no randomness — so a replay
over a cluster is reproducible byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro.errors import SchedError
from repro.machine.spec import MachineSpec
from repro.session.scenario import AppPlacement


def cores_needed(threads: int, spec: MachineSpec) -> int:
    """Physical cores a tenant's threads occupy when pinned: each core
    offers ``slots_per_core`` hardware-thread slots."""
    return -(-threads // spec.slots_per_core)


@dataclass(frozen=True)
class Tenant:
    """One admitted (or arriving) workload instance.

    ``tenant`` is the instance id (two arrivals of the same workload
    are distinct tenants); ``solo_s`` is the work it brings, expressed
    in seconds of *solo* execution — under interference that work
    drains at ``1 / slowdown`` of real time, which is how a replay
    turns placement quality into residency time.
    """

    tenant: str
    workload: str
    threads: int
    #: Work to do, in seconds of solo execution.
    solo_s: float
    arrival_s: float = 0.0
    #: CAT way-mask bitmap assigned by the scheduler (``None`` = all ways).
    llc_ways: int | None = None
    #: Cores assigned by the scheduler (``None`` = unpinned).
    pinning: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise SchedError("a tenant needs an id")
        if self.threads < 1:
            raise SchedError(f"{self.tenant}: threads must be >= 1")
        if self.solo_s <= 0:
            raise SchedError(f"{self.tenant}: solo_s must be positive")
        if self.pinning is not None:
            object.__setattr__(self, "pinning", tuple(self.pinning))

    def placement(self) -> AppPlacement:
        """This tenant's seat in an engine scenario."""
        return AppPlacement(
            self.workload,
            self.threads,
            llc_ways=self.llc_ways,
            pinning=self.pinning,
        )

    def unpartitioned(self) -> "Tenant":
        """This tenant stripped of way masks and pinnings."""
        return replace(self, llc_ways=None, pinning=None)

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "tenant": self.tenant,
            "workload": self.workload,
            "threads": self.threads,
            "solo_s": self.solo_s,
            "arrival_s": self.arrival_s,
        }
        if self.llc_ways is not None:
            out["llc_ways"] = self.llc_ways
        if self.pinning is not None:
            out["pinning"] = list(self.pinning)
        return out

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "Tenant":
        pin = payload.get("pinning")
        return Tenant(
            tenant=payload["tenant"],
            workload=payload["workload"],
            threads=payload["threads"],
            solo_s=payload["solo_s"],
            arrival_s=payload.get("arrival_s", 0.0),
            llc_ways=payload.get("llc_ways"),
            pinning=tuple(pin) if pin is not None else None,
        )


@dataclass
class Machine:
    """One named machine: a spec plus its resident tenants, in
    admission order (the order their placements hand to the engine)."""

    name: str
    spec: MachineSpec
    tenants: dict[str, Tenant] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedError("a machine needs a name")

    # -- capacity -----------------------------------------------------------

    @property
    def used_slots(self) -> int:
        return sum(t.threads for t in self.tenants.values())

    @property
    def free_slots(self) -> int:
        return self.spec.n_slots - self.used_slots

    @property
    def used_cores(self) -> int:
        """Cores the residents would occupy if all were pinned —
        the bound a disjoint-pinning layout must fit under."""
        return sum(cores_needed(t.threads, self.spec) for t in self.tenants.values())

    @property
    def free_cores(self) -> int:
        return self.spec.n_cores - self.used_cores

    def fits(self, tenant: Tenant) -> bool:
        return tenant.threads <= self.free_slots

    # -- residency ----------------------------------------------------------

    def residents(self) -> tuple[Tenant, ...]:
        return tuple(self.tenants.values())

    def placements(self) -> tuple[AppPlacement, ...]:
        """The machine's current layout as an engine-ready placement
        tuple (resident order)."""
        return tuple(t.placement() for t in self.tenants.values())

    def admit(self, tenant: Tenant) -> None:
        if tenant.tenant in self.tenants:
            raise SchedError(f"{self.name}: tenant {tenant.tenant!r} already resident")
        if not self.fits(tenant):
            raise SchedError(
                f"{self.name}: {tenant.tenant!r} needs {tenant.threads} slot(s), "
                f"only {self.free_slots} free"
            )
        self.tenants[tenant.tenant] = tenant

    def evict(self, tenant_id: str) -> Tenant:
        """Remove a tenant; a machine left with at most one resident
        drops its partitions (masks and pins exist only to arbitrate
        between co-residents, and clearing them deterministically keeps
        layout identity — hence cache keys — canonical)."""
        try:
            gone = self.tenants.pop(tenant_id)
        except KeyError:
            raise SchedError(f"{self.name}: no tenant {tenant_id!r}") from None
        if len(self.tenants) <= 1:
            self.tenants = {
                tid: t.unpartitioned() for tid, t in self.tenants.items()
            }
        return gone

    def apply_layout(
        self,
        assignments: "dict[str, tuple[int | None, tuple[int, ...] | None]]",
    ) -> None:
        """Re-partition the residents: ``assignments`` maps tenant id to
        its new ``(llc_ways, pinning)``.  Every resident must be named —
        a partial re-partition would leave stale masks behind."""
        missing = set(self.tenants) - set(assignments)
        extra = set(assignments) - set(self.tenants)
        if missing or extra:
            raise SchedError(
                f"{self.name}: layout must name exactly the residents "
                f"(missing {sorted(missing)}, unknown {sorted(extra)})"
            )
        self.tenants = {
            tid: replace(t, llc_ways=assignments[tid][0], pinning=assignments[tid][1])
            for tid, t in self.tenants.items()
        }

    def payload(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "smt": self.spec.hyperthreading,
            "tenants": [t.payload() for t in self.tenants.values()],
        }


@dataclass
class Cluster:
    """A named set of machines plus tenant lookup and utilization."""

    machines: tuple[Machine, ...]

    def __post_init__(self) -> None:
        self.machines = tuple(self.machines)
        if not self.machines:
            raise SchedError("a cluster needs at least one machine")
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise SchedError(f"duplicate machine names: {names}")
        self._by_name = {m.name: m for m in self.machines}

    @staticmethod
    def homogeneous(count: int, spec: MachineSpec, *, prefix: str = "m") -> "Cluster":
        """``count`` empty machines of one spec, named ``m0..m<N-1>``."""
        if count < 1:
            raise SchedError("cluster size must be >= 1")
        return Cluster(tuple(Machine(f"{prefix}{i}", spec) for i in range(count)))

    def __iter__(self) -> Iterator[Machine]:
        return iter(self.machines)

    def machine(self, name: str) -> Machine:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchedError(f"no machine {name!r} in cluster") from None

    def find(self, tenant_id: str) -> Machine | None:
        """The machine hosting a tenant, or ``None``."""
        for m in self.machines:
            if tenant_id in m.tenants:
                return m
        return None

    @property
    def total_slots(self) -> int:
        return sum(m.spec.n_slots for m in self.machines)

    @property
    def used_slots(self) -> int:
        return sum(m.used_slots for m in self.machines)

    def payload(self) -> dict[str, Any]:
        return {"machines": [m.payload() for m in self.machines]}

    @staticmethod
    def from_payload(payload: dict[str, Any], base_spec: MachineSpec) -> "Cluster":
        """Rebuild a cluster from :meth:`payload`.  Machine specs are
        expressed relative to ``base_spec`` (the session's machine):
        ``"smt": true`` selects its SMT variant — a cluster file never
        smuggles in a spec the session's caches are not keyed by.
        """
        machines = []
        for m in payload.get("machines", ()):
            spec = base_spec.smt_variant() if m.get("smt") else base_spec
            machine = Machine(m.get("name", ""), spec)
            for t in m.get("tenants", ()):
                machine.admit(Tenant.from_payload(t))
            machines.append(machine)
        return Cluster(tuple(machines))
