"""Unit helpers used across the package.

The hardware model works internally in bytes, CPU cycles and seconds.
These helpers keep call-sites legible (``20 * MiB`` instead of
``20 * 1024 * 1024``) and centralize the GB/s convention used by the
paper: Intel PCM reports decimal gigabytes per second, so bandwidth
figures use ``GB = 1e9`` while cache capacities use binary ``KiB/MiB``.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Decimal units (bandwidth, following Intel PCM's GB/s convention).
KB: int = 1_000
MB: int = 1_000_000
GB: int = 1_000_000_000

#: Size of one cache line on the modelled Sandy Bridge machine.
CACHE_LINE: int = 64


def bytes_to_mb_s(byte_rate: float) -> float:
    """Convert a byte/s rate into the MB/s figure Fig 3 of the paper plots."""
    return byte_rate / MB


def bytes_to_gb_s(byte_rate: float) -> float:
    """Convert a byte/s rate into the GB/s figure Table III reports."""
    return byte_rate / GB


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Convert a cycle count into wall-clock seconds at ``freq_hz``."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return cycles / freq_hz


def seconds_to_cycles(seconds: float, freq_hz: float) -> float:
    """Convert wall-clock seconds into cycles at ``freq_hz``."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return seconds * freq_hz
