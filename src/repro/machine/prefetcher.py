"""The four Sandy Bridge hardware prefetchers (paper Section IV-C).

Each engine watches the demand-access stream of one core and proposes
prefetch fills:

* :class:`L1NextLinePrefetcher` — "DCU prefetcher": fetches the next
  cache line into L1D after a demand miss.
* :class:`L1IpStridePrefetcher` — "DCU IP prefetcher": per-instruction-
  pointer stride detection; prefetches ``line + stride`` once a stride
  repeats with enough confidence.
* :class:`L2AdjacentLinePrefetcher` — fetches the companion line of the
  128-byte-aligned pair into L2 on an L2 miss.
* :class:`L2StreamerPrefetcher` — detects ascending/descending streams
  within a 4 KiB page and runs ahead of them by ``depth`` lines.

The hierarchy consults the per-core MSR 0x1A4 before invoking any of
them, so flipping the MSR bit is exactly how a prefetcher disappears —
the same control path the paper uses on real hardware.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.machine.spec import PrefetcherSpec

#: Lines per 4 KiB page with 64-byte lines.
_LINES_PER_PAGE = 64


def _same_page(a: int, b: int) -> bool:
    """Hardware prefetchers never cross 4 KiB page boundaries (the
    physical address of the next page is unknown to them)."""
    return a // _LINES_PER_PAGE == b // _LINES_PER_PAGE


class L1NextLinePrefetcher:
    """DCU next-line prefetcher: on an L1D demand miss, fetch ``line+1``
    (within the same 4 KiB page)."""

    name = "l1_next_line"

    def observe(self, ip: int, line: int, *, miss: bool) -> list[int]:
        """Return prefetch candidates for a demand access at ``line``."""
        if not miss or not _same_page(line, line + 1):
            return []
        return [line + 1]

    def reset(self) -> None:
        """Stateless; provided for interface symmetry."""


class L1IpStridePrefetcher:
    """DCU IP-stride prefetcher.

    Keeps a small table keyed by the low bits of the instruction
    pointer.  When the same IP issues loads whose line addresses step by
    a constant stride ``conf`` times in a row, it prefetches one stride
    ahead.
    """

    name = "l1_ip_stride"

    def __init__(self, spec: PrefetcherSpec) -> None:
        self._entries = spec.l1_ip_entries
        self._confidence = spec.l1_ip_confidence
        # ip-slot -> (last_line, stride, confidence)
        self._table: dict[int, tuple[int, int, int]] = {}

    def observe(self, ip: int, line: int, *, miss: bool) -> list[int]:
        """Update the stride table with this access; maybe prefetch."""
        slot = ip % self._entries
        prev = self._table.get(slot)
        out: list[int] = []
        if prev is None:
            self._table[slot] = (line, 0, 0)
            return out
        last_line, stride, conf = prev
        new_stride = line - last_line
        if new_stride == 0:
            # Same line again: keep state, nothing to learn.
            return out
        if new_stride == stride:
            conf += 1
        else:
            stride, conf = new_stride, 1
        target = line + stride
        if conf >= self._confidence and target >= 0 and _same_page(line, target):
            out.append(target)
        self._table[slot] = (line, stride, conf)
        return out

    def reset(self) -> None:
        """Forget all learned strides."""
        self._table.clear()


class L2AdjacentLinePrefetcher:
    """Adjacent-line ("buddy") prefetcher: on an L2 miss, fetch the other
    half of the 128-byte-aligned line pair."""

    name = "l2_adjacent"

    def observe(self, ip: int, line: int, *, miss: bool) -> list[int]:
        """Return the companion line on a miss."""
        if not miss:
            return []
        return [line ^ 1]

    def reset(self) -> None:
        """Stateless; provided for interface symmetry."""


class L2StreamerPrefetcher:
    """L2 streamer: per-4 KiB-page stream detection.

    Tracks the most recent access direction per page in a small LRU
    table.  Once ``threshold`` monotonic accesses are seen, prefetches
    the next ``depth`` lines in the detected direction, clipped to the
    page (the real streamer does not cross 4 KiB boundaries).
    """

    name = "l2_stream"

    _TRACKED_PAGES = 32

    def __init__(self, spec: PrefetcherSpec) -> None:
        self._depth = spec.l2_stream_depth
        self._threshold = spec.l2_stream_threshold
        # page -> (last_offset, direction, run_length)
        self._pages: OrderedDict[int, tuple[int, int, int]] = OrderedDict()

    def observe(self, ip: int, line: int, *, miss: bool) -> list[int]:
        """Update page-stream state; return run-ahead prefetch lines."""
        page, offset = divmod(line, _LINES_PER_PAGE)
        state = self._pages.pop(page, None)
        out: list[int] = []
        if state is None:
            self._pages[page] = (offset, 0, 1)
        else:
            last_offset, direction, run = state
            step = offset - last_offset
            if step == 0:
                self._pages[page] = state
            else:
                new_dir = 1 if step > 0 else -1
                run = run + 1 if new_dir == direction or direction == 0 else 1
                self._pages[page] = (offset, new_dir, run)
                if run >= self._threshold:
                    for k in range(1, self._depth + 1):
                        nxt = offset + new_dir * k
                        if 0 <= nxt < _LINES_PER_PAGE:
                            out.append(page * _LINES_PER_PAGE + nxt)
        while len(self._pages) > self._TRACKED_PAGES:
            self._pages.popitem(last=False)
        return out

    def reset(self) -> None:
        """Forget all tracked pages."""
        self._pages.clear()


class CorePrefetchers:
    """The full per-core prefetcher complement with MSR-style gating.

    ``enabled`` mirrors the decoded MSR 0x1A4 state; the hierarchy
    refreshes it from :class:`repro.machine.msr.MsrBank` before use.
    """

    def __init__(self, spec: PrefetcherSpec) -> None:
        self.l1_next = L1NextLinePrefetcher()
        self.l1_ip = L1IpStridePrefetcher(spec)
        self.l2_adjacent = L2AdjacentLinePrefetcher()
        self.l2_stream = L2StreamerPrefetcher(spec)
        self.enabled = {
            "l1_next_line": True,
            "l1_ip_stride": True,
            "l2_adjacent": True,
            "l2_stream": True,
        }

    def l1_candidates(self, ip: int, line: int, *, miss: bool) -> list[int]:
        """Prefetch lines to fill into L1D for this demand access."""
        out: list[int] = []
        if self.enabled["l1_next_line"]:
            out.extend(self.l1_next.observe(ip, line, miss=miss))
        if self.enabled["l1_ip_stride"]:
            out.extend(self.l1_ip.observe(ip, line, miss=miss))
        return out

    def l2_candidates(self, ip: int, line: int, *, miss: bool) -> list[int]:
        """Prefetch lines to fill into L2 for this L2 access."""
        out: list[int] = []
        if self.enabled["l2_adjacent"]:
            out.extend(self.l2_adjacent.observe(ip, line, miss=miss))
        if self.enabled["l2_stream"]:
            out.extend(self.l2_stream.observe(ip, line, miss=miss))
        return out

    def reset(self) -> None:
        """Clear all learned state (stream tables, stride tables)."""
        self.l1_next.reset()
        self.l1_ip.reset()
        self.l2_adjacent.reset()
        self.l2_stream.reset()
