"""Per-core cache hierarchy: private L1D/L2 in front of the shared LLC.

The access path mirrors the paper's platform (Fig 1): a demand access
checks L1D, then the private L2, then the shared LLC, then DRAM.  The
per-core prefetcher complement observes the demand stream at the level
it belongs to and issues fills; prefetch fills that are absent from the
LLC cost memory bandwidth, which is the mechanism behind "prefetcher-
sensitive applications consume significant bandwidth" (Section IV-C).

Latencies are load-to-use and additive down the hierarchy.  The DRAM
component is scaled by the queueing multiplier for the utilization the
caller reports (the trace profiler passes its current estimate; 0.0
means an unloaded bus).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import SetAssociativeCache
from repro.machine.memory import MemoryController, queueing_latency_multiplier
from repro.machine.prefetcher import CorePrefetchers
from repro.machine.spec import MachineSpec


@dataclass
class HierarchyStats:
    """Per-core summary of where demand accesses were served."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    mem_accesses: int = 0
    #: Sum of per-access latencies (cycles), L1 hits included.
    total_latency_cycles: float = 0.0
    #: Sum of latency cycles spent beyond the private L2 (the quantity
    #: the paper's L2_PCP metric is built from).
    pending_cycles: float = 0.0

    def reset(self) -> None:
        """Zero all counters in place."""
        self.accesses = self.l1_hits = self.l2_hits = 0
        self.llc_hits = self.mem_accesses = 0
        self.total_latency_cycles = 0.0
        self.pending_cycles = 0.0

    @property
    def l2_misses(self) -> int:
        """Demand accesses that went past the private L2."""
        return self.llc_hits + self.mem_accesses


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one demand access through the full hierarchy."""

    level: str  # "L1" | "L2" | "LLC" | "MEM"
    latency_cycles: float


class CoreCacheHierarchy:
    """One core's private caches plus its view of the shared levels."""

    def __init__(
        self,
        core_id: int,
        spec: MachineSpec,
        llc: SetAssociativeCache,
        memory: MemoryController,
    ) -> None:
        self.core_id = core_id
        self.spec = spec
        self.l1d = SetAssociativeCache(spec.l1d)
        self.l2 = SetAssociativeCache(spec.l2)
        self.llc = llc
        self.memory = memory
        self.prefetchers = CorePrefetchers(spec.prefetch)
        self.stats = HierarchyStats()

    # -- helpers ---------------------------------------------------------

    def _fill_from_below(self, line: int, owner: int, *, into_l1: bool) -> bool:
        """Bring ``line`` into the hierarchy for a prefetch.

        Fills the target level and any missing level below it.  Returns
        True when DRAM traffic was generated (line absent from LLC).
        """
        from_mem = False
        if not self.llc.probe(line):
            self.llc.fill(line, owner=owner)
            self.memory.prefetch_fill(owner)
            from_mem = True
        out_l2 = self.l2.fill(line)
        if out_l2.evicted_dirty:
            # Dirty L2 victim: push to LLC (non-inclusive write-back path).
            self.llc.access(out_l2.evicted_line, write=True, owner=owner)
        if into_l1:
            self.l1d.fill(line)
        return from_mem

    # -- public API ------------------------------------------------------

    def access(
        self,
        ip: int,
        line: int,
        *,
        write: bool = False,
        owner: int = 0,
        bus_utilization: float = 0.0,
    ) -> AccessResult:
        """One demand access; updates caches, prefetchers and counters."""
        st = self.stats
        st.accesses += 1

        l1_out = self.l1d.access(line, write=write)
        l1_miss = not l1_out.hit
        for pf in self.prefetchers.l1_candidates(ip, line, miss=l1_miss):
            self._fill_from_below(pf, owner, into_l1=True)
        if l1_out.hit:
            st.l1_hits += 1
            lat = float(self.spec.l1d.latency_cycles)
            st.total_latency_cycles += lat
            return AccessResult("L1", lat)
        if l1_out.evicted_dirty:
            self.l2.access(l1_out.evicted_line, write=True)

        l2_out = self.l2.access(line)
        l2_miss = not l2_out.hit
        for pf in self.prefetchers.l2_candidates(ip, line, miss=l2_miss):
            self._fill_from_below(pf, owner, into_l1=False)
        if l2_out.hit:
            st.l2_hits += 1
            lat = float(self.spec.l2.latency_cycles)
            st.total_latency_cycles += lat
            return AccessResult("L2", lat)
        if l2_out.evicted_dirty:
            self.llc.access(l2_out.evicted_line, write=True, owner=owner)

        llc_out = self.llc.access(line, write=write, owner=owner)
        if llc_out.evicted_dirty:
            self.memory.writeback(owner)
        if llc_out.hit:
            st.llc_hits += 1
            lat = float(self.spec.llc.latency_cycles)
            st.total_latency_cycles += lat
            st.pending_cycles += lat
            return AccessResult("LLC", lat)

        st.mem_accesses += 1
        self.memory.demand_fill(owner)
        mem_lat = self.spec.memory.idle_latency_cycles * queueing_latency_multiplier(
            bus_utilization, self.spec.memory
        )
        lat = self.spec.llc.latency_cycles + mem_lat
        st.total_latency_cycles += lat
        st.pending_cycles += lat
        return AccessResult("MEM", lat)

    def reset(self) -> None:
        """Clear private caches, prefetcher state and counters (the
        shared LLC and memory controller are reset by the machine)."""
        self.l1d.reset()
        self.l2.reset()
        self.prefetchers.reset()
        self.stats.reset()
