"""Energy model for consolidation-efficiency analysis.

The paper's opening motivation is *energy*: "task consolidation can
significantly improve hardware utilization and result in high energy
efficiency" (Section I).  This module quantifies that claim for any
schedule the engine can evaluate: a simple but standard server energy
model — static (platform) power, per-active-core power scaled by
utilization, and DRAM energy per byte moved — integrated over the
runtimes and bandwidth the engine reports.

Default constants approximate a 2012 Sandy Bridge-EP server (130 W TDP
socket in a ~250 W platform; ~60 pJ/bit DRAM transfer energy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.results import AppMetrics
from repro.errors import MachineConfigError


@dataclass(frozen=True)
class EnergySpec:
    """Server power/energy parameters."""

    #: Platform power drawn regardless of load (fans, board, idle
    #: uncore, PSU losses) — the term consolidation amortizes.
    static_watts: float = 120.0
    #: Incremental power of one fully-busy core.
    core_active_watts: float = 12.0
    #: DRAM + memory-channel energy per byte transferred.
    dram_joules_per_byte: float = 60e-12 * 8

    def __post_init__(self) -> None:
        if self.static_watts < 0 or self.core_active_watts < 0:
            raise MachineConfigError("power terms must be non-negative")
        if self.dram_joules_per_byte < 0:
            raise MachineConfigError("DRAM energy must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules attributed to each component over one execution window."""

    static_j: float
    core_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        return self.static_j + self.core_j + self.dram_j


def energy_of_window(
    spec: EnergySpec,
    *,
    duration_s: float,
    busy_core_seconds: float,
    bus_bytes: float,
) -> EnergyBreakdown:
    """Energy of a machine window.

    Args:
        spec: Power model.
        duration_s: Wall-clock length of the window.
        busy_core_seconds: Sum over cores of their busy time.
        bus_bytes: Total DRAM traffic in the window.
    """
    if duration_s < 0 or busy_core_seconds < 0 or bus_bytes < 0:
        raise MachineConfigError("window quantities must be non-negative")
    return EnergyBreakdown(
        static_j=spec.static_watts * duration_s,
        core_j=spec.core_active_watts * busy_core_seconds,
        dram_j=spec.dram_joules_per_byte * bus_bytes,
    )


def energy_of_run(spec: EnergySpec, metrics: AppMetrics, *, alone: bool = True) -> EnergyBreakdown:
    """Energy of one application's engine run.

    With ``alone=True`` the full static power is charged to this run
    (the machine exists only for it); co-run accounting should instead
    compute one shared window via :func:`energy_of_window`.
    """
    busy = metrics.runtime_s * metrics.threads
    return energy_of_window(
        spec,
        duration_s=metrics.runtime_s if alone else 0.0,
        busy_core_seconds=busy,
        bus_bytes=metrics.total.bus_bytes,
    )
