"""Hardware model of the paper's platform (trace layer).

Public surface:

* :func:`~repro.machine.spec.xeon_e5_4650` / :class:`~repro.machine.spec.MachineSpec`
  — the platform configuration (Section III-A);
* :class:`~repro.machine.machine.Machine` — the assembled machine with
  core binding, MSR-gated prefetchers, shared LLC and DRAM model;
* :class:`~repro.machine.cache.SetAssociativeCache` — exact LRU cache;
* :class:`~repro.machine.msr.MsrBank` / MSR constants — prefetcher control.
"""

from repro.machine.cache import AccessOutcome, CacheStats, SetAssociativeCache
from repro.machine.energy import EnergyBreakdown, EnergySpec, energy_of_run, energy_of_window
from repro.machine.hierarchy import AccessResult, CoreCacheHierarchy, HierarchyStats
from repro.machine.machine import Machine
from repro.machine.multicore import TraceAppStats, TraceCoRunResult, TraceCoRunner
from repro.machine.memory import (
    MemoryController,
    TransferStats,
    effective_shares,
    queueing_latency_multiplier,
)
from repro.machine.msr import MSR_MISC_FEATURE_CONTROL, MsrBank, PrefetchDisable
from repro.machine.prefetcher import (
    CorePrefetchers,
    L1IpStridePrefetcher,
    L1NextLinePrefetcher,
    L2AdjacentLinePrefetcher,
    L2StreamerPrefetcher,
)
from repro.machine.spec import (
    CacheSpec,
    MachineSpec,
    MemorySpec,
    PrefetcherSpec,
    small_test_machine,
    xeon_e5_4650,
)

__all__ = [
    "AccessOutcome",
    "AccessResult",
    "CacheSpec",
    "CacheStats",
    "CoreCacheHierarchy",
    "CorePrefetchers",
    "EnergyBreakdown",
    "EnergySpec",
    "TraceAppStats",
    "TraceCoRunResult",
    "TraceCoRunner",
    "energy_of_run",
    "energy_of_window",
    "HierarchyStats",
    "L1IpStridePrefetcher",
    "L1NextLinePrefetcher",
    "L2AdjacentLinePrefetcher",
    "L2StreamerPrefetcher",
    "MSR_MISC_FEATURE_CONTROL",
    "Machine",
    "MachineSpec",
    "MemoryController",
    "MemorySpec",
    "MsrBank",
    "PrefetchDisable",
    "PrefetcherSpec",
    "SetAssociativeCache",
    "TransferStats",
    "effective_shares",
    "queueing_latency_multiplier",
    "small_test_machine",
    "xeon_e5_4650",
]
