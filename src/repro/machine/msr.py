"""Model-Specific Register (MSR) emulation.

The paper toggles the four Sandy Bridge hardware prefetchers through the
per-core MSR ``0x1A4`` (MISC_FEATURE_CONTROL); each *set* bit *disables*
one prefetcher (Section IV-C, Intel SDM).  We emulate exactly that
register so the prefetcher-sensitivity experiment (Fig 4) manipulates
the model the same way ``wrmsr`` manipulates the real machine.

Bit assignments (Intel SDM vol. 4, table 2-20):

====  =========================================
bit   prefetcher disabled when set
====  =========================================
0     L2 hardware prefetcher (streamer)
1     L2 adjacent cache line prefetcher
2     L1 data cache (DCU) next-line prefetcher
3     L1 data cache IP-stride prefetcher
====  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntFlag

from repro.errors import MachineConfigError

#: Address of MISC_FEATURE_CONTROL, the prefetcher-control MSR.
MSR_MISC_FEATURE_CONTROL: int = 0x1A4


class PrefetchDisable(IntFlag):
    """Bit flags of MSR 0x1A4: a set bit disables the prefetcher."""

    L2_STREAM = 1 << 0
    L2_ADJACENT = 1 << 1
    L1_NEXT_LINE = 1 << 2
    L1_IP_STRIDE = 1 << 3

    ALL = L2_STREAM | L2_ADJACENT | L1_NEXT_LINE | L1_IP_STRIDE
    NONE = 0


@dataclass
class MsrBank:
    """Per-core MSR file.

    Only ``0x1A4`` has modelled semantics; other addresses are stored
    and read back verbatim, which is how scratch MSRs behave and keeps
    the interface honest for tooling built on top.
    """

    n_cores: int
    _regs: list[dict[int, int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise MachineConfigError("MsrBank needs at least one core")
        self._regs = [{} for _ in range(self.n_cores)]

    def _check_core(self, core: int) -> None:
        if not (0 <= core < self.n_cores):
            raise MachineConfigError(
                f"core {core} out of range [0, {self.n_cores})"
            )

    def read(self, core: int, address: int) -> int:
        """``rdmsr``: read ``address`` on ``core`` (unwritten MSRs read 0)."""
        self._check_core(core)
        return self._regs[core].get(address, 0)

    def write(self, core: int, address: int, value: int) -> None:
        """``wrmsr``: write ``value`` to ``address`` on ``core``."""
        self._check_core(core)
        if value < 0:
            raise MachineConfigError("MSR values are unsigned")
        if address == MSR_MISC_FEATURE_CONTROL and value & ~int(PrefetchDisable.ALL):
            raise MachineConfigError(
                f"reserved bits set in MSR 0x1A4 write: {value:#x}"
            )
        self._regs[core][address] = value

    def write_all(self, address: int, value: int) -> None:
        """Write the same value on every core (how the experiments flip
        prefetchers machine-wide)."""
        for core in range(self.n_cores):
            self.write(core, address, value)

    # -- prefetcher-specific conveniences -------------------------------

    def prefetchers_enabled(self, core: int) -> dict[str, bool]:
        """Decode 0x1A4 on ``core`` into per-prefetcher enable states."""
        raw = PrefetchDisable(self.read(core, MSR_MISC_FEATURE_CONTROL))
        return {
            "l2_stream": PrefetchDisable.L2_STREAM not in raw,
            "l2_adjacent": PrefetchDisable.L2_ADJACENT not in raw,
            "l1_next_line": PrefetchDisable.L1_NEXT_LINE not in raw,
            "l1_ip_stride": PrefetchDisable.L1_IP_STRIDE not in raw,
        }

    def set_all_prefetchers(self, enabled: bool) -> None:
        """Enable or disable all four prefetchers on every core."""
        value = int(PrefetchDisable.NONE if enabled else PrefetchDisable.ALL)
        self.write_all(MSR_MISC_FEATURE_CONTROL, value)

    def disable(self, core: int, flags: PrefetchDisable) -> None:
        """Set additional disable bits on one core."""
        cur = self.read(core, MSR_MISC_FEATURE_CONTROL)
        self.write(core, MSR_MISC_FEATURE_CONTROL, cur | int(flags))

    def enable(self, core: int, flags: PrefetchDisable) -> None:
        """Clear disable bits on one core."""
        cur = self.read(core, MSR_MISC_FEATURE_CONTROL)
        self.write(core, MSR_MISC_FEATURE_CONTROL, cur & ~int(flags))
