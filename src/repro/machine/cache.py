"""Exact set-associative LRU cache model.

This is the trace-layer workhorse: every level (L1D, L2, shared LLC) is
an instance of :class:`SetAssociativeCache`.  State lives in flat numpy
arrays (one slot per line) so a cache is cheap to construct and reset;
the per-access logic is a short Python path over one set's ways, exact
LRU, which is plenty fast for the trace volumes the profiler uses
(~10^5–10^6 accesses).

Lines carry two bits of provenance used by the experiments:

* ``owner`` — which co-running application inserted the line; lets the
  shared LLC report *cross-evictions* (app A evicting app B's data), the
  mechanism behind the victim MPKI inflation of Figs 7–8.
* ``prefetched`` — whether the line was filled by a hardware prefetcher
  and not yet demanded; lets the prefetcher-sensitivity experiment count
  *useful* prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineConfigError
from repro.machine.spec import CacheSpec


@dataclass
class CacheStats:
    """Counters accumulated by one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    #: Demand hits on lines that were brought in by a prefetcher.
    prefetch_hits: int = 0
    #: Evictions where the evicting owner differs from the line's owner.
    cross_evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses (hits + misses)."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Demand miss ratio; 0.0 when no accesses were made."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero every counter in place."""
        self.hits = self.misses = self.evictions = self.writebacks = 0
        self.prefetch_fills = self.prefetch_hits = self.cross_evictions = 0

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            writebacks=self.writebacks,
            prefetch_fills=self.prefetch_fills,
            prefetch_hits=self.prefetch_hits,
            cross_evictions=self.cross_evictions,
        )


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one demand access or fill."""

    hit: bool
    #: Line address evicted to make room, or -1 when no eviction happened.
    evicted_line: int = -1
    #: Whether the evicted line was dirty (needs a writeback).
    evicted_dirty: bool = False
    #: Whether the hit landed on a not-yet-demanded prefetched line.
    was_prefetched: bool = False


class SetAssociativeCache:
    """One cache level with exact per-set LRU replacement.

    Addresses given to :meth:`access`/:meth:`fill` are *line* addresses
    (byte address >> log2(line size)); callers translate once so the
    hierarchy never repeats the shift.
    """

    def __init__(self, spec: CacheSpec) -> None:
        self.spec = spec
        self.n_sets = spec.n_sets
        self.n_ways = spec.associativity
        self._set_mask = self.n_sets - 1
        slots = self.n_sets * self.n_ways
        # -1 tag means an invalid (empty) way.
        self._tags = np.full(slots, -1, dtype=np.int64)
        self._stamp = np.zeros(slots, dtype=np.int64)
        self._dirty = np.zeros(slots, dtype=bool)
        self._prefetched = np.zeros(slots, dtype=bool)
        self._owner = np.full(slots, -1, dtype=np.int32)
        self._clock = 0
        self.stats = CacheStats()

    # -- internals -------------------------------------------------------

    def _set_slice(self, line: int) -> slice:
        base = (line & self._set_mask) * self.n_ways
        return slice(base, base + self.n_ways)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _install(self, sl: slice, line: int, owner: int, *,
                 dirty: bool, prefetched: bool) -> AccessOutcome:
        """Place ``line`` in set ``sl``, evicting LRU if the set is full."""
        tags = self._tags[sl]
        empties = np.flatnonzero(tags == -1)
        if empties.size:
            idx = sl.start + int(empties[0])
            evicted, evicted_dirty = -1, False
        else:
            rel = int(np.argmin(self._stamp[sl]))
            idx = sl.start + rel
            evicted = int(self._tags[idx])
            evicted_dirty = bool(self._dirty[idx])
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.writebacks += 1
            if self._owner[idx] != owner and self._owner[idx] != -1:
                self.stats.cross_evictions += 1
        self._tags[idx] = line
        self._stamp[idx] = self._tick()
        self._dirty[idx] = dirty
        self._prefetched[idx] = prefetched
        self._owner[idx] = owner
        return AccessOutcome(hit=False, evicted_line=evicted, evicted_dirty=evicted_dirty)

    # -- public API ------------------------------------------------------

    def access(self, line: int, *, write: bool = False, owner: int = 0) -> AccessOutcome:
        """Demand access to ``line``; allocates on miss (write-allocate).

        Returns an :class:`AccessOutcome` describing hit/miss, any
        eviction, and whether the hit consumed a prefetched line.
        """
        if line < 0:
            raise MachineConfigError(f"negative line address {line}")
        sl = self._set_slice(line)
        ways = np.flatnonzero(self._tags[sl] == line)
        if ways.size:
            idx = sl.start + int(ways[0])
            self._stamp[idx] = self._tick()
            was_pf = bool(self._prefetched[idx])
            if was_pf:
                self.stats.prefetch_hits += 1
                self._prefetched[idx] = False
            if write:
                self._dirty[idx] = True
            self.stats.hits += 1
            return AccessOutcome(hit=True, was_prefetched=was_pf)
        self.stats.misses += 1
        return self._install(sl, line, owner, dirty=write, prefetched=False)

    def fill(self, line: int, *, owner: int = 0) -> AccessOutcome:
        """Prefetch fill: install ``line`` without counting a demand access.

        A fill that hits an already-resident line is a no-op (the real
        prefetchers drop redundant requests at the cache lookup).
        """
        if line < 0:
            raise MachineConfigError(f"negative line address {line}")
        sl = self._set_slice(line)
        if np.any(self._tags[sl] == line):
            return AccessOutcome(hit=True)
        self.stats.prefetch_fills += 1
        return self._install(sl, line, owner, dirty=False, prefetched=True)

    def probe(self, line: int) -> bool:
        """Non-allocating, non-LRU-updating presence check (for tests)."""
        sl = self._set_slice(line)
        return bool(np.any(self._tags[sl] == line))

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns whether it was resident."""
        sl = self._set_slice(line)
        ways = np.flatnonzero(self._tags[sl] == line)
        if not ways.size:
            return False
        idx = sl.start + int(ways[0])
        self._tags[idx] = -1
        self._dirty[idx] = False
        self._prefetched[idx] = False
        self._owner[idx] = -1
        return True

    def resident_lines(self) -> np.ndarray:
        """All line addresses currently cached (unordered)."""
        return self._tags[self._tags != -1].copy()

    def occupancy_by_owner(self) -> dict[int, int]:
        """Number of resident lines per owner id (LLC sharing analysis)."""
        live = self._owner[self._tags != -1]
        owners, counts = np.unique(live, return_counts=True)
        return {int(o): int(c) for o, c in zip(owners, counts)}

    def reset(self) -> None:
        """Invalidate everything and zero the statistics."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._dirty.fill(False)
        self._prefetched.fill(False)
        self._owner.fill(-1)
        self._clock = 0
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.spec.name}, {self.n_sets} sets x "
            f"{self.n_ways} ways, {self.stats.accesses} accesses)"
        )
