"""Hardware specifications for the modelled platform.

The paper's experiments run on a Supermicro 8047R-TRF+ with one 8-core
Intel Xeon E5-4650 (Sandy Bridge-EP) at 2.7 GHz: private 32 KiB L1I,
32 KiB L1D and 256 KiB L2 per core, a 20 MiB shared L3, 64 GiB DRAM, and
a practical memory bandwidth of ~28 GB/s (Section III-A and V-B of the
paper).  :func:`xeon_e5_4650` builds exactly that configuration;
everything else in the library takes a :class:`MachineSpec` so the
platform can be swapped out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import MachineConfigError
from repro.units import CACHE_LINE, GB, GiB, KiB, MiB


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and timing of one cache level.

    Attributes:
        name: Human-readable label ("L1D", "L2", "LLC").
        size_bytes: Total capacity in bytes.
        line_bytes: Cache-line size in bytes (64 on Sandy Bridge).
        associativity: Number of ways per set.
        latency_cycles: Load-to-use latency of a hit in this cache.
    """

    name: str
    size_bytes: int
    line_bytes: int = CACHE_LINE
    associativity: int = 8
    latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise MachineConfigError(f"{self.name}: size must be positive")
        if not _is_power_of_two(self.line_bytes):
            raise MachineConfigError(f"{self.name}: line size must be a power of two")
        if self.associativity <= 0:
            raise MachineConfigError(f"{self.name}: associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise MachineConfigError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"line*ways = {self.line_bytes * self.associativity}"
            )
        if not _is_power_of_two(self.n_sets):
            raise MachineConfigError(
                f"{self.name}: set count {self.n_sets} must be a power of two"
            )
        if self.latency_cycles <= 0:
            raise MachineConfigError(f"{self.name}: latency must be positive")

    @property
    def n_lines(self) -> int:
        """Total number of cache lines this cache can hold."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.n_lines // self.associativity


@dataclass(frozen=True)
class MemorySpec:
    """DRAM subsystem parameters.

    ``peak_bandwidth_bytes`` is the *practical* sustainable bandwidth; the
    paper measures ~28 GB/s on the target machine (Section VI-B).  The
    queueing parameters shape how load latency inflates as the bus
    approaches saturation (used by :mod:`repro.engine.bandwidth` and the
    trace-layer memory controller alike).
    """

    capacity_bytes: int = 64 * GiB
    peak_bandwidth_bytes: float = 28.0 * GB
    idle_latency_cycles: int = 200
    #: Multiplier strength of the queueing-delay curve lat = idle*(1+k*rho/(1-rho)).
    queue_gain: float = 0.12
    #: Utilization is clamped below this to keep the queue model finite;
    #: 0.90 caps loaded DRAM latency at ~2.1x idle (~420 cycles), the
    #: plausible range for loaded DDR3.
    max_utilization: float = 0.90

    def __post_init__(self) -> None:
        if self.peak_bandwidth_bytes <= 0:
            raise MachineConfigError("peak bandwidth must be positive")
        if self.idle_latency_cycles <= 0:
            raise MachineConfigError("idle latency must be positive")
        if not (0.0 < self.max_utilization < 1.0):
            raise MachineConfigError("max_utilization must lie in (0, 1)")
        if self.queue_gain < 0:
            raise MachineConfigError("queue_gain must be non-negative")


@dataclass(frozen=True)
class PrefetcherSpec:
    """Configuration of the four Sandy Bridge hardware prefetchers
    (Section IV-C of the paper), all enabled by default.

    The runtime enable/disable state lives in the per-core MSR bank
    (:mod:`repro.machine.msr`); this spec provides the *capabilities*
    and tuning of each engine.
    """

    #: L2 streamer: lines prefetched ahead of a detected stream.
    l2_stream_depth: int = 4
    #: L2 streamer: accesses to a 4 KiB page needed before streaming starts.
    l2_stream_threshold: int = 2
    #: IP-stride table entries (per core).
    l1_ip_entries: int = 64
    #: Confidence (repeat observations of the same stride) before issuing.
    l1_ip_confidence: int = 2

    def __post_init__(self) -> None:
        if self.l2_stream_depth <= 0:
            raise MachineConfigError("l2_stream_depth must be positive")
        if self.l2_stream_threshold <= 0:
            raise MachineConfigError("l2_stream_threshold must be positive")
        if self.l1_ip_entries <= 0:
            raise MachineConfigError("l1_ip_entries must be positive")
        if self.l1_ip_confidence <= 0:
            raise MachineConfigError("l1_ip_confidence must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """The full modelled machine.

    Mirrors the paper's platform: ``n_cores`` physical cores (HT
    disabled), private L1/L2 per core, one shared LLC, one memory
    controller.  All caches must share the same line size.
    """

    n_cores: int = 8
    freq_hz: float = 2.7e9
    l1i: CacheSpec = field(
        default_factory=lambda: CacheSpec("L1I", 32 * KiB, associativity=8, latency_cycles=4)
    )
    l1d: CacheSpec = field(
        default_factory=lambda: CacheSpec("L1D", 32 * KiB, associativity=8, latency_cycles=4)
    )
    l2: CacheSpec = field(
        default_factory=lambda: CacheSpec("L2", 256 * KiB, associativity=8, latency_cycles=12)
    )
    llc: CacheSpec = field(
        default_factory=lambda: CacheSpec("LLC", 20 * MiB, associativity=20, latency_cycles=35)
    )
    memory: MemorySpec = field(default_factory=MemorySpec)
    prefetch: PrefetcherSpec = field(default_factory=PrefetcherSpec)
    #: Two hardware threads per core.  The paper's platform disables
    #: Hyper-Threading (Section III-A) and the default reproduces that;
    #: SMT-enabled spec variants (``spec.smt_variant()``) double the
    #: schedulable thread slots and share each core's pipeline between
    #: its two hardware threads (see :mod:`repro.engine.interval`).
    hyperthreading: bool = False

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise MachineConfigError("n_cores must be positive")
        if self.freq_hz <= 0:
            raise MachineConfigError("frequency must be positive")
        lines = {self.l1i.line_bytes, self.l1d.line_bytes, self.l2.line_bytes, self.llc.line_bytes}
        if len(lines) != 1:
            raise MachineConfigError(f"all cache levels must share one line size, got {lines}")

    @property
    def line_bytes(self) -> int:
        """Cache-line size shared by every level."""
        return self.l1d.line_bytes

    @property
    def n_slots(self) -> int:
        """Schedulable hardware-thread slots: ``n_cores`` with SMT off,
        ``2 * n_cores`` with SMT on."""
        return self.n_cores * 2 if self.hyperthreading else self.n_cores

    @property
    def slots_per_core(self) -> int:
        """Hardware-thread slots of one physical core (2 under SMT)."""
        return 2 if self.hyperthreading else 1

    @property
    def llc_ways(self) -> int:
        """Number of LLC ways — the granularity of CAT-style way-mask
        partitioning (``AppPlacement.llc_ways`` bitmaps are validated
        against ``1 << llc_ways``)."""
        return self.llc.associativity

    @property
    def llc_way_bytes(self) -> float:
        """Capacity of one LLC way (what one mask bit allocates)."""
        return self.llc.size_bytes / self.llc.associativity

    def smt_variant(self) -> "MachineSpec":
        """This machine with Hyper-Threading enabled (the ROADMAP's
        SMT-enabled spec variant); a distinct spec fingerprint, so no
        cache entry ever crosses between the two."""
        return replace(self, hyperthreading=True)

    def scaled_llc(self, size_bytes: int) -> "MachineSpec":
        """Return a copy of this spec with a different LLC capacity.

        Used when deriving miss-ratio curves: the associativity is kept
        and the set count shrinks, so ``size_bytes`` must stay a
        line*ways multiple with a power-of-two set count.
        """
        return replace(self, llc=replace(self.llc, size_bytes=size_bytes))


def xeon_e5_4650() -> MachineSpec:
    """The paper's platform: 8-core Xeon E5-4650 @ 2.7 GHz, 32K/32K L1,
    256K L2, 20 MB shared L3, 64 GB DRAM, ~28 GB/s practical bandwidth,
    Hyper-Threading disabled."""
    return MachineSpec()


def small_test_machine(n_cores: int = 2) -> MachineSpec:
    """A deliberately tiny machine for fast unit tests: 4 KiB L1,
    16 KiB L2, 64 KiB LLC.  Same structure, ~300x less state."""
    return MachineSpec(
        n_cores=n_cores,
        l1i=CacheSpec("L1I", 4 * KiB, associativity=4, latency_cycles=4),
        l1d=CacheSpec("L1D", 4 * KiB, associativity=4, latency_cycles=4),
        l2=CacheSpec("L2", 16 * KiB, associativity=4, latency_cycles=12),
        llc=CacheSpec("LLC", 64 * KiB, associativity=8, latency_cycles=35),
    )
