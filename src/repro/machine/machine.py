"""The assembled machine: cores, shared LLC, memory, MSRs, core binding.

:class:`Machine` is the trace-layer platform object.  It owns

* one :class:`~repro.machine.cache.SetAssociativeCache` as the shared
  LLC and one :class:`~repro.machine.memory.MemoryController`,
* one :class:`~repro.machine.hierarchy.CoreCacheHierarchy` per core,
* an :class:`~repro.machine.msr.MsrBank` whose 0x1A4 registers gate the
  prefetchers, and
* an exclusive core-binding table mirroring the paper's setup (each
  application pinned to 4 physical cores, Section III-A).
"""

from __future__ import annotations

from repro.errors import MachineConfigError
from repro.machine.cache import SetAssociativeCache
from repro.machine.hierarchy import AccessResult, CoreCacheHierarchy
from repro.machine.memory import MemoryController
from repro.machine.msr import MSR_MISC_FEATURE_CONTROL, MsrBank
from repro.machine.spec import MachineSpec, xeon_e5_4650


class Machine:
    """Trace-layer model of the experimental platform."""

    def __init__(self, spec: MachineSpec | None = None) -> None:
        self.spec = spec if spec is not None else xeon_e5_4650()
        self.msr = MsrBank(self.spec.n_cores)
        self.llc = SetAssociativeCache(self.spec.llc)
        self.memory = MemoryController(self.spec.memory, line_bytes=self.spec.line_bytes)
        self.cores = [
            CoreCacheHierarchy(c, self.spec, self.llc, self.memory)
            for c in range(self.spec.n_cores)
        ]
        self._bindings: dict[int, tuple[int, ...]] = {}
        self._core_owner: dict[int, int] = {}
        self._line_shift = self.spec.line_bytes.bit_length() - 1

    # -- core binding ------------------------------------------------------

    def bind(self, app_id: int, cores: tuple[int, ...] | list[int]) -> None:
        """Pin application ``app_id`` to an exclusive set of cores.

        Raises :class:`MachineConfigError` on overlap with an existing
        binding — the paper's setup never shares physical cores.
        """
        cores = tuple(cores)
        if not cores:
            raise MachineConfigError("binding needs at least one core")
        for c in cores:
            if not (0 <= c < self.spec.n_cores):
                raise MachineConfigError(f"core {c} out of range")
            holder = self._core_owner.get(c)
            if holder is not None and holder != app_id:
                raise MachineConfigError(
                    f"core {c} already bound to app {holder}"
                )
        if app_id in self._bindings:
            raise MachineConfigError(f"app {app_id} already bound")
        self._bindings[app_id] = cores
        for c in cores:
            self._core_owner[c] = app_id

    def unbind(self, app_id: int) -> None:
        """Release an application's cores."""
        cores = self._bindings.pop(app_id, None)
        if cores is None:
            raise MachineConfigError(f"app {app_id} is not bound")
        for c in cores:
            del self._core_owner[c]

    def binding(self, app_id: int) -> tuple[int, ...]:
        """The cores currently owned by ``app_id``."""
        try:
            return self._bindings[app_id]
        except KeyError:
            raise MachineConfigError(f"app {app_id} is not bound") from None

    def owner_of_core(self, core: int) -> int | None:
        """Which app owns ``core`` (None when unbound)."""
        return self._core_owner.get(core)

    # -- prefetcher control (MSR-backed) ------------------------------------

    def apply_msr(self) -> None:
        """Re-read MSR 0x1A4 on every core into the prefetcher gates.

        Call after raw :attr:`msr` writes; the convenience setters below
        do it automatically.
        """
        for core in self.cores:
            core.prefetchers.enabled = self.msr.prefetchers_enabled(core.core_id)

    def set_all_prefetchers(self, enabled: bool) -> None:
        """Enable/disable all four prefetchers machine-wide via the MSR."""
        self.msr.set_all_prefetchers(enabled)
        self.apply_msr()

    def prefetchers_enabled(self, core: int = 0) -> dict[str, bool]:
        """Decoded prefetcher state of one core."""
        return self.msr.prefetchers_enabled(core)

    # -- access path ---------------------------------------------------------

    def line_of(self, byte_addr: int) -> int:
        """Translate a byte address into a line address."""
        return byte_addr >> self._line_shift

    def access(
        self,
        core: int,
        ip: int,
        line: int,
        *,
        write: bool = False,
        bus_utilization: float = 0.0,
    ) -> AccessResult:
        """Demand access on ``core``; the owner is looked up from the
        binding table (unbound cores attribute traffic to owner -1)."""
        if not (0 <= core < self.spec.n_cores):
            raise MachineConfigError(f"core {core} out of range")
        owner = self._core_owner.get(core, -1)
        return self.cores[core].access(
            ip, line, write=write, owner=owner, bus_utilization=bus_utilization
        )

    # -- lifecycle -------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero every cache/memory counter without dropping cache contents."""
        for core in self.cores:
            core.stats.reset()
            core.l1d.stats.reset()
            core.l2.stats.reset()
        self.llc.stats.reset()
        self.memory.reset()

    def reset(self) -> None:
        """Full reset: caches invalidated, stats zeroed, bindings kept,
        MSRs kept (matching a process restart on real hardware)."""
        for core in self.cores:
            core.reset()
        self.llc.reset()
        self.memory.reset()
        self.apply_msr()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.spec.n_cores} cores @ {self.spec.freq_hz/1e9:.1f} GHz, "
            f"LLC {self.spec.llc.size_bytes >> 20} MiB, "
            f"{len(self._bindings)} bound apps)"
        )


__all__ = ["Machine", "MSR_MISC_FEATURE_CONTROL", "MsrBank"]
