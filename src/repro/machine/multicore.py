"""Trace-layer multicore co-execution.

The interval engine predicts interference analytically; this module
*observes* it mechanistically: several applications' access streams run
interleaved on the modelled machine, each pinned to its own cores, all
sharing the LLC and memory controller.  Cross-evictions, miss-ratio
inflation and bandwidth competition appear because the cache model
makes them happen — the ground truth the analytic layer approximates.

Streams are interleaved in proportion to each application's configured
access rate (an app on 4 cores issues 4x the accesses of a 1-core app
per round), which is the standard trace-interleaving approximation for
throughput-dominated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import cycle

from repro.errors import MachineConfigError
from repro.machine.machine import Machine
from repro.trace.stream import AccessBatch, TraceSource


@dataclass
class TraceAppStats:
    """Per-application outcome of a trace-layer co-run."""

    app_id: int
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    mem_accesses: int = 0
    total_latency_cycles: float = 0.0

    @property
    def llc_miss_ratio(self) -> float:
        """Miss ratio of the traffic that reached the shared LLC."""
        past_l2 = self.llc_hits + self.mem_accesses
        return self.mem_accesses / past_l2 if past_l2 else 0.0

    @property
    def avg_latency_cycles(self) -> float:
        return self.total_latency_cycles / self.accesses if self.accesses else 0.0


class _FlatTrace:
    """Flattened per-access iterator over a trace's batches."""

    __slots__ = ("_batches", "_bi", "_i", "exhausted")

    def __init__(self, trace: TraceSource) -> None:
        self._batches: list[AccessBatch] = [b for b in trace if len(b)]
        self._bi = 0
        self._i = 0
        self.exhausted = not self._batches

    def next(self) -> tuple[int, int, bool] | None:
        if self.exhausted:
            return None
        b = self._batches[self._bi]
        out = (int(b.ips[self._i]), int(b.lines[self._i]), bool(b.writes[self._i]))
        self._i += 1
        if self._i >= len(b):
            self._i = 0
            self._bi += 1
            if self._bi >= len(self._batches):
                self.exhausted = True
        return out


@dataclass
class TraceCoRunResult:
    """Outcome of one multicore trace co-run."""

    stats: dict[int, TraceAppStats] = field(default_factory=dict)
    llc_cross_evictions: int = 0
    total_bus_bytes: int = 0

    def app(self, app_id: int) -> TraceAppStats:
        try:
            return self.stats[app_id]
        except KeyError:
            raise MachineConfigError(f"no app {app_id} in this co-run") from None


class TraceCoRunner:
    """Interleaved execution of several traces on one Machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def run(
        self,
        assignments: dict[int, tuple[tuple[int, ...], TraceSource]],
        *,
        max_accesses_per_app: int | None = None,
        loop_background: bool = False,
        foreground: int | None = None,
    ) -> TraceCoRunResult:
        """Run the assigned traces to completion (or truncation).

        Args:
            assignments: app_id -> (cores, trace).  Cores must be
                disjoint; each app issues one access per owned core per
                round (rate-proportional interleaving).
            max_accesses_per_app: truncate each app's stream.
            loop_background: restart non-foreground traces until the
                foreground finishes (the paper's co-run protocol).
            foreground: the measured app when ``loop_background``.
        """
        if not assignments:
            raise MachineConfigError("need at least one assignment")
        if loop_background and foreground not in assignments:
            raise MachineConfigError("loop_background requires a valid foreground")
        machine = self.machine
        flats: dict[int, _FlatTrace] = {}
        originals: dict[int, list[AccessBatch]] = {}
        issued: dict[int, int] = {}
        for app_id, (cores, trace) in assignments.items():
            machine.bind(app_id, cores)
            batches = list(trace)
            originals[app_id] = batches
            flats[app_id] = _FlatTrace(iter(batches))
            issued[app_id] = 0

        result = TraceCoRunResult(
            stats={a: TraceAppStats(app_id=a) for a in assignments}
        )
        start_cross = machine.llc.stats.cross_evictions
        start_bytes = machine.memory.total_bytes()

        core_cycles = {
            app_id: cycle(cores) for app_id, (cores, _) in assignments.items()
        }
        order = list(assignments)
        limit = max_accesses_per_app

        def app_done(app_id: int) -> bool:
            if limit is not None and issued[app_id] >= limit:
                return True
            return flats[app_id].exhausted

        def issue_one(app_id: int) -> bool:
            flat = flats[app_id]
            nxt = flat.next()
            if nxt is None:
                if loop_background and app_id != foreground:
                    flats[app_id] = flat = _FlatTrace(iter(originals[app_id]))
                    nxt = flat.next()
                if nxt is None:
                    return False
            ip, line, write = nxt
            core = next(core_cycles[app_id])
            res = machine.access(core, ip=ip, line=line, write=write)
            st = result.stats[app_id]
            st.accesses += 1
            st.total_latency_cycles += res.latency_cycles
            if res.level == "L1":
                st.l1_hits += 1
            elif res.level == "L2":
                st.l2_hits += 1
            elif res.level == "LLC":
                st.llc_hits += 1
            else:
                st.mem_accesses += 1
            issued[app_id] += 1
            return True

        while True:
            progressed = False
            for app_id in order:
                if app_done(app_id) and not (loop_background and app_id != foreground):
                    continue
                cores, _ = assignments[app_id]
                for _ in range(len(cores)):
                    if limit is not None and issued[app_id] >= limit:
                        break
                    if not issue_one(app_id):
                        break
                    progressed = True
            fg_finished = (
                loop_background and foreground is not None and app_done(foreground)
            )
            if fg_finished or not progressed:
                break

        for app_id in assignments:
            machine.unbind(app_id)
        result.llc_cross_evictions = machine.llc.stats.cross_evictions - start_cross
        result.total_bus_bytes = machine.memory.total_bytes() - start_bytes
        return result
