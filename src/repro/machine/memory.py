"""Memory-controller model: byte accounting plus the queueing-delay curve.

Both simulation layers share one piece of physics: as the memory bus
approaches its practical peak (~28 GB/s on the paper's machine), load
latency inflates.  We model that with the standard open-queue shape

    latency(rho) = idle_latency * (1 + gain * rho / (1 - rho))

with the utilization ``rho`` clamped below ``max_utilization``.  The
trace layer uses :class:`MemoryController` to also account transferred
bytes per owner (demand fills, prefetch fills, writebacks), which is
what the PCM tool samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineConfigError
from repro.machine.spec import MemorySpec


def queueing_latency_multiplier(utilization: float, spec: MemorySpec) -> float:
    """Latency inflation factor at a given bus utilization in [0, 1+).

    Monotonically non-decreasing; 1.0 at idle.  Utilization above
    ``spec.max_utilization`` is clamped so the model stays finite —
    physically, the bus saturates and *throughput* (handled separately
    by the engine) becomes the binding constraint.
    """
    if utilization < 0:
        raise MachineConfigError(f"utilization must be >= 0, got {utilization}")
    rho = min(utilization, spec.max_utilization)
    return 1.0 + spec.queue_gain * rho / (1.0 - rho)


def effective_shares(demands: list[float], peak: float) -> list[float]:
    """Achieved per-requester bandwidth when total demand may exceed peak.

    Under saturation the controller serves requesters proportionally to
    their demand (fair FR-FCFS approximation); below saturation every
    demand is met.  Returns achieved bytes/s per requester.
    """
    if peak <= 0:
        raise MachineConfigError("peak bandwidth must be positive")
    if any(d < 0 for d in demands):
        raise MachineConfigError("demands must be non-negative")
    total = sum(demands)
    if total <= peak:
        return list(demands)
    scale = peak / total
    return [d * scale for d in demands]


@dataclass
class TransferStats:
    """Bytes moved over the memory bus, by cause."""

    demand_bytes: int = 0
    prefetch_bytes: int = 0
    writeback_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All bus traffic regardless of cause."""
        return self.demand_bytes + self.prefetch_bytes + self.writeback_bytes


@dataclass
class MemoryController:
    """Trace-layer DRAM model: per-owner byte accounting + latency curve.

    Owners are small integers identifying co-running applications; owner
    ``-1`` aggregates unattributed traffic.
    """

    spec: MemorySpec
    line_bytes: int = 64
    _by_owner: dict[int, TransferStats] = field(default_factory=dict, repr=False)

    def _stats(self, owner: int) -> TransferStats:
        st = self._by_owner.get(owner)
        if st is None:
            st = self._by_owner[owner] = TransferStats()
        return st

    def demand_fill(self, owner: int = -1, lines: int = 1) -> None:
        """Account a demand line fill from DRAM."""
        self._stats(owner).demand_bytes += lines * self.line_bytes

    def prefetch_fill(self, owner: int = -1, lines: int = 1) -> None:
        """Account a prefetch line fill from DRAM."""
        self._stats(owner).prefetch_bytes += lines * self.line_bytes

    def writeback(self, owner: int = -1, lines: int = 1) -> None:
        """Account a dirty-line writeback to DRAM."""
        self._stats(owner).writeback_bytes += lines * self.line_bytes

    def owner_stats(self, owner: int) -> TransferStats:
        """Counters for one owner (zeros if it never transferred)."""
        return self._by_owner.get(owner, TransferStats())

    def total_bytes(self) -> int:
        """All bytes moved since the last reset."""
        return sum(s.total_bytes for s in self._by_owner.values())

    def bandwidth_bytes_per_s(self, window_seconds: float) -> float:
        """Average bus bandwidth over an observation window."""
        if window_seconds <= 0:
            raise MachineConfigError("window must be positive")
        return self.total_bytes() / window_seconds

    def utilization(self, window_seconds: float) -> float:
        """Bus utilization over a window, relative to the practical peak."""
        return self.bandwidth_bytes_per_s(window_seconds) / self.spec.peak_bandwidth_bytes

    def load_latency_cycles(self, utilization: float) -> float:
        """DRAM load latency at the given utilization."""
        return self.spec.idle_latency_cycles * queueing_latency_multiplier(
            utilization, self.spec
        )

    def reset(self) -> None:
        """Zero all per-owner counters."""
        self._by_owner.clear()
