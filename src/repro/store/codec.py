"""Exact JSON codec for the engine's result containers.

The persistent cache only works if a round-tripped result is
*bit-identical* to the in-memory original: a Fig 5 cell computed from a
disk-loaded solo reference must equal the cell computed in the same
process.  Python's ``json`` module serializes floats via ``repr``,
whose shortest-round-trip representation re-parses to the exact same
IEEE-754 value, and both ``dict`` and JSON objects preserve insertion
order — so the per-region accumulation order (which matters for float
summation in :attr:`AppMetrics.total`) survives the trip.

The codec is deliberately explicit per type rather than reflective:
the on-disk schema is a contract (see :data:`SCHEMA_VERSION` in
:mod:`repro.store.store`), and silent field drift would corrupt warm
stores.
"""

from __future__ import annotations

from typing import Any

from repro.engine.results import (
    AppMetrics,
    BandwidthSample,
    CoRunResult,
    RegionMetrics,
    ScenarioRunResult,
    SoloRunResult,
)

_REGION_FIELDS = (
    "instructions",
    "cycles",
    "pending_cycles",
    "l2_misses",
    "llc_misses",
    "bus_bytes",
)


def encode_region_metrics(rm: RegionMetrics) -> dict[str, float]:
    return {f: getattr(rm, f) for f in _REGION_FIELDS}


def decode_region_metrics(data: dict[str, float]) -> RegionMetrics:
    return RegionMetrics(**{f: data[f] for f in _REGION_FIELDS})


def encode_app_metrics(am: AppMetrics) -> dict[str, Any]:
    return {
        "name": am.name,
        "threads": am.threads,
        "runtime_s": am.runtime_s,
        "by_region": {
            region: encode_region_metrics(rm) for region, rm in am.by_region.items()
        },
    }


def decode_app_metrics(data: dict[str, Any]) -> AppMetrics:
    return AppMetrics(
        name=data["name"],
        threads=data["threads"],
        runtime_s=data["runtime_s"],
        by_region={
            region: decode_region_metrics(rm)
            for region, rm in data["by_region"].items()
        },
    )


def encode_timeline(timeline: list[BandwidthSample]) -> list[dict[str, Any]]:
    return [
        {"time_s": s.time_s, "bytes_per_s": dict(s.bytes_per_s)} for s in timeline
    ]


def decode_timeline(data: list[dict[str, Any]]) -> list[BandwidthSample]:
    return [
        BandwidthSample(time_s=s["time_s"], bytes_per_s=dict(s["bytes_per_s"]))
        for s in data
    ]


def encode_solo(res: SoloRunResult) -> dict[str, Any]:
    return {
        "metrics": encode_app_metrics(res.metrics),
        "timeline": encode_timeline(res.timeline),
    }


def decode_solo(data: dict[str, Any]) -> SoloRunResult:
    return SoloRunResult(
        metrics=decode_app_metrics(data["metrics"]),
        timeline=decode_timeline(data["timeline"]),
    )


def encode_corun(res: CoRunResult) -> dict[str, Any]:
    return {
        "fg": encode_app_metrics(res.fg),
        "bg": encode_app_metrics(res.bg),
        "fg_solo_runtime_s": res.fg_solo_runtime_s,
        "bg_relative_rate": res.bg_relative_rate,
        "timeline": encode_timeline(res.timeline),
    }


def decode_corun(data: dict[str, Any]) -> CoRunResult:
    return CoRunResult(
        fg=decode_app_metrics(data["fg"]),
        bg=decode_app_metrics(data["bg"]),
        fg_solo_runtime_s=data["fg_solo_runtime_s"],
        bg_relative_rate=data["bg_relative_rate"],
        timeline=decode_timeline(data["timeline"]),
    )


def encode_scenario_result(res: ScenarioRunResult) -> dict[str, Any]:
    return {
        "apps": [encode_app_metrics(a) for a in res.apps],
        "fg_solo_runtime_s": res.fg_solo_runtime_s,
        "bg_relative_rates": list(res.bg_relative_rates),
        "timeline": encode_timeline(res.timeline),
    }


def decode_scenario_result(data: dict[str, Any]) -> ScenarioRunResult:
    return ScenarioRunResult(
        apps=[decode_app_metrics(a) for a in data["apps"]],
        fg_solo_runtime_s=data["fg_solo_runtime_s"],
        bg_relative_rates=list(data["bg_relative_rates"]),
        timeline=decode_timeline(data["timeline"]),
    )
