"""ResultStore: the on-disk half of the Session's measurement caches.

Layout under one store root (see the package docstring in
:mod:`repro.store` for the full tour)::

    <root>/
      store.json                  # schema version marker
      .lock                       # advisory store lock (repro.store.locking)
      solo/<engine_fp>/<app>-t<T>-<keyfp>.json
      corun/<engine_fp>/<fg>-vs-<bg>-<FT>x<BT>-<keyfp>.json
      scenario/<engine_fp>/<apps-slug>-<keyfp>.json   # N-way scenarios
      results/<artifact>/<run_id>.json
      index/<pid>-<token>.jsonl   # per-process index segments
      index.jsonl                 # legacy single-file index (read-only)
      manifest.json               # written by `repro run-all` / `repro campaign`

Cache entries are content-addressed: the filename embeds a
:func:`repro.session.session.fingerprint` of the exact cache key the
:class:`~repro.session.session.Session` uses in memory
(``engine_fingerprint x workload x threads`` for solos,
``engine_fingerprint x fg x bg x fg_threads x bg_threads`` for
co-runs), so a warm store can never serve a result computed under a
different machine spec or engine configuration.

Durability rules under many concurrent writer processes:

* every file is written to a ``.tmp-<pid>`` sibling and published with
  :func:`os.replace`, so readers never observe a half-written payload;
* readers treat unparseable or schema-mismatched files as cache misses
  (a crash mid-write costs a re-simulation, never a wrong number);
* each process appends index lines to its **own** segment file under
  ``index/`` — no two processes ever write the same index file, so
  interleaved or torn *non-tail* lines are impossible by construction;
  :meth:`RecordSink.entries` merges the legacy ``index.jsonl`` (written
  by pre-segment stores) with every segment, ordered by append
  timestamp, and a torn final line of any file is skipped;
* cache writers take the store lock **shared**, ``gc``'s shard pruning
  and manifest freezes take it **exclusive**
  (:mod:`repro.store.locking`), so a prune can never interleave with a
  writer materializing an entry in the same shard.
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.engine.results import CoRunResult, ScenarioRunResult, SoloRunResult
from repro.errors import StoreError, StoreWarning
from repro.store.locking import store_lock
from repro.session.base import fingerprint
from repro.session.record import RunRecord
from repro.session.registry import get_runner
from repro.session.scenario import Scenario
from repro.store.codec import (
    decode_corun,
    decode_scenario_result,
    decode_solo,
    encode_corun,
    encode_scenario_result,
    encode_solo,
)

#: Version of the on-disk layout; bumped on incompatible change.
SCHEMA_VERSION = 1

logger = logging.getLogger(__name__)

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_name(name: str) -> str:
    """Filesystem-safe slug for a workload/artifact name (readability
    only — uniqueness comes from the key fingerprint suffix)."""
    return _SAFE.sub("_", name) or "_"


def _atomic_write_text(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` via a same-directory rename, so a
    crash mid-write leaves only an ignorable ``.tmp-*`` sibling."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> Any | None:
    """Parse a JSON file; missing, torn or non-JSON files are ``None``."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def live_engine_fingerprints(spec: Any, engine_config: Any) -> set[str]:
    """Every engine fingerprint reachable from one machine spec and
    engine configuration — the allowlist :meth:`ResultStore.gc` keeps.

    The spec and its SMT variant are crossed with every ablation state
    of the engine config: both values of every boolean knob (derived
    from the dataclass fields, so a newly added knob is covered
    automatically — fig4 flips ``prefetchers_on``, the ablation
    benches flip the rest) and every LLC policy a scenario can select.
    Shards outside this set belong to no configuration any runner can
    address from ``(spec, engine_config)``.

    **CAT way-mask / pinning variants are covered by construction**:
    per-app way bitmaps and core pinnings live in the *scenario
    payload*, never in the engine configuration, so a ``cat-sweep`` or
    a masked/pinned ``scenario run`` persists its cells under exactly
    the fingerprints this set already enumerates (base policies x SMT
    variants).  If masks ever migrated into :class:`EngineConfig`,
    freshly written CAT shards would fall outside this allowlist and
    ``store gc`` would prune them — the regression tests pin a session
    identity for masked *and* pinned scenarios against this set.
    """
    from dataclasses import fields, replace
    from itertools import product

    from repro.engine.interval import LLC_POLICIES

    axes: dict[str, tuple[Any, ...]] = {
        f.name: (True, False)
        for f in fields(engine_config)
        if isinstance(getattr(engine_config, f.name), bool)
    }
    axes["llc_policy"] = tuple(LLC_POLICIES)
    fps: set[str] = set()
    for machine in (spec, spec.smt_variant()):
        for combo in product(*axes.values()):
            cfg = replace(engine_config, **dict(zip(axes.keys(), combo)))
            fps.add(fingerprint(machine, cfg))
    return fps


def _int_or(value: Any, default: int = 0) -> int:
    """Defensive int coercion: ``None`` / junk becomes the default.

    Provenance dicts are attacker-free but not shape-free — a field can
    be *present and None* (e.g. a custom runner recording ``seed=None``),
    and indexing a record must never crash the run that produced it.
    """
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _float_or(value: Any, default: float = 0.0) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _str_or(value: Any, default: str = "") -> str:
    return default if value is None else str(value)


@dataclass(frozen=True)
class IndexEntry:
    """One index line: where a streamed record landed."""

    run_id: str
    artifact: str
    #: Path of the record file, relative to the store root.
    path: str
    spec_fingerprint: str
    engine_fingerprint: str
    seed: int
    #: Cache hit/miss deltas of the run that produced the record.
    cache: dict[str, int]
    duration_s: float
    #: Non-default invocation arguments (repr'd); empty for a
    #: canonical ``session.run(name)`` execution.
    arguments: dict[str, str]
    #: Wall-clock append time; orders entries across index segments
    #: written by different processes (legacy lines default to 0.0 and
    #: therefore sort before every segmented line).  Cross-*host*
    #: sharding trusts the hosts' clocks: with skewed clocks, "latest"
    #: may prefer an older record — harmless between identical runs
    #: (run ids are content-addressed) but visible when configs change
    #: between shards.
    ts: float = field(default=0.0, compare=False)

    @property
    def is_canonical(self) -> bool:
        """True for a default-argument (whole-artifact) run."""
        return not self.arguments

    def to_line(self) -> str:
        return json.dumps({"schema": SCHEMA_VERSION, **asdict(self)})


def pick_latest(entries: "list[IndexEntry]") -> "IndexEntry | None":
    """The one selection policy for "the record behind an artifact":
    the latest entry, preferring canonical (default-argument) runs over
    nested subset runs.  Shared by :meth:`ResultStore.latest` and the
    from-store manifest builder so ``store show`` and a frozen
    manifest can never disagree about which record represents an
    artifact."""
    canonical = [e for e in entries if e.is_canonical]
    chosen = canonical or entries
    return chosen[-1] if chosen else None


class RecordSink:
    """Streams :class:`RunRecord`\\ s into ``results/`` + ``index/``.

    Run ids are content-addressed and timestamp-free — a fingerprint of
    the artifact name, the configuration provenance and the encoded
    payload — so re-running an identical experiment overwrites the same
    record file (idempotent) while the append-only index keeps the full
    invocation history.

    The index is **segmented**: each sink appends to a private
    ``index/<pid>-<token>.jsonl`` file (created on first append), so
    concurrent campaign processes sharing one store can never interleave
    or tear each other's lines.  :meth:`entries` merges every segment
    with the legacy single ``index.jsonl`` of pre-segment stores,
    ordered by append timestamp.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        #: Legacy single-file index: still read (and merged), never
        #: appended to by this version.
        self.index_path = self.root / "index.jsonl"
        self.index_dir = self.root / "index"
        self._segment: Path | None = None
        self._append_lock = threading.Lock()
        self._warned_foreign_schema = False

    def segment_path(self) -> Path:
        """This sink's private index segment (lazily named).

        ``pid`` makes the owner obvious in ``ls``; the random token is
        what guarantees uniqueness (two sinks in one process, pid reuse
        across reboots)."""
        if self._segment is None:
            token = os.urandom(4).hex()
            self._segment = self.index_dir / f"{os.getpid()}-{token}.jsonl"
        return self._segment

    def run_id_for(self, record: RunRecord) -> str:
        prov = record.provenance
        payload = get_runner(record.artifact).encode(record.result)
        fp = fingerprint(
            record.artifact,
            prov.get("spec_fingerprint"),
            prov.get("engine_fingerprint"),
            prov.get("seed"),
            prov.get("threads"),
            prov.get("repetitions"),
            prov.get("jitter"),
            prov.get("workloads"),
            payload,
        )
        return f"{_safe_name(record.artifact)}-{fp}"

    def record_relpath(self, record: RunRecord, run_id: str | None = None) -> str:
        # Accepting a precomputed run_id avoids re-encoding the payload
        # (run ids hash the full encoded result).
        run_id = run_id if run_id is not None else self.run_id_for(record)
        return f"results/{_safe_name(record.artifact)}/{run_id}.json"

    def append(self, record: RunRecord) -> IndexEntry:
        """Persist one record and index it; returns the index entry.

        The store root is materialized *before* the record file is
        written, the record file before its index line (an index line
        must never point at a record that does not exist yet), and the
        index line lands in this sink's private segment — a single
        buffered write under a thread lock, so even thread-pool callers
        sharing one sink cannot interleave lines.
        """
        from repro.telemetry.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("store.append", artifact=record.artifact) as sp:
                entry = self._append_impl(record)
                sp.tag("run_id", entry.run_id)
            return entry
        return self._append_impl(record)

    def _append_impl(self, record: RunRecord) -> IndexEntry:
        prov = record.provenance
        run_id = self.run_id_for(record)
        relpath = self.record_relpath(record, run_id)
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(self.root / relpath, record.to_json(indent=1))
        entry = IndexEntry(
            run_id=run_id,
            artifact=record.artifact,
            path=relpath,
            spec_fingerprint=_str_or(prov.get("spec_fingerprint")),
            engine_fingerprint=_str_or(prov.get("engine_fingerprint")),
            seed=_int_or(prov.get("seed")),
            cache=dict(prov.get("cache") or {}),
            duration_s=_float_or(prov.get("duration_s")),
            arguments=dict(prov.get("arguments") or {}),
            ts=time.time(),
        )
        with self._append_lock:
            segment = self.segment_path()
            segment.parent.mkdir(parents=True, exist_ok=True)
            with open(segment, "a", encoding="utf-8") as fh:
                fh.write(entry.to_line() + "\n")
        logger.debug("appended %s -> %s", run_id, relpath)
        return entry

    def index_files(self) -> list[Path]:
        """Every index file to merge: the legacy single file (if any)
        first, then the segments in name order."""
        files: list[Path] = []
        if self.index_path.exists():
            files.append(self.index_path)
        if self.index_dir.is_dir():
            files.extend(sorted(self.index_dir.glob("*.jsonl")))
        return files

    def entries(self) -> Iterator[IndexEntry]:
        """All well-formed index lines merged across segments, oldest
        first (append timestamp; legacy lines carry none and sort
        before all segmented lines, preserving their file order).

        Lines whose ``schema`` differs from :data:`SCHEMA_VERSION` are
        skipped — but not silently: the first full merge that drops any
        emits one :class:`~repro.errors.StoreWarning` with the count,
        so ``store ls`` / ``store diff`` on a mixed-version store
        cannot under-report without a trace.
        """
        rows: list[IndexEntry] = []
        foreign = 0
        for path in self.index_files():
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue  # segment vanished mid-merge (gc'd store copy)
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if data.get("schema") != SCHEMA_VERSION:
                        foreign += 1
                        continue
                    data.pop("schema")
                    rows.append(IndexEntry(**data))
                except (ValueError, TypeError):
                    continue  # torn tail line from a crash mid-append
        if foreign and not self._warned_foreign_schema:
            self._warned_foreign_schema = True
            warnings.warn(
                f"skipped {foreign} index line(s) with a schema other than "
                f"{SCHEMA_VERSION} in {self.root} (written by a different "
                "tool version; re-run it there to query them)",
                StoreWarning,
                stacklevel=2,
            )
        rows.sort(key=lambda e: e.ts)  # stable: ties keep file order
        yield from rows


class ResultStore:
    """Persistent, fingerprint-keyed store for session measurements.

    Three roles in one root directory:

    * a **solo/co-run cache** (:meth:`get_solo` / :meth:`put_solo`,
      :meth:`get_corun` / :meth:`put_corun`) that a
      :class:`~repro.session.session.Session` reads through and writes
      behind, making a cold process with a warm store as fast as a warm
      in-memory session;
    * a **record sink** (:meth:`record`) streaming every executed
      artifact into ``results/`` with an append-only ``index.jsonl``;
    * a **query API** (:meth:`query`, :meth:`latest`, :meth:`load`)
      over that index.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sink = RecordSink(self.root)
        self._check_schema()

    def _check_schema(self) -> None:
        meta_path = self.root / "store.json"
        meta = _read_json(meta_path)
        if meta is None:
            _atomic_write_text(
                meta_path,
                json.dumps(
                    {"schema": SCHEMA_VERSION, "tool": "repro-interference"},
                    indent=1,
                ),
            )
            return
        if meta.get("schema") != SCHEMA_VERSION:
            raise StoreError(
                f"store at {self.root} has schema {meta.get('schema')!r}; "
                f"this build reads schema {SCHEMA_VERSION}"
            )

    # -- solo / co-run cache -------------------------------------------------

    def _solo_path(self, engine_fp: str, workload: str, threads: int) -> Path:
        keyfp = fingerprint("solo", engine_fp, workload, threads)
        return (
            self.root
            / "solo"
            / engine_fp
            / f"{_safe_name(workload)}-t{threads}-{keyfp}.json"
        )

    def _corun_path(
        self, engine_fp: str, fg: str, bg: str, fg_threads: int, bg_threads: int
    ) -> Path:
        keyfp = fingerprint("corun", engine_fp, fg, bg, fg_threads, bg_threads)
        return (
            self.root
            / "corun"
            / engine_fp
            / f"{_safe_name(fg)}-vs-{_safe_name(bg)}-{fg_threads}x{bg_threads}-{keyfp}.json"
        )

    def _publish_entry(self, path: Path, kind: str, key: dict[str, Any], result: Any) -> None:
        """Atomically publish one cache entry under the *shared* store
        lock, so a concurrent ``gc`` (exclusive) can never prune the
        shard between this writer's key computation and its rename."""
        with store_lock(self.root, exclusive=False):
            _atomic_write_text(
                path,
                json.dumps(
                    {
                        "schema": SCHEMA_VERSION,
                        "kind": kind,
                        "key": key,
                        "result": result,
                    }
                ),
            )

    @staticmethod
    def _load_entry(path: Path, kind: str, key: dict[str, Any]) -> Any | None:
        data = _read_json(path)
        if (
            not isinstance(data, dict)
            or data.get("schema") != SCHEMA_VERSION
            or data.get("kind") != kind
            or data.get("key") != key
        ):
            return None  # missing, torn, foreign-schema, or key collision
        return data["result"]

    def get_solo(
        self, engine_fp: str, workload: str, threads: int
    ) -> SoloRunResult | None:
        key = {"engine_fingerprint": engine_fp, "workload": workload, "threads": threads}
        payload = self._load_entry(
            self._solo_path(engine_fp, workload, threads), "solo", key
        )
        if payload is None:
            return None
        try:
            return decode_solo(payload)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None  # corrupt-but-parseable entry: a miss, never data

    def put_solo(
        self, engine_fp: str, workload: str, threads: int, result: SoloRunResult
    ) -> None:
        self._publish_entry(
            self._solo_path(engine_fp, workload, threads),
            "solo",
            {
                "engine_fingerprint": engine_fp,
                "workload": workload,
                "threads": threads,
            },
            encode_solo(result),
        )

    def _scenario_path(self, engine_fp: str, scenario: Scenario) -> Path:
        keyfp = fingerprint("scenario", engine_fp, scenario.fingerprint)
        slug = "+".join(
            f"{_safe_name(p.workload)}.{p.threads}" for p in scenario.placements
        )[:64]
        return self.root / "scenario" / engine_fp / f"{slug}-{keyfp}.json"

    def get_scenario(
        self, engine_fp: str, scenario: Scenario
    ) -> ScenarioRunResult | None:
        """Cached N-way scenario result, or ``None``.

        2-app scenarios are *not* stored here — the session bridges
        them onto the legacy ``corun/`` section (:meth:`get_corun`), so
        pre-redesign warm stores keep serving them unchanged.
        """
        key = {"engine_fingerprint": engine_fp, "scenario": scenario.payload()}
        payload = self._load_entry(
            self._scenario_path(engine_fp, scenario), "scenario", key
        )
        if payload is None:
            return None
        try:
            return decode_scenario_result(payload)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None  # corrupt-but-parseable entry: a miss, never data

    def put_scenario(
        self, engine_fp: str, scenario: Scenario, result: ScenarioRunResult
    ) -> None:
        self._publish_entry(
            self._scenario_path(engine_fp, scenario),
            "scenario",
            {
                "engine_fingerprint": engine_fp,
                "scenario": scenario.payload(),
            },
            encode_scenario_result(result),
        )

    def scenarios(self) -> list[dict[str, Any]]:
        """Key metadata of every persisted scenario entry (``repro
        scenario ls``): engine fingerprint, placements, overrides.

        Listing parses each entry file in full (the key shares the
        file with the encoded result), so cost scales with total entry
        bytes; fine for the hundreds-of-entries scale this store
        targets — a key sidecar/index is the upgrade path beyond that.
        """
        base = self.root / "scenario"
        out: list[dict[str, Any]] = []
        if not base.exists():
            return out
        for path in sorted(base.rglob("*.json")):
            data = _read_json(path)
            if (
                not isinstance(data, dict)
                or data.get("schema") != SCHEMA_VERSION
                or data.get("kind") != "scenario"
                or not isinstance(data.get("key"), dict)
            ):
                continue
            entry = dict(data["key"])
            entry["path"] = str(path.relative_to(self.root))
            out.append(entry)
        return out

    def get_corun(
        self, engine_fp: str, fg: str, bg: str, fg_threads: int, bg_threads: int
    ) -> CoRunResult | None:
        key = {
            "engine_fingerprint": engine_fp,
            "fg": fg,
            "bg": bg,
            "fg_threads": fg_threads,
            "bg_threads": bg_threads,
        }
        payload = self._load_entry(
            self._corun_path(engine_fp, fg, bg, fg_threads, bg_threads), "corun", key
        )
        if payload is None:
            return None
        try:
            return decode_corun(payload)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None  # corrupt-but-parseable entry: a miss, never data

    def put_corun(
        self,
        engine_fp: str,
        fg: str,
        bg: str,
        fg_threads: int,
        bg_threads: int,
        result: CoRunResult,
    ) -> None:
        self._publish_entry(
            self._corun_path(engine_fp, fg, bg, fg_threads, bg_threads),
            "corun",
            {
                "engine_fingerprint": engine_fp,
                "fg": fg,
                "bg": bg,
                "fg_threads": fg_threads,
                "bg_threads": bg_threads,
            },
            encode_corun(result),
        )

    # -- record sink + query -------------------------------------------------

    def record(self, record: RunRecord) -> IndexEntry:
        """Stream one executed artifact into the store."""
        return self.sink.append(record)

    def run_id_for(self, record: RunRecord) -> str:
        return self.sink.run_id_for(record)

    def query(
        self,
        *,
        artifact: str | None = None,
        spec_fp: str | None = None,
        engine_fp: str | None = None,
        run_id: str | None = None,
    ) -> list[IndexEntry]:
        """Index entries matching every given filter, oldest first."""
        return [
            e
            for e in self.sink.entries()
            if (artifact is None or e.artifact == artifact)
            and (spec_fp is None or e.spec_fingerprint == spec_fp)
            and (engine_fp is None or e.engine_fingerprint == engine_fp)
            and (run_id is None or e.run_id == run_id)
        ]

    def load(self, entry: "IndexEntry | str") -> RunRecord:
        """Rebuild the :class:`RunRecord` behind an index entry or run id."""
        if isinstance(entry, str):
            matches = self.query(run_id=entry)
            if not matches:
                raise StoreError(f"no record with run id {entry!r} in {self.root}")
            entry = matches[-1]
        path = self.root / entry.path
        try:
            text = path.read_text(encoding="utf-8")
            return RunRecord.from_json(text)
        except (OSError, ValueError, KeyError) as exc:
            raise StoreError(f"record file missing or unreadable: {path}") from exc

    def latest(self, artifact: str) -> RunRecord:
        """The most recently streamed record of an artifact.

        Canonical (default-argument) runs are preferred over nested
        subset runs — ``latest("fig5")`` after a campaign is the full
        matrix, not fig6's mini-benchmark sweep.
        """
        picked = pick_latest(self.query(artifact=artifact))
        if picked is None:
            raise StoreError(f"no records for artifact {artifact!r} in {self.root}")
        return self.load(picked)

    # -- maintenance ---------------------------------------------------------

    def gc(
        self, live_engine_fps: "set[str] | frozenset[str]", *, dry_run: bool = False
    ) -> dict[str, Any]:
        """Prune cache entries whose engine fingerprint matches no known
        configuration.

        The solo/corun/scenario cache sections are sharded by engine
        fingerprint; any shard not in ``live_engine_fps`` is
        unreachable by every config the caller still knows (a changed
        machine spec or engine default orphans whole shards) and is
        removed.  Streamed records and the index are history, not
        cache — they are never collected.  With ``dry_run`` nothing is
        deleted; the returned summary reports what would be.

        The scan-and-prune runs under the **exclusive** store lock:
        cache writers hold it shared, so a gc racing a mid-campaign
        process can never ``rmtree`` a shard between that writer's key
        computation and its entry's rename (the prune waits for the
        write to publish, then — if the shard really is orphaned —
        removes the shard including the fresh entry, which is exactly a
        whole-shard decision, never a torn one).
        """
        import shutil

        removed_dirs: list[str] = []
        removed_entries = 0
        kept_entries = 0
        with store_lock(self.root, exclusive=True):
            for section in ("solo", "corun", "scenario"):
                base = self.root / section
                if not base.exists():
                    continue
                for shard in sorted(p for p in base.iterdir() if p.is_dir()):
                    n = sum(1 for _ in shard.rglob("*.json"))
                    if shard.name in live_engine_fps:
                        kept_entries += n
                        continue
                    removed_entries += n
                    removed_dirs.append(str(shard.relative_to(self.root)))
                    if not dry_run:
                        shutil.rmtree(shard)
        return {
            "removed_entries": removed_entries,
            "kept_entries": kept_entries,
            "removed_dirs": removed_dirs,
            "dry_run": dry_run,
        }

    # -- inspection ----------------------------------------------------------

    def describe(self) -> dict[str, int]:
        """Entry counts per store section (the ``store ls`` summary)."""
        def count(section: str) -> int:
            base = self.root / section
            return sum(1 for _ in base.rglob("*.json")) if base.exists() else 0

        return {
            "solo_entries": count("solo"),
            "corun_entries": count("corun"),
            "scenario_entries": count("scenario"),
            "records": count("results"),
            "index_lines": sum(1 for _ in self.sink.entries()),
        }
