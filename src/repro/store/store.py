"""ResultStore: the on-disk half of the Session's measurement caches.

Layout under one store root (see the package docstring in
:mod:`repro.store` for the full tour)::

    <root>/
      store.json                  # schema version marker
      solo/<engine_fp>/<app>-t<T>-<keyfp>.json
      corun/<engine_fp>/<fg>-vs-<bg>-<FT>x<BT>-<keyfp>.json
      scenario/<engine_fp>/<apps-slug>-<keyfp>.json   # N-way scenarios
      results/<artifact>/<run_id>.json
      index.jsonl                 # append-only record index
      manifest.json               # written by `repro run-all`

Cache entries are content-addressed: the filename embeds a
:func:`repro.session.session.fingerprint` of the exact cache key the
:class:`~repro.session.session.Session` uses in memory
(``engine_fingerprint x workload x threads`` for solos,
``engine_fingerprint x fg x bg x fg_threads x bg_threads`` for
co-runs), so a warm store can never serve a result computed under a
different machine spec or engine configuration.

Durability rules:

* every file is written to a ``.tmp-<pid>`` sibling and published with
  :func:`os.replace`, so readers never observe a half-written payload;
* readers treat unparseable or schema-mismatched files as cache misses
  (a crash mid-write costs a re-simulation, never a wrong number);
* the index is append-only JSONL; a torn final line is skipped by
  :meth:`ResultStore.query`.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.engine.results import CoRunResult, ScenarioRunResult, SoloRunResult
from repro.errors import StoreError
from repro.session.base import fingerprint
from repro.session.record import RunRecord
from repro.session.registry import get_runner
from repro.session.scenario import Scenario
from repro.store.codec import (
    decode_corun,
    decode_scenario_result,
    decode_solo,
    encode_corun,
    encode_scenario_result,
    encode_solo,
)

#: Version of the on-disk layout; bumped on incompatible change.
SCHEMA_VERSION = 1

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_name(name: str) -> str:
    """Filesystem-safe slug for a workload/artifact name (readability
    only — uniqueness comes from the key fingerprint suffix)."""
    return _SAFE.sub("_", name) or "_"


def _atomic_write_text(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` via a same-directory rename, so a
    crash mid-write leaves only an ignorable ``.tmp-*`` sibling."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> Any | None:
    """Parse a JSON file; missing, torn or non-JSON files are ``None``."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def live_engine_fingerprints(spec: Any, engine_config: Any) -> set[str]:
    """Every engine fingerprint reachable from one machine spec and
    engine configuration — the allowlist :meth:`ResultStore.gc` keeps.

    The spec and its SMT variant are crossed with every ablation state
    of the engine config: both values of every boolean knob (derived
    from the dataclass fields, so a newly added knob is covered
    automatically — fig4 flips ``prefetchers_on``, the ablation
    benches flip the rest) and every LLC policy a scenario can select.
    Shards outside this set belong to no configuration any runner can
    address from ``(spec, engine_config)``.
    """
    from dataclasses import fields, replace
    from itertools import product

    from repro.engine.interval import LLC_POLICIES

    axes: dict[str, tuple[Any, ...]] = {
        f.name: (True, False)
        for f in fields(engine_config)
        if isinstance(getattr(engine_config, f.name), bool)
    }
    axes["llc_policy"] = tuple(LLC_POLICIES)
    fps: set[str] = set()
    for machine in (spec, spec.smt_variant()):
        for combo in product(*axes.values()):
            cfg = replace(engine_config, **dict(zip(axes.keys(), combo)))
            fps.add(fingerprint(machine, cfg))
    return fps


@dataclass(frozen=True)
class IndexEntry:
    """One line of ``index.jsonl``: where a streamed record landed."""

    run_id: str
    artifact: str
    #: Path of the record file, relative to the store root.
    path: str
    spec_fingerprint: str
    engine_fingerprint: str
    seed: int
    #: Cache hit/miss deltas of the run that produced the record.
    cache: dict[str, int]
    duration_s: float
    #: Non-default invocation arguments (repr'd); empty for a
    #: canonical ``session.run(name)`` execution.
    arguments: dict[str, str]

    @property
    def is_canonical(self) -> bool:
        """True for a default-argument (whole-artifact) run."""
        return not self.arguments

    def to_line(self) -> str:
        return json.dumps({"schema": SCHEMA_VERSION, **asdict(self)})


class RecordSink:
    """Streams :class:`RunRecord`\\ s into ``results/`` + ``index.jsonl``.

    Run ids are content-addressed and timestamp-free — a fingerprint of
    the artifact name, the configuration provenance and the encoded
    payload — so re-running an identical experiment overwrites the same
    record file (idempotent) while the append-only index keeps the full
    invocation history.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.index_path = self.root / "index.jsonl"

    def run_id_for(self, record: RunRecord) -> str:
        prov = record.provenance
        payload = get_runner(record.artifact).encode(record.result)
        fp = fingerprint(
            record.artifact,
            prov.get("spec_fingerprint"),
            prov.get("engine_fingerprint"),
            prov.get("seed"),
            prov.get("threads"),
            prov.get("repetitions"),
            prov.get("jitter"),
            prov.get("workloads"),
            payload,
        )
        return f"{_safe_name(record.artifact)}-{fp}"

    def record_relpath(self, record: RunRecord, run_id: str | None = None) -> str:
        # Accepting a precomputed run_id avoids re-encoding the payload
        # (run ids hash the full encoded result).
        run_id = run_id if run_id is not None else self.run_id_for(record)
        return f"results/{_safe_name(record.artifact)}/{run_id}.json"

    def append(self, record: RunRecord) -> IndexEntry:
        """Persist one record and index it; returns the index entry."""
        prov = record.provenance
        run_id = self.run_id_for(record)
        relpath = self.record_relpath(record, run_id)
        _atomic_write_text(self.root / relpath, record.to_json(indent=1))
        entry = IndexEntry(
            run_id=run_id,
            artifact=record.artifact,
            path=relpath,
            spec_fingerprint=str(prov.get("spec_fingerprint", "")),
            engine_fingerprint=str(prov.get("engine_fingerprint", "")),
            seed=int(prov.get("seed", 0)),
            cache=dict(prov.get("cache", {})),
            duration_s=float(prov.get("duration_s", 0.0)),
            arguments=dict(prov.get("arguments", {})),
        )
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(entry.to_line() + "\n")
        return entry

    def entries(self) -> Iterator[IndexEntry]:
        """All well-formed index lines, oldest first."""
        if not self.index_path.exists():
            return
        with open(self.index_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if data.get("schema") != SCHEMA_VERSION:
                        continue
                    data.pop("schema")
                    yield IndexEntry(**data)
                except (ValueError, TypeError):
                    continue  # torn tail line from a crash mid-append


class ResultStore:
    """Persistent, fingerprint-keyed store for session measurements.

    Three roles in one root directory:

    * a **solo/co-run cache** (:meth:`get_solo` / :meth:`put_solo`,
      :meth:`get_corun` / :meth:`put_corun`) that a
      :class:`~repro.session.session.Session` reads through and writes
      behind, making a cold process with a warm store as fast as a warm
      in-memory session;
    * a **record sink** (:meth:`record`) streaming every executed
      artifact into ``results/`` with an append-only ``index.jsonl``;
    * a **query API** (:meth:`query`, :meth:`latest`, :meth:`load`)
      over that index.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sink = RecordSink(self.root)
        self._check_schema()

    def _check_schema(self) -> None:
        meta_path = self.root / "store.json"
        meta = _read_json(meta_path)
        if meta is None:
            _atomic_write_text(
                meta_path,
                json.dumps(
                    {"schema": SCHEMA_VERSION, "tool": "repro-interference"},
                    indent=1,
                ),
            )
            return
        if meta.get("schema") != SCHEMA_VERSION:
            raise StoreError(
                f"store at {self.root} has schema {meta.get('schema')!r}; "
                f"this build reads schema {SCHEMA_VERSION}"
            )

    # -- solo / co-run cache -------------------------------------------------

    def _solo_path(self, engine_fp: str, workload: str, threads: int) -> Path:
        keyfp = fingerprint("solo", engine_fp, workload, threads)
        return (
            self.root
            / "solo"
            / engine_fp
            / f"{_safe_name(workload)}-t{threads}-{keyfp}.json"
        )

    def _corun_path(
        self, engine_fp: str, fg: str, bg: str, fg_threads: int, bg_threads: int
    ) -> Path:
        keyfp = fingerprint("corun", engine_fp, fg, bg, fg_threads, bg_threads)
        return (
            self.root
            / "corun"
            / engine_fp
            / f"{_safe_name(fg)}-vs-{_safe_name(bg)}-{fg_threads}x{bg_threads}-{keyfp}.json"
        )

    @staticmethod
    def _load_entry(path: Path, kind: str, key: dict[str, Any]) -> Any | None:
        data = _read_json(path)
        if (
            not isinstance(data, dict)
            or data.get("schema") != SCHEMA_VERSION
            or data.get("kind") != kind
            or data.get("key") != key
        ):
            return None  # missing, torn, foreign-schema, or key collision
        return data["result"]

    def get_solo(
        self, engine_fp: str, workload: str, threads: int
    ) -> SoloRunResult | None:
        key = {"engine_fingerprint": engine_fp, "workload": workload, "threads": threads}
        payload = self._load_entry(
            self._solo_path(engine_fp, workload, threads), "solo", key
        )
        if payload is None:
            return None
        try:
            return decode_solo(payload)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None  # corrupt-but-parseable entry: a miss, never data

    def put_solo(
        self, engine_fp: str, workload: str, threads: int, result: SoloRunResult
    ) -> None:
        _atomic_write_text(
            self._solo_path(engine_fp, workload, threads),
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "kind": "solo",
                    "key": {
                        "engine_fingerprint": engine_fp,
                        "workload": workload,
                        "threads": threads,
                    },
                    "result": encode_solo(result),
                }
            ),
        )

    def _scenario_path(self, engine_fp: str, scenario: Scenario) -> Path:
        keyfp = fingerprint("scenario", engine_fp, scenario.fingerprint)
        slug = "+".join(
            f"{_safe_name(p.workload)}.{p.threads}" for p in scenario.placements
        )[:64]
        return self.root / "scenario" / engine_fp / f"{slug}-{keyfp}.json"

    def get_scenario(
        self, engine_fp: str, scenario: Scenario
    ) -> ScenarioRunResult | None:
        """Cached N-way scenario result, or ``None``.

        2-app scenarios are *not* stored here — the session bridges
        them onto the legacy ``corun/`` section (:meth:`get_corun`), so
        pre-redesign warm stores keep serving them unchanged.
        """
        key = {"engine_fingerprint": engine_fp, "scenario": scenario.payload()}
        payload = self._load_entry(
            self._scenario_path(engine_fp, scenario), "scenario", key
        )
        if payload is None:
            return None
        try:
            return decode_scenario_result(payload)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None  # corrupt-but-parseable entry: a miss, never data

    def put_scenario(
        self, engine_fp: str, scenario: Scenario, result: ScenarioRunResult
    ) -> None:
        _atomic_write_text(
            self._scenario_path(engine_fp, scenario),
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "kind": "scenario",
                    "key": {
                        "engine_fingerprint": engine_fp,
                        "scenario": scenario.payload(),
                    },
                    "result": encode_scenario_result(result),
                }
            ),
        )

    def scenarios(self) -> list[dict[str, Any]]:
        """Key metadata of every persisted scenario entry (``repro
        scenario ls``): engine fingerprint, placements, overrides.

        Listing parses each entry file in full (the key shares the
        file with the encoded result), so cost scales with total entry
        bytes; fine for the hundreds-of-entries scale this store
        targets — a key sidecar/index is the upgrade path beyond that.
        """
        base = self.root / "scenario"
        out: list[dict[str, Any]] = []
        if not base.exists():
            return out
        for path in sorted(base.rglob("*.json")):
            data = _read_json(path)
            if (
                not isinstance(data, dict)
                or data.get("schema") != SCHEMA_VERSION
                or data.get("kind") != "scenario"
                or not isinstance(data.get("key"), dict)
            ):
                continue
            entry = dict(data["key"])
            entry["path"] = str(path.relative_to(self.root))
            out.append(entry)
        return out

    def get_corun(
        self, engine_fp: str, fg: str, bg: str, fg_threads: int, bg_threads: int
    ) -> CoRunResult | None:
        key = {
            "engine_fingerprint": engine_fp,
            "fg": fg,
            "bg": bg,
            "fg_threads": fg_threads,
            "bg_threads": bg_threads,
        }
        payload = self._load_entry(
            self._corun_path(engine_fp, fg, bg, fg_threads, bg_threads), "corun", key
        )
        if payload is None:
            return None
        try:
            return decode_corun(payload)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None  # corrupt-but-parseable entry: a miss, never data

    def put_corun(
        self,
        engine_fp: str,
        fg: str,
        bg: str,
        fg_threads: int,
        bg_threads: int,
        result: CoRunResult,
    ) -> None:
        _atomic_write_text(
            self._corun_path(engine_fp, fg, bg, fg_threads, bg_threads),
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "kind": "corun",
                    "key": {
                        "engine_fingerprint": engine_fp,
                        "fg": fg,
                        "bg": bg,
                        "fg_threads": fg_threads,
                        "bg_threads": bg_threads,
                    },
                    "result": encode_corun(result),
                }
            ),
        )

    # -- record sink + query -------------------------------------------------

    def record(self, record: RunRecord) -> IndexEntry:
        """Stream one executed artifact into the store."""
        return self.sink.append(record)

    def run_id_for(self, record: RunRecord) -> str:
        return self.sink.run_id_for(record)

    def query(
        self,
        *,
        artifact: str | None = None,
        spec_fp: str | None = None,
        engine_fp: str | None = None,
        run_id: str | None = None,
    ) -> list[IndexEntry]:
        """Index entries matching every given filter, oldest first."""
        return [
            e
            for e in self.sink.entries()
            if (artifact is None or e.artifact == artifact)
            and (spec_fp is None or e.spec_fingerprint == spec_fp)
            and (engine_fp is None or e.engine_fingerprint == engine_fp)
            and (run_id is None or e.run_id == run_id)
        ]

    def load(self, entry: "IndexEntry | str") -> RunRecord:
        """Rebuild the :class:`RunRecord` behind an index entry or run id."""
        if isinstance(entry, str):
            matches = self.query(run_id=entry)
            if not matches:
                raise StoreError(f"no record with run id {entry!r} in {self.root}")
            entry = matches[-1]
        path = self.root / entry.path
        try:
            text = path.read_text(encoding="utf-8")
            return RunRecord.from_json(text)
        except (OSError, ValueError, KeyError) as exc:
            raise StoreError(f"record file missing or unreadable: {path}") from exc

    def latest(self, artifact: str) -> RunRecord:
        """The most recently streamed record of an artifact.

        Canonical (default-argument) runs are preferred over nested
        subset runs — ``latest("fig5")`` after a campaign is the full
        matrix, not fig6's mini-benchmark sweep.
        """
        entries = self.query(artifact=artifact)
        if not entries:
            raise StoreError(f"no records for artifact {artifact!r} in {self.root}")
        canonical = [e for e in entries if e.is_canonical]
        return self.load((canonical or entries)[-1])

    # -- maintenance ---------------------------------------------------------

    def gc(
        self, live_engine_fps: "set[str] | frozenset[str]", *, dry_run: bool = False
    ) -> dict[str, Any]:
        """Prune cache entries whose engine fingerprint matches no known
        configuration.

        The solo/corun/scenario cache sections are sharded by engine
        fingerprint; any shard not in ``live_engine_fps`` is
        unreachable by every config the caller still knows (a changed
        machine spec or engine default orphans whole shards) and is
        removed.  Streamed records and the index are history, not
        cache — they are never collected.  With ``dry_run`` nothing is
        deleted; the returned summary reports what would be.
        """
        import shutil

        removed_dirs: list[str] = []
        removed_entries = 0
        kept_entries = 0
        for section in ("solo", "corun", "scenario"):
            base = self.root / section
            if not base.exists():
                continue
            for shard in sorted(p for p in base.iterdir() if p.is_dir()):
                n = sum(1 for _ in shard.rglob("*.json"))
                if shard.name in live_engine_fps:
                    kept_entries += n
                    continue
                removed_entries += n
                removed_dirs.append(str(shard.relative_to(self.root)))
                if not dry_run:
                    shutil.rmtree(shard)
        return {
            "removed_entries": removed_entries,
            "kept_entries": kept_entries,
            "removed_dirs": removed_dirs,
            "dry_run": dry_run,
        }

    # -- inspection ----------------------------------------------------------

    def describe(self) -> dict[str, int]:
        """Entry counts per store section (the ``store ls`` summary)."""
        def count(section: str) -> int:
            base = self.root / section
            return sum(1 for _ in base.rglob("*.json")) if base.exists() else 0

        return {
            "solo_entries": count("solo"),
            "corun_entries": count("corun"),
            "scenario_entries": count("scenario"),
            "records": count("results"),
            "index_lines": sum(1 for _ in self.sink.entries()),
        }
