"""Campaign manifests: one JSON capturing a whole ``run-all`` pass.

``repro run-all`` executes every registered runner through one
:class:`~repro.session.session.Session` and then freezes the campaign
into a ``manifest.json``::

    {
      "schema": 1,
      "config": {"seed": 0, "threads": 4, ..., "workloads": [...]},
      "spec_fingerprint": "...", "engine_fingerprint": "...",
      "executor": "serial",
      "cache": {"solo_hits": ..., "corun_disk_hits": ..., ...},
      "artifacts": {
        "fig5": {"run_id": "fig5-<fp>", "path": "results/fig5/...json",
                  "provenance": {...}},
        ...
      }
    }

Every artifact's provenance (fingerprints, per-run cache deltas,
duration) is recorded, and — when a store is attached — the ``run_id``
and record path tie each manifest row to the streamed record in
``results/``, so a campaign is fully re-loadable from disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.session.base import fingerprint
from repro.session.registry import runner_names
from repro.store.locking import store_lock
from repro.store.store import (
    SCHEMA_VERSION,
    ResultStore,
    _atomic_write_text,
    pick_latest,
)


def build_manifest(session: Any, store: ResultStore | None = None) -> dict[str, Any]:
    """Freeze a session's executed records into a manifest dict."""
    config = session.config
    artifacts: dict[str, Any] = {}
    for record in session.records:
        if record.artifact in artifacts and record.provenance.get("arguments"):
            continue  # keep the canonical run over a nested subset run
        row: dict[str, Any] = {"provenance": dict(record.provenance)}
        if store is not None:
            run_id = store.run_id_for(record)
            row["run_id"] = run_id
            row["path"] = store.sink.record_relpath(record, run_id)
        artifacts[record.artifact] = row
    return {
        "schema": SCHEMA_VERSION,
        "config": {
            "seed": config.seed,
            "threads": config.threads,
            "repetitions": config.repetitions,
            "jitter": config.jitter,
            "workloads": list(config.workloads),
        },
        "spec_fingerprint": session.spec_fingerprint(),
        "engine_fingerprint": session.engine_fingerprint(),
        "executor": session.executor.name,
        "cache": session.stats.snapshot(),
        "artifacts": artifacts,
    }


def _freeze(manifest: dict[str, Any], path: Path, store: ResultStore | None) -> None:
    """Atomically write a manifest; store-attached freezes take the
    exclusive store lock so two concurrent campaigns serialize their
    ``manifest.json`` publishes instead of interleaving them."""
    if store is not None:
        with store_lock(store.root, exclusive=True):
            _atomic_write_text(path, json.dumps(manifest, indent=1))
    else:
        _atomic_write_text(path, json.dumps(manifest, indent=1))


def write_manifest(
    session: Any,
    path: str | Path,
    store: ResultStore | None = None,
) -> dict[str, Any]:
    """Build and atomically write a manifest; returns the dict."""
    manifest = build_manifest(session, store)
    _freeze(manifest, Path(path), store)
    return manifest


def build_manifest_from_store(
    store: ResultStore,
    config: Any,
    *,
    executor_name: str = "campaign",
    include_extensions: bool = True,
) -> dict[str, Any]:
    """Freeze a campaign manifest from the *store's* merged index.

    A sharded or multi-process campaign has no single session holding
    every record, so the manifest is rebuilt from what the store
    actually persisted: for each registered runner, the latest
    canonical index entry (falling back to the latest entry of any
    shape) supplies the run id, record path and provenance; artifacts
    with no record yet are simply absent (a partial shard writes a
    partial manifest — the final shard's freeze covers everything).
    Because run ids are content-addressed, the resulting manifest is
    ``store diff``-identical to a serial campaign's whenever the cells
    are.

    The top-level ``cache`` economics sum the per-record deltas of the
    rows included, i.e. the whole campaign's hits and misses across
    every worker process.
    """
    by_artifact: dict[str, list[Any]] = {}
    for entry in store.sink.entries():
        by_artifact.setdefault(entry.artifact, []).append(entry)
    artifacts: dict[str, Any] = {}
    cache_totals: dict[str, int] = {}
    for name in runner_names(artifact_only=not include_extensions):
        picked = pick_latest(by_artifact.get(name, []))
        if picked is None:
            continue
        record = store.load(picked)
        artifacts[name] = {
            "provenance": dict(record.provenance),
            "run_id": picked.run_id,
            "path": picked.path,
        }
        for key, delta in (record.provenance.get("cache") or {}).items():
            cache_totals[key] = cache_totals.get(key, 0) + delta
    return {
        "schema": SCHEMA_VERSION,
        "config": {
            "seed": config.seed,
            "threads": config.threads,
            "repetitions": config.repetitions,
            "jitter": config.jitter,
            "workloads": list(config.workloads),
        },
        "spec_fingerprint": fingerprint(config.spec),
        "engine_fingerprint": fingerprint(config.spec, config.engine_config),
        "executor": executor_name,
        "cache": cache_totals,
        "artifacts": artifacts,
    }


def write_manifest_from_store(
    store: ResultStore,
    config: Any,
    path: str | Path | None = None,
    *,
    executor_name: str = "campaign",
    include_extensions: bool = True,
) -> dict[str, Any]:
    """Build a from-store manifest and freeze it (default:
    ``<store>/manifest.json``).

    Both the index read *and* the write happen under one exclusive
    store lock: two concurrent freezes (e.g. two shards finishing
    together) serialize completely, so the later publisher always
    re-reads the index after the earlier one's records landed — a
    stale partial manifest can never overwrite a more complete one.
    """
    target = Path(path) if path is not None else store.root / "manifest.json"
    with store_lock(store.root, exclusive=True):
        manifest = build_manifest_from_store(
            store,
            config,
            executor_name=executor_name,
            include_extensions=include_extensions,
        )
        _atomic_write_text(target, json.dumps(manifest, indent=1))
    return manifest


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read a manifest file; raises :class:`StoreError` on problems."""
    from repro.errors import StoreError

    p = Path(path)
    if p.is_dir():
        p = p / "manifest.json"
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise StoreError(f"manifest missing or unreadable: {p}") from exc
    if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
        raise StoreError(f"{p} is not a schema-{SCHEMA_VERSION} campaign manifest")
    return data


#: Artifact-row fields compared by :func:`diff_manifests`; run ids are
#: content-addressed, so a run_id match *is* a bit-identical result.
_DIFF_FIELDS = ("run_id", "path")
_PROV_FIELDS = ("spec_fingerprint", "engine_fingerprint", "arguments", "seed")


def diff_manifests(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Compare two campaign manifests cell-by-cell.

    Returns a structured report: artifacts present in only one
    campaign, artifacts whose identity (content-addressed run id,
    record path, or provenance fingerprints) changed — with the pair of
    differing values per field — plus top-level config changes.
    Artifacts whose compared fields all match are listed as identical.
    """
    arts_a = a.get("artifacts", {})
    arts_b = b.get("artifacts", {})
    changed: dict[str, dict[str, list[Any]]] = {}
    identical: list[str] = []
    for name in sorted(set(arts_a) & set(arts_b)):
        row_a, row_b = arts_a[name], arts_b[name]
        prov_a = row_a.get("provenance", {})
        prov_b = row_b.get("provenance", {})
        diffs: dict[str, list[Any]] = {}
        for field in _DIFF_FIELDS:
            if row_a.get(field) != row_b.get(field):
                diffs[field] = [row_a.get(field), row_b.get(field)]
        for field in _PROV_FIELDS:
            if prov_a.get(field) != prov_b.get(field):
                diffs[field] = [prov_a.get(field), prov_b.get(field)]
        if diffs:
            changed[name] = diffs
        else:
            identical.append(name)
    config_changes = {
        key: [a.get("config", {}).get(key), b.get("config", {}).get(key)]
        for key in sorted(set(a.get("config", {})) | set(b.get("config", {})))
        if a.get("config", {}).get(key) != b.get("config", {}).get(key)
    }
    for key in ("spec_fingerprint", "engine_fingerprint"):
        if a.get(key) != b.get(key):
            config_changes[key] = [a.get(key), b.get(key)]
    return {
        "only_in_a": sorted(set(arts_a) - set(arts_b)),
        "only_in_b": sorted(set(arts_b) - set(arts_a)),
        "changed": changed,
        "identical": identical,
        "config_changes": config_changes,
    }


def render_diff(diff: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`diff_manifests` report."""
    lines: list[str] = []
    if diff["config_changes"]:
        lines.append("config changes:")
        for key, (va, vb) in sorted(diff["config_changes"].items()):
            lines.append(f"  {key}: {va!r} -> {vb!r}")
    for label, names in (("only in A", diff["only_in_a"]),
                         ("only in B", diff["only_in_b"])):
        if names:
            lines.append(f"{label}: {', '.join(names)}")
    for name, fields in diff["changed"].items():
        lines.append(f"changed {name}:")
        for field, (va, vb) in sorted(fields.items()):
            lines.append(f"  {field}: {va!r} -> {vb!r}")
    lines.append(
        f"{len(diff['identical'])} identical, {len(diff['changed'])} changed, "
        f"{len(diff['only_in_a']) + len(diff['only_in_b'])} missing"
    )
    return "\n".join(lines)
