"""Campaign manifests: one JSON capturing a whole ``run-all`` pass.

``repro run-all`` executes every registered runner through one
:class:`~repro.session.session.Session` and then freezes the campaign
into a ``manifest.json``::

    {
      "schema": 1,
      "config": {"seed": 0, "threads": 4, ..., "workloads": [...]},
      "spec_fingerprint": "...", "engine_fingerprint": "...",
      "executor": "serial",
      "cache": {"solo_hits": ..., "corun_disk_hits": ..., ...},
      "artifacts": {
        "fig5": {"run_id": "fig5-<fp>", "path": "results/fig5/...json",
                  "provenance": {...}},
        ...
      }
    }

Every artifact's provenance (fingerprints, per-run cache deltas,
duration) is recorded, and — when a store is attached — the ``run_id``
and record path tie each manifest row to the streamed record in
``results/``, so a campaign is fully re-loadable from disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.store.store import SCHEMA_VERSION, ResultStore, _atomic_write_text


def build_manifest(session: Any, store: ResultStore | None = None) -> dict[str, Any]:
    """Freeze a session's executed records into a manifest dict."""
    config = session.config
    artifacts: dict[str, Any] = {}
    for record in session.records:
        if record.artifact in artifacts and record.provenance.get("arguments"):
            continue  # keep the canonical run over a nested subset run
        row: dict[str, Any] = {"provenance": dict(record.provenance)}
        if store is not None:
            run_id = store.run_id_for(record)
            row["run_id"] = run_id
            row["path"] = store.sink.record_relpath(record, run_id)
        artifacts[record.artifact] = row
    return {
        "schema": SCHEMA_VERSION,
        "config": {
            "seed": config.seed,
            "threads": config.threads,
            "repetitions": config.repetitions,
            "jitter": config.jitter,
            "workloads": list(config.workloads),
        },
        "spec_fingerprint": session.spec_fingerprint(),
        "engine_fingerprint": session.engine_fingerprint(),
        "executor": session.executor.name,
        "cache": session.stats.snapshot(),
        "artifacts": artifacts,
    }


def write_manifest(
    session: Any,
    path: str | Path,
    store: ResultStore | None = None,
) -> dict[str, Any]:
    """Build and atomically write a manifest; returns the dict."""
    manifest = build_manifest(session, store)
    _atomic_write_text(Path(path), json.dumps(manifest, indent=1))
    return manifest
