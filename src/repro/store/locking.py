"""Advisory file locking for multi-process store sharing.

One :class:`FileLock` guards a :class:`~repro.store.store.ResultStore`
root against the only cross-process races the layout cannot absorb by
construction:

* **cache writers** (``put_solo`` / ``put_corun`` / ``put_scenario``)
  take the lock *shared* — any number of campaign processes may write
  entries concurrently (each entry is an atomic tmp+rename publish);
* **maintenance** (``store gc``'s shard pruning, a campaign manifest
  freeze) takes the lock *exclusive* — ``shutil.rmtree`` of a cache
  shard must never interleave with a writer materializing a file in
  that same shard, and two campaigns must not freeze ``manifest.json``
  at the same instant.

The lock file is ``<root>/.lock``; it carries no data and is never
deleted (deleting a lock file while another process holds its fd is
the classic advisory-lock bug).  On POSIX the implementation is
``fcntl.flock`` — per open-file-description, so two handles *within*
one process also exclude each other, which is what lets the test suite
exercise writer-vs-gc interleavings with threads.  On Windows a
``msvcrt.locking`` shim provides exclusive-only byte locks (shared
acquisitions degrade to exclusive — correct, just less concurrent).
Platforms with neither module fall back to a no-op lock: single-process
use stays safe because every write is already atomic.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO

__all__ = ["FileLock", "HAVE_FILE_LOCKS", "store_lock"]

try:  # POSIX
    import fcntl

    HAVE_FILE_LOCKS = True

    def _acquire(fh: IO[bytes], *, exclusive: bool, blocking: bool) -> bool:
        flags = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        if not blocking:
            flags |= fcntl.LOCK_NB
        try:
            fcntl.flock(fh.fileno(), flags)
        except OSError:
            return False
        return True

    def _release(fh: IO[bytes]) -> None:
        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

except ImportError:  # pragma: no cover - exercised only on Windows
    try:
        import msvcrt

        HAVE_FILE_LOCKS = True

        def _acquire(fh: IO[bytes], *, exclusive: bool, blocking: bool) -> bool:
            # msvcrt has no shared mode: every acquisition is exclusive.
            mode = msvcrt.LK_LOCK if blocking else msvcrt.LK_NBLCK
            try:
                fh.seek(0)
                msvcrt.locking(fh.fileno(), mode, 1)
            except OSError:
                return False
            return True

        def _release(fh: IO[bytes]) -> None:
            fh.seek(0)
            msvcrt.locking(fh.fileno(), msvcrt.LK_UNLCK, 1)

    except ImportError:
        HAVE_FILE_LOCKS = False

        def _acquire(fh: IO[bytes], *, exclusive: bool, blocking: bool) -> bool:
            return True

        def _release(fh: IO[bytes]) -> None:
            pass


class FileLock:
    """Advisory lock on one path, shared or exclusive, context-managed.

    ::

        with FileLock(root / ".lock", exclusive=False):   # writer
            ...publish a cache entry...

        lock = FileLock(root / ".lock")                   # maintenance
        if lock.acquire(blocking=False):
            try: ...
            finally: lock.release()

    Instances are not reentrant and not thread-safe — use one per
    acquisition site (they are cheap: one ``open`` + one ``flock``).
    """

    def __init__(self, path: str | os.PathLike[str], *, exclusive: bool = True) -> None:
        self.path = Path(path)
        self.exclusive = exclusive
        self._fh: IO[bytes] | None = None

    @property
    def held(self) -> bool:
        return self._fh is not None

    def acquire(self, *, blocking: bool = True) -> bool:
        """Take the lock; returns False only for a failed non-blocking try.

        A *blocking* acquire that still fails (``msvcrt`` gives up after
        ~10 s of contention; ``flock`` can be interrupted by a signal)
        raises instead of returning — callers relying on ``with lock:``
        must never proceed unlocked into a prune or manifest freeze.
        """
        if self._fh is not None:
            return True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "ab")
        if not _acquire(fh, exclusive=self.exclusive, blocking=blocking):
            fh.close()
            if blocking:
                from repro.errors import StoreError

                raise StoreError(
                    f"could not acquire {'exclusive' if self.exclusive else 'shared'} "
                    f"lock on {self.path} (held elsewhere for too long?)"
                )
            return False
        self._fh = fh
        return True

    def release(self) -> None:
        if self._fh is None:
            return
        try:
            _release(self._fh)
        finally:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


def store_lock(root: str | os.PathLike[str], *, exclusive: bool = True) -> FileLock:
    """The store-root lock: ``<root>/.lock``, shared for cache writers,
    exclusive for ``gc`` shard pruning and manifest freezes."""
    return FileLock(Path(root) / ".lock", exclusive=exclusive)
