"""repro.store — the persistent results database for sweep campaigns.

The in-memory caches of :class:`~repro.session.session.Session` (PR 1)
die with the process; this package is their on-disk continuation plus
the beginnings of a sweep-campaign results database:

* :class:`ResultStore` — a fingerprint-keyed solo/co-run cache with
  atomic writes and a versioned schema.  A session constructed with
  ``Session(config, store=ResultStore(".repro-store"))`` (or CLI
  ``repro --store .repro-store ...``) reads through the store and
  writes behind it, so a *cold process over a warm store* costs about
  as much as PR 1's warm in-memory path.
* :class:`RecordSink` — every executed artifact's
  :class:`~repro.session.record.RunRecord` is streamed to
  ``results/<artifact>/<run_id>.json`` (run ids are content-addressed
  and timestamp-free) and indexed in an append-only ``index.jsonl``.
* a query API — ``store.query(artifact="fig5", spec_fp=...)``,
  ``store.latest("fig5")``, ``store.load(run_id)``.
* :func:`write_manifest` — ``repro run-all`` freezes a whole campaign
  (every registered runner, all provenance, all record paths) into one
  ``manifest.json``.

Store layout (``<root>`` is the directory handed to ``--store``)::

    <root>/
      store.json                   schema marker {"schema": 1, ...}
      solo/<engine_fp>/            one JSON per cached solo run,
        <app>-t<T>-<keyfp>.json      key: engine_fp x workload x threads
      corun/<engine_fp>/           one JSON per cached co-run,
        <fg>-vs-<bg>-<FT>x<BT>-<keyfp>.json
                                     key: engine_fp x fg x bg x fg_t x bg_t
      results/<artifact>/          streamed RunRecords
        <run_id>.json
      index.jsonl                  append-only record index
      manifest.json                last `repro run-all` campaign

Keys reuse :func:`repro.session.session.fingerprint` exactly — the
same function that keys the in-memory caches — so a result persisted
under one machine spec / engine configuration can never warm a session
running a different one.  All writes are atomic (tmp + rename);
readers treat torn or foreign files as misses, never as data.
"""

from repro.store.codec import (
    decode_corun,
    decode_scenario_result,
    decode_solo,
    encode_corun,
    encode_scenario_result,
    encode_solo,
)
from repro.store.manifest import (
    build_manifest,
    diff_manifests,
    load_manifest,
    render_diff,
    write_manifest,
)
from repro.store.store import (
    SCHEMA_VERSION,
    IndexEntry,
    RecordSink,
    ResultStore,
    live_engine_fingerprints,
)

__all__ = [
    "SCHEMA_VERSION",
    "IndexEntry",
    "RecordSink",
    "ResultStore",
    "build_manifest",
    "decode_corun",
    "decode_scenario_result",
    "decode_solo",
    "diff_manifests",
    "encode_corun",
    "encode_scenario_result",
    "encode_solo",
    "live_engine_fingerprints",
    "load_manifest",
    "render_diff",
    "write_manifest",
]
