"""repro.store — the persistent results database for sweep campaigns.

The in-memory caches of :class:`~repro.session.session.Session` (PR 1)
die with the process; this package is their on-disk continuation plus
the sweep-campaign results database:

* :class:`ResultStore` — a fingerprint-keyed solo/co-run/scenario
  cache with atomic writes and a versioned schema.  A session
  constructed with ``Session(config, store=ResultStore(".repro-store"))``
  (or CLI ``repro --store .repro-store ...``) reads through the store
  and writes behind it, so a *cold process over a warm store* costs
  about as much as PR 1's warm in-memory path.
* :class:`RecordSink` — every executed artifact's
  :class:`~repro.session.record.RunRecord` is streamed to
  ``results/<artifact>/<run_id>.json`` (run ids are content-addressed
  and timestamp-free) and indexed in an append-only, **per-process
  segmented** index under ``index/``.
* a query API — ``store.query(artifact="fig5", spec_fp=...)``,
  ``store.latest("fig5")``, ``store.load(run_id)``.
* :func:`write_manifest` / :func:`write_manifest_from_store` — ``repro
  run-all`` freezes a whole campaign (every registered runner, all
  provenance, all record paths) into one ``manifest.json``; sharded and
  multi-process campaigns rebuild it from the store's merged index.
* :func:`run_campaign` — ``repro campaign``: fork N worker processes
  over the runner registry with claim-file work-stealing, all sharing
  one store (see :mod:`repro.store.campaign`).

Store layout (``<root>`` is the directory handed to ``--store``)::

    <root>/
      store.json                   schema marker {"schema": 1, ...}
      .lock                        advisory store lock (never deleted)
      solo/<engine_fp>/            one JSON per cached solo run,
        <app>-t<T>-<keyfp>.json      key: engine_fp x workload x threads
      corun/<engine_fp>/           one JSON per cached co-run,
        <fg>-vs-<bg>-<FT>x<BT>-<keyfp>.json
                                     key: engine_fp x fg x bg x fg_t x bg_t
      scenario/<engine_fp>/        one JSON per cached N-way scenario,
        <apps-slug>-<keyfp>.json     key: engine_fp x scenario fingerprint
      results/<artifact>/          streamed RunRecords
        <run_id>.json
      index/<pid>-<token>.jsonl    per-process record-index segments
      index.jsonl                  legacy single-file index (read, not
                                   appended; pre-segment stores merge in)
      campaign/<token>/*.claim     work-stealing claims of a live
                                   `repro campaign` (removed on success)
      manifest.json                last campaign freeze

Keys reuse :func:`repro.session.session.fingerprint` exactly — the
same function that keys the in-memory caches — so a result persisted
under one machine spec / engine configuration can never warm a session
running a different one.

Concurrency semantics (:mod:`repro.store.locking`): any number of
processes may share one store.  Every entry and record write is atomic
(tmp + rename); each process appends index lines to its own
``index/<pid>-<token>.jsonl`` segment, so index lines are never
interleaved or torn mid-file; cache writers hold the store lock
*shared* while ``store gc`` shard-pruning and manifest freezes hold it
*exclusive*.  Readers treat torn or foreign files as misses, never as
data, and skipped foreign-schema index lines raise a one-time
:class:`~repro.errors.StoreWarning`.
"""

from repro.store.campaign import parse_shard, run_campaign, shard_names
from repro.store.codec import (
    decode_corun,
    decode_scenario_result,
    decode_solo,
    encode_corun,
    encode_scenario_result,
    encode_solo,
)
from repro.store.locking import FileLock, store_lock
from repro.store.manifest import (
    build_manifest,
    build_manifest_from_store,
    diff_manifests,
    load_manifest,
    render_diff,
    write_manifest,
    write_manifest_from_store,
)
from repro.store.store import (
    SCHEMA_VERSION,
    IndexEntry,
    RecordSink,
    ResultStore,
    live_engine_fingerprints,
)

__all__ = [
    "SCHEMA_VERSION",
    "FileLock",
    "IndexEntry",
    "RecordSink",
    "ResultStore",
    "build_manifest",
    "build_manifest_from_store",
    "decode_corun",
    "decode_scenario_result",
    "decode_solo",
    "diff_manifests",
    "encode_corun",
    "encode_scenario_result",
    "encode_solo",
    "live_engine_fingerprints",
    "load_manifest",
    "parse_shard",
    "render_diff",
    "run_campaign",
    "shard_names",
    "store_lock",
    "write_manifest",
    "write_manifest_from_store",
]
