"""Multi-process campaigns: many workers, one shared ResultStore.

The paper's characterization is a campaign of thousands of
solo/co-run/consolidation cells; ``repro run-all`` executes it in one
process.  This module shards that campaign across N worker processes
that share a single store:

* :func:`shard_names` — the deterministic static partition behind
  ``repro run-all --shard I/N`` (run shard ``1/2`` on one host and
  ``2/2`` on another against the same store, in any order or at the
  same time);
* :func:`run_campaign` — the dynamic driver behind ``repro campaign``:
  fork ``workers`` processes over the runner registry with
  **work-stealing** — each worker walks the full artifact list and
  claims artifacts one at a time via atomic ``O_EXCL`` claim files, so
  a fast worker simply claims more.  Cells another worker already
  persisted are disk hits through the shared solo/co-run/scenario
  cache, never re-simulations;
* after the workers join, the campaign manifest is rebuilt from the
  store's merged index
  (:func:`~repro.store.manifest.write_manifest_from_store`) — run ids
  are content-addressed, so the result is ``store diff``-identical to
  a serial ``run-all``.

Claim files live under ``<root>/campaign/<token>/`` (one token per
campaign invocation) and are removed when the campaign completes; a
crashed campaign leaves them behind as a debugging breadcrumb, and the
next invocation mints a fresh token so stale claims never block it.

**Crashed-worker recovery:** a worker that dies mid-claim (OOM-killed,
segfault) used to fail the whole campaign.  Now, after every worker
has exited, the driver reconciles the claim files against the
completed-artifact reports: claims whose owner pid is verifiably dead
are re-queued and executed inline by the driver process (heaviest
first, mostly warm — whatever the dead worker persisted before dying
is served from the shared store).  A claim held by a *live* pid is
never stolen; that still fails the campaign rather than risk running
an artifact twice concurrently.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from repro.errors import CampaignError
from repro.session.registry import runner_names
from repro.store.store import ResultStore, _safe_name
from repro.telemetry.tracer import get_tracer

__all__ = ["parse_shard", "run_campaign", "shard_names"]

logger = logging.getLogger(__name__)


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse a ``--shard I/N`` spec into ``(index, count)``, 1-based.

    ``"1/2"`` is the first of two shards.  Raises
    :class:`CampaignError` on malformed or out-of-range specs.
    """
    try:
        index_s, count_s = spec.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise CampaignError(
            f"bad shard spec {spec!r}; expected I/N, e.g. --shard 1/2"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise CampaignError(
            f"shard index out of range in {spec!r}; need 1 <= I <= N"
        )
    return index, count


def shard_names(names: Sequence[str], index: int, count: int) -> list[str]:
    """Round-robin slice ``index``/``count`` (1-based) of an artifact
    list; the ``count`` shards are disjoint and cover every name."""
    return list(names[index - 1 :: count])


#: Static cost ranks for a cold store (heavier first) — measured once
#: on the reference roster; unknown artifacts default to light.  A
#: store with history overrides these with real recorded durations.
_STATIC_COST = {
    "predict": 100,
    "fig5": 90,
    "consolidate-n": 80,
    "fig6": 70,
    "fig8": 65,
    "fig2": 60,
    "table4": 50,
    "allocation": 45,
    "scenario-set": 40,
    "sched-replay": 42,
    "traffic-replay": 44,
    "cat-sweep": 38,
    "table3": 35,
    "fig4": 30,
}


def cost_ordered(names: Sequence[str], store: "ResultStore | None" = None) -> list[str]:
    """Order artifacts heaviest-first for LPT-style claim scheduling.

    A campaign's makespan is bounded by its most expensive artifact, so
    workers must start the heavy ones first — a worker that picks up
    ``predict`` last serializes the whole tail behind it.  Costs come
    from the store's own index when it has history (recorded
    ``duration_s`` of earlier canonical runs — the index doubles as the
    scheduler's cost model); artifacts never run before fall back to a
    static rank.
    """
    history: dict[str, float] = {}
    if store is not None:
        for entry in store.sink.entries():
            if entry.is_canonical and entry.duration_s > 0:
                history[entry.artifact] = entry.duration_s
    order = {n: i for i, n in enumerate(names)}
    return sorted(
        names,
        key=lambda n: (
            -history.get(n, -1.0),
            -_STATIC_COST.get(n, 10),
            order[n],
        ),
    )


def _claim(claim_dir: Path, name: str) -> bool:
    """Atomically claim one artifact for this process; False if another
    worker got there first.  ``O_CREAT | O_EXCL`` is the cross-process
    test-and-set — no lock needed, losers see ``FileExistsError``."""
    try:
        fd = os.open(
            claim_dir / f"{_safe_name(name)}.claim",
            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
        )
    except FileExistsError:
        return False
    try:
        os.write(fd, f"{os.getpid()}\n".encode())
    finally:
        os.close(fd)
    return True


def _claim_owner(claim_path: Path) -> int | None:
    """The pid recorded in a claim file; ``None`` when the file is
    missing, torn or empty (a worker that died between creating the
    claim and writing its pid)."""
    try:
        text = claim_path.read_text().strip()
        return int(text) if text else None
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    """Signal-0 liveness probe; permission errors mean *alive*.

    On Windows ``os.kill(pid, 0)`` would *terminate* the process
    instead of probing it, so there we conservatively report every pid
    as alive — recovery degrades to failing the campaign rather than
    killing (or stealing from) a process that may still be running.
    """
    if pid <= 0:
        return False
    if os.name == "nt":  # pragma: no cover - POSIX CI
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


@dataclass(frozen=True)
class _CampaignTask:
    """Everything one worker process needs (picklable primitives)."""

    store_root: str
    config: Any
    names: tuple[str, ...]
    claim_dir: str
    executor: str | None
    chunksize: int | None


def _campaign_worker(task: _CampaignTask) -> dict[str, Any]:
    """Run inside one worker process: claim artifacts off the shared
    list and execute them through a store-backed session.

    Every worker walks the same heaviest-first list; the claim race is
    what assigns each next-heaviest artifact to the next free worker
    (greedy LPT scheduling).

    With telemetry enabled (inherited via ``REPRO_TELEMETRY``), the
    worker's lifecycle is phase-tagged: one ``campaign.worker`` span
    per phase (``PREPARING`` — store/session construction, ``RUNNING``
    — the claim/run loop with one nested ``campaign.artifact`` span per
    claimed artifact); the driver emits the ``MERGED`` phase around the
    manifest freeze.  Each worker process writes its own telemetry
    segment — one Chrome-trace lane per worker pid."""
    from repro.session.session import Session

    tracer = get_tracer()
    with tracer.span("campaign.worker", phase="PREPARING"):
        store = ResultStore(task.store_root)
        session = Session(
            task.config,
            store=store,
            executor=task.executor,
            chunksize=task.chunksize,
        )
    claim_dir = Path(task.claim_dir)
    done: list[str] = []
    with tracer.span("campaign.worker", phase="RUNNING") as wsp:
        for name in task.names:
            if not _claim(claim_dir, name):
                continue
            logger.info("worker %d claimed %s", os.getpid(), name)
            if tracer.enabled:
                tracer.metrics.counter("campaign.claimed").inc()
                with tracer.span(
                    "campaign.artifact", artifact=name, phase="RUNNING"
                ):
                    session.run(name)
                tracer.metrics.counter("campaign.completed").inc()
            else:
                session.run(name)
            done.append(name)
        wsp.tag("claimed", len(done))
    tracer.flush()
    return {
        "pid": os.getpid(),
        "done": done,
        "cache": session.stats.snapshot(),
    }


def run_campaign(
    config: Any,
    store: "ResultStore | str | os.PathLike[str]",
    *,
    workers: int = 2,
    include_extensions: bool = True,
    manifest_path: "str | os.PathLike[str] | None" = None,
    executor: str | None = None,
    chunksize: int | None = None,
) -> dict[str, Any]:
    """Execute every registered runner across ``workers`` processes
    sharing one store; freeze the campaign manifest from the merged
    index.  Returns a summary::

        {
          "workers": [{"pid": ..., "done": [...], "cache": {...}}, ...],
          "artifacts": ["fig2", ...],          # everything in the manifest
          "cache": {...},                      # campaign-wide totals
          "manifest_path": ".../manifest.json",
          "manifest": {...},
          "recovered": [...],                  # re-queued from dead workers
        }

    A worker process that dies mid-campaign no longer fails the run:
    its claims are re-queued once every worker has exited (see the
    module docstring) and the re-run artifacts are listed under
    ``"recovered"``.

    ``executor``/``chunksize`` configure each worker's *inner* session
    fan-out (default serial — the campaign's parallelism is the worker
    processes themselves; an inner ``"thread"`` pool can stack on top,
    but a nested process pool usually just oversubscribes the host).
    """
    if workers < 1:
        raise CampaignError("workers must be >= 1")
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    names = tuple(runner_names(artifact_only=not include_extensions))
    ordered = tuple(cost_ordered(names, store))
    claim_dir = store.root / "campaign" / os.urandom(6).hex()
    claim_dir.mkdir(parents=True)
    tasks = [
        _CampaignTask(
            store_root=str(store.root),
            config=config,
            names=ordered,
            claim_dir=str(claim_dir),
            executor=executor,
            chunksize=chunksize,
        )
        for _ in range(workers)
    ]
    if workers == 1:
        worker_reports = [_campaign_worker(tasks[0])]
    else:
        # submit() one future per worker (not map): futures completed
        # before a sibling dies keep their reports, which is what lets
        # the recovery below know exactly which artifacts are missing.
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_campaign_worker, t) for t in tasks]
            worker_reports = []
            for future in futures:
                try:
                    worker_reports.append(future.result())
                except BrokenProcessPool:
                    pass  # a worker died; reconciled against claims below
    claimed = [name for report in worker_reports for name in report["done"]]
    recovered: list[str] = []
    done = set(claimed)
    missing = [n for n in ordered if n not in done]
    if missing:
        # Crashed-worker recovery: every worker has exited by now, so a
        # missing artifact's claim belongs to nobody — unless its owner
        # pid is verifiably alive (an orphaned process still running),
        # in which case stealing it could run the artifact twice
        # concurrently and the campaign must fail instead.
        for name in missing:
            claim_path = claim_dir / f"{_safe_name(name)}.claim"
            if claim_path.exists():
                owner = _claim_owner(claim_path)
                if owner is not None and _pid_alive(owner):
                    raise CampaignError(
                        f"claim for {name!r} is held by live pid {owner}; "
                        f"refusing to re-queue (claims kept in {claim_dir})"
                    )
                claim_path.unlink(missing_ok=True)
        # Re-queue inline in the driver process, heaviest first.  The
        # shared store already holds everything the dead worker
        # persisted before dying, so this is mostly disk hits.
        logger.warning(
            "re-queuing %d artifact(s) from dead worker claim(s): %s",
            len(missing),
            ", ".join(missing),
        )
        report = _campaign_worker(replace(tasks[0], names=tuple(missing)))
        recovered = list(report["done"])
        report["recovered"] = recovered
        worker_reports.append(report)
        claimed = claimed + recovered
    if sorted(claimed) != sorted(names):
        # Exactly-once accounting: every artifact claimed and run by one
        # worker (or recovered by the driver).  A residual mismatch
        # means duplicate claims — a bug, not a crash.
        leftover = sorted(set(names) - set(claimed))
        raise CampaignError(
            f"campaign incomplete: {', '.join(leftover) or 'duplicate claims'} "
            f"(claims kept in {claim_dir} for inspection)"
        )
    from repro.store.manifest import write_manifest_from_store

    with get_tracer().span("campaign.worker", phase="MERGED", workers=workers):
        manifest = write_manifest_from_store(
            store,
            config,
            manifest_path,
            executor_name=f"campaign[{workers}]",
            include_extensions=include_extensions,
        )
    import shutil

    shutil.rmtree(claim_dir, ignore_errors=True)
    resolved_path = (
        Path(manifest_path) if manifest_path is not None else store.root / "manifest.json"
    )
    return {
        "workers": worker_reports,
        "artifacts": sorted(manifest["artifacts"]),
        "cache": dict(manifest["cache"]),
        "manifest_path": str(resolved_path),
        "manifest": manifest,
        #: Artifacts re-queued from dead workers' claims (empty on a
        #: clean run).
        "recovered": recovered,
    }
