"""Experiment: co-running with the mini-benchmarks (Fig 6a / Fig 6b).

Each of the 25 applications runs in the foreground with Bandit or
STREAM looping in the background on the other 4 cores.  Fig 6 plots the
normalized *speedup* (solo time / co-run time, <= 1.0); the paper's
headline numbers: Bandit leaves apps at 0.77-1.0 (Gemini average 0.82,
PowerGraph 0.93) while STREAM drags the overall average to 0.61 and
Gemini+PowerGraph to ~208% runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.workloads.calibration import SUITES
from repro.workloads.registry import suite_of

MINI_BENCH_BACKGROUNDS: tuple[str, ...] = ("Bandit", "Stream")


@dataclass
class MiniBenchResult:
    """Normalized speedups (solo/co-run) per app per mini-benchmark."""

    #: background name -> app -> speedup (<= ~1.0).
    speedups: dict[str, dict[str, float]] = field(default_factory=dict)

    def speedup(self, app: str, background: str) -> float:
        return self.speedups[background][app]

    def suite_mean(self, suite: str, background: str) -> float:
        """Mean normalized speedup of one suite under one background."""
        vals = [
            v for app, v in self.speedups[background].items()
            if suite_of(app) == suite
        ]
        if not vals:
            raise ExperimentError(f"no apps from suite {suite!r}")
        return mean(vals)

    def overall_mean(self, background: str) -> float:
        return mean(self.speedups[background].values())

    def render_fig6(self) -> str:
        apps = list(self.speedups[MINI_BENCH_BACKGROUNDS[0]])
        headers = ["suite", "app"] + [f"vs {b}" for b in MINI_BENCH_BACKGROUNDS]
        rows = []
        for suite, members in SUITES.items():
            for app in members:
                if app in apps:
                    rows.append(
                        [suite, app]
                        + [self.speedups[b][app] for b in MINI_BENCH_BACKGROUNDS]
                    )
        return ascii_table(
            headers, rows,
            title="Fig 6: normalized speedup co-running with mini-benchmarks",
        )


@register_runner("fig6", title="co-run with Bandit / STREAM", order=70)
class MiniBenchRunner(Runner):
    """Fig 6: a consolidation sweep against the two mini-benchmarks.

    Delegates to the Fig 5 runner through the session, so solo
    references are shared and the cells fan out over the executor.
    """

    def execute(self, session) -> MiniBenchResult:
        config = session.config
        matrix = session.run(
            "fig5",
            foregrounds=config.workloads,
            backgrounds=MINI_BENCH_BACKGROUNDS,
        ).result
        result = MiniBenchResult()
        for bg in MINI_BENCH_BACKGROUNDS:
            result.speedups[bg] = {
                fg: 1.0 / matrix.value(fg, bg) for fg in config.workloads
            }
        return result

    def render(self, result: MiniBenchResult, **_) -> str:
        out = [result.render_fig6()]
        for bg in MINI_BENCH_BACKGROUNDS:
            out.append(
                f"mean normalized speedup vs {bg}: {result.overall_mean(bg):.2f} "
                f"(Gemini {result.suite_mean('GeminiGraph', bg):.2f}, "
                f"PowerGraph {result.suite_mean('PowerGraph', bg):.2f})"
            )
        return "\n".join(out)


def run_minibench(config: ExperimentConfig | None = None) -> MiniBenchResult:
    """Run Fig 6 (thin wrapper over ``Session.run("fig6")``)."""
    from repro.session import Session

    return Session(config).run("fig6").result
