"""Experiment: bandwidth of problematic co-running pairs (Table III).

The paper picks five Victim-Offender / Both-Victim pairs and compares
the pair's combined PCM bandwidth with each member's solo bandwidth;
the finding is that every pair consumes *less* than the sum of its
members' solo bandwidths (the bus is the shared bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.engine import CoRunResult
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.session.scenario import Scenario
from repro.tools.pcm import PcmMemoryMonitor
from repro.units import GB

#: Table III's five pairs (A, B); B is the background member.
TABLE3_PAIRS: tuple[tuple[str, str], ...] = (
    ("CIFAR", "fotonik3d"),
    ("IRSmk", "fotonik3d"),
    ("G-CC", "fotonik3d"),
    ("G-CC", "IRSmk"),
    ("G-CC", "CIFAR"),
)


@dataclass(frozen=True)
class PairBandwidthRow:
    """One Table III row (all values GB/s)."""

    app_a: str
    app_b: str
    pair_bandwidth: float
    solo_a: float
    solo_b: float

    @property
    def below_sum(self) -> bool:
        """The paper's invariant: pair < solo_a + solo_b."""
        return self.pair_bandwidth < self.solo_a + self.solo_b


@dataclass
class PairBandwidthResult:
    """Table III."""

    rows: list[PairBandwidthRow] = field(default_factory=list)

    def row(self, app_a: str, app_b: str) -> PairBandwidthRow:
        for r in self.rows:
            if (r.app_a, r.app_b) == (app_a, app_b):
                return r
        raise KeyError((app_a, app_b))

    def render_table3(self) -> str:
        headers = ["pair", "pair GB/s", "A solo GB/s", "B solo GB/s", "< sum"]
        rows = [
            [
                f"{r.app_a}(A) with {r.app_b}(B)",
                r.pair_bandwidth,
                r.solo_a,
                r.solo_b,
                "yes" if r.below_sum else "NO",
            ]
            for r in self.rows
        ]
        return ascii_table(
            headers, rows,
            title="Table III: bandwidth consumption of specific co-running pairs",
        )


def _pair_row(
    co: CoRunResult,
    *,
    app_a: str,
    app_b: str,
    solo_a_bw: float,
    solo_b_bw: float,
    pcm_granularity_s: float,
) -> PairBandwidthRow:
    """Reduce one co-run to a Table III row (identical in worker/parent)."""
    report = PcmMemoryMonitor(granularity_s=pcm_granularity_s).observe(co.timeline)
    pair_bw = report.average_bytes_per_s(None)
    if pair_bw == 0.0:  # run shorter than one PCM window
        pair_bw = co.fg.avg_bandwidth_bytes + co.bg.avg_bandwidth_bytes
    return PairBandwidthRow(
        app_a=app_a,
        app_b=app_b,
        pair_bandwidth=pair_bw / GB,
        solo_a=solo_a_bw / GB,
        solo_b=solo_b_bw / GB,
    )


@register_runner("table3", title="problematic-pair bandwidth", order=60)
class PairBandwidthRunner(Runner):
    """Table III through the session substrate.

    Each pair is a 2-app :class:`~repro.session.scenario.Scenario`:
    the co-runs hit the session's co-run cache when Fig 5 already swept
    them, otherwise the uncached pairs fan out over the executor via
    the generic scenario machinery.
    """

    def execute(
        self,
        session,
        *,
        pairs: tuple[tuple[str, str], ...] = TABLE3_PAIRS,
        pcm_granularity_s: float = 10.0,
    ) -> PairBandwidthResult:
        config = session.config
        threads = config.threads
        result = PairBandwidthResult()
        solos = {
            app: session.solo(app, threads=threads)
            for pair in pairs
            for app in pair
        }
        scenarios = [Scenario.pair(a, b, threads=threads) for a, b in pairs]
        for (a, b), sres in zip(pairs, session.run_scenarios(scenarios)):
            result.rows.append(
                _pair_row(
                    sres.result.to_corun(),
                    app_a=a,
                    app_b=b,
                    solo_a_bw=solos[a].metrics.avg_bandwidth_bytes,
                    solo_b_bw=solos[b].metrics.avg_bandwidth_bytes,
                    pcm_granularity_s=pcm_granularity_s,
                )
            )
        return result

    def render(self, result: PairBandwidthResult, **_) -> str:
        return result.render_table3()


def run_pair_bandwidth(
    config: ExperimentConfig | None = None,
    *,
    pairs: tuple[tuple[str, str], ...] = TABLE3_PAIRS,
    pcm_granularity_s: float = 10.0,
) -> PairBandwidthResult:
    """Run Table III (thin wrapper over ``Session.run("table3")``)."""
    from repro.session import Session

    return Session(config).run(
        "table3", pairs=pairs, pcm_granularity_s=pcm_granularity_s
    ).result
