"""Experiment: bandwidth of problematic co-running pairs (Table III).

The paper picks five Victim-Offender / Both-Victim pairs and compares
the pair's combined PCM bandwidth with each member's solo bandwidth;
the finding is that every pair consumes *less* than the sum of its
members' solo bandwidths (the bus is the shared bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig, SoloCache
from repro.core.report import ascii_table
from repro.tools.pcm import PcmMemoryMonitor
from repro.units import GB
from repro.workloads.registry import get_profile

#: Table III's five pairs (A, B); B is the background member.
TABLE3_PAIRS: tuple[tuple[str, str], ...] = (
    ("CIFAR", "fotonik3d"),
    ("IRSmk", "fotonik3d"),
    ("G-CC", "fotonik3d"),
    ("G-CC", "IRSmk"),
    ("G-CC", "CIFAR"),
)


@dataclass(frozen=True)
class PairBandwidthRow:
    """One Table III row (all values GB/s)."""

    app_a: str
    app_b: str
    pair_bandwidth: float
    solo_a: float
    solo_b: float

    @property
    def below_sum(self) -> bool:
        """The paper's invariant: pair < solo_a + solo_b."""
        return self.pair_bandwidth < self.solo_a + self.solo_b


@dataclass
class PairBandwidthResult:
    """Table III."""

    rows: list[PairBandwidthRow] = field(default_factory=list)

    def row(self, app_a: str, app_b: str) -> PairBandwidthRow:
        for r in self.rows:
            if (r.app_a, r.app_b) == (app_a, app_b):
                return r
        raise KeyError((app_a, app_b))

    def render_table3(self) -> str:
        headers = ["pair", "pair GB/s", "A solo GB/s", "B solo GB/s", "< sum"]
        rows = [
            [
                f"{r.app_a}(A) with {r.app_b}(B)",
                r.pair_bandwidth,
                r.solo_a,
                r.solo_b,
                "yes" if r.below_sum else "NO",
            ]
            for r in self.rows
        ]
        return ascii_table(
            headers, rows,
            title="Table III: bandwidth consumption of specific co-running pairs",
        )


def run_pair_bandwidth(
    config: ExperimentConfig | None = None,
    *,
    pairs: tuple[tuple[str, str], ...] = TABLE3_PAIRS,
    pcm_granularity_s: float = 10.0,
) -> PairBandwidthResult:
    """Run Table III."""
    config = config if config is not None else ExperimentConfig()
    engine = config.make_engine()
    cache = SoloCache(engine)
    monitor = PcmMemoryMonitor(granularity_s=pcm_granularity_s)
    result = PairBandwidthResult()
    for app_a, app_b in pairs:
        solo_a = cache.get(app_a, threads=config.threads)
        solo_b = cache.get(app_b, threads=config.threads)
        co = engine.co_run(
            get_profile(app_a),
            get_profile(app_b),
            threads=config.threads,
            fg_solo_runtime_s=solo_a.runtime_s,
            bg_solo_rate=solo_b.metrics.total.instructions / solo_b.runtime_s,
        )
        report = monitor.observe(co.timeline)
        pair_bw = report.average_bytes_per_s(None)
        if pair_bw == 0.0:  # run shorter than one PCM window
            pair_bw = (
                co.fg.avg_bandwidth_bytes + co.bg.avg_bandwidth_bytes
            )
        result.rows.append(
            PairBandwidthRow(
                app_a=app_a,
                app_b=app_b,
                pair_bandwidth=pair_bw / GB,
                solo_a=solo_a.metrics.avg_bandwidth_bytes / GB,
                solo_b=solo_b.metrics.avg_bandwidth_bytes / GB,
            )
        )
    return result
