"""N-way consolidation studies: the scenarios no pair API can express.

Three runners built on the first-class Scenario API:

* ``scenario`` — execute one declarative scenario (what ``repro
  scenario run bfs:8 dnn:4 amg:4 --llc-policy static`` dispatches to),
  returning a per-app outcome table that round-trips through the
  result store like any other artifact;
* ``consolidate-n`` — the >=3-app degradation table: every size-N
  combination of a workload pool co-runs with each member taking a
  turn as the measured foreground, under an optional LLC policy / SMT
  override.  The paper stops at pairs (Fig 5); this is the ROADMAP's
  ">2-app consolidations" axis made a first-class artifact.
* ``scenario-set`` — a whole :class:`ScenarioSet` sweep persisted as
  **one campaign artifact with per-cell provenance**: every cell
  records the scenario payload, its stable fingerprint, the engine
  fingerprint shard it caches under and which cache tier holds it
  (pair cells bridge to ``corun/``, N-way cells to ``scenario/``).
  The default sweep re-declares the cells Fig 5 and ``consolidate-n``
  already simulate, so inside a campaign it costs only cache hits —
  the sweep's identity lands in ``manifest.json`` for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.classify import VICTIM_THRESHOLD, NWayVerdict, classify_nway
from repro.core.report import ascii_table
from repro.errors import ScenarioError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.session.scenario import (
    AppPlacement,
    Scenario,
    ScenarioResult,
    ScenarioSet,
)


def rotation_verdicts(
    cells: "list[tuple[tuple[Any, ...], tuple[str, ...], str, float]]",
    *,
    threshold: float = VICTIM_THRESHOLD,
) -> list[NWayVerdict]:
    """Aggregate foreground-rotation cells into N-way verdicts.

    ``cells`` rows are ``(group_key, members, fg, fg_slowdown)`` where
    ``group_key`` identifies one consolidation (the sorted member tuple
    plus any policy overrides), ``members`` is its full roster and
    ``fg`` names the cell's measured foreground.  Only *complete*
    rotations — every member measured as foreground once — yield a
    verdict; partial groups are skipped, never guessed.
    """
    groups: dict[tuple[Any, ...], dict[str, float]] = {}
    roster: dict[tuple[Any, ...], tuple[str, ...]] = {}
    order: list[tuple[Any, ...]] = []
    for key, members, fg, slowdown in cells:
        if key not in groups:
            groups[key] = {}
            roster[key] = tuple(sorted(members))
            order.append(key)
        groups[key].setdefault(fg, slowdown)
    out: list[NWayVerdict] = []
    for key in order:
        members = roster[key]
        rotated = groups[key]
        if len(members) < 2 or set(rotated) != set(members):
            continue
        out.append(
            classify_nway(
                members, [rotated[m] for m in members], threshold=threshold
            )
        )
    return out


#: Largest default workload pool for ``consolidate-n`` (C(6,3)*3 = 60
#: cells); explicit ``apps=`` lifts the cap.
MAX_DEFAULT_POOL = 6


def fit_placements(spec, pool_size: int, config_threads: int, n: int | None = None):
    """(n, threads-per-app) fitting ``n`` placements onto a machine:
    at most 3 apps by default, threads split so the scenario fills no
    more than the spec's hardware-thread slots.  The single sizing rule
    shared by :func:`default_scenario` and ``consolidate-n``."""
    n = n if n is not None else max(1, min(3, pool_size, spec.n_slots))
    threads = max(1, min(config_threads, spec.n_slots // n))
    return n, threads


def default_scenario(session, *, llc_policy: str | None = None, smt: bool = False) -> Scenario:
    """A sensible scenario for argument-free runs (``repro scenario``,
    ``run-all`` campaigns): the first few configured workloads, threads
    split so the placements fit the machine's hardware threads."""
    config = session.config
    spec = config.spec.smt_variant() if smt else config.spec
    n, threads = fit_placements(spec, len(config.workloads), config.threads)
    return Scenario(
        tuple(AppPlacement(name, threads) for name in config.workloads[:n]),
        llc_policy=llc_policy,
        smt=smt,
    )


def render_scenario_result(sres: ScenarioResult) -> str:
    """Per-app outcome table for one executed scenario."""
    scenario, result = sres.scenario, sres.result
    headers = ["app", "threads", "role", "slowdown / rel. rate"]
    rows: list[list[Any]] = [
        [
            scenario.placements[0].workload,
            scenario.placements[0].threads,
            "foreground",
            f"{result.normalized_time:.3f}x solo time",
        ]
    ]
    for place, rate in zip(scenario.placements[1:], result.bg_relative_rates):
        rows.append(
            [place.workload, place.threads, "background", f"{rate:.3f}x solo rate"]
        )
    policy = scenario.llc_policy if scenario.llc_policy is not None else "(session default)"
    return ascii_table(
        headers,
        rows,
        title=(
            f"Scenario {scenario.label}: "
            f"llc_policy={policy}, smt={'on' if scenario.smt else 'off'}"
        ),
    )


@register_runner(
    "scenario",
    title="one declarative consolidation scenario (extension)",
    artifact=False,
    order=145,
)
class ScenarioRunner(Runner):
    """Run one :class:`Scenario` through the session (CLI: ``repro
    scenario run <app:threads> ...``); defaults to a small N-way
    consolidation of the configured workloads."""

    def execute(
        self,
        session,
        *,
        scenario: Scenario | None = None,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> ScenarioResult:
        if scenario is None:
            scenario = default_scenario(session, llc_policy=llc_policy, smt=smt)
        if not scenario.cacheable:
            raise ScenarioError(
                "the scenario artifact requires registry-named placements "
                "(in-band profiles cannot round-trip through the store)"
            )
        return session.run_scenario(scenario)

    def render(self, result: ScenarioResult, **_) -> str:
        return render_scenario_result(result)

    def encode(self, result: ScenarioResult) -> dict:
        from repro.store.codec import encode_scenario_result

        return {
            "scenario": result.scenario.payload(),
            "result": encode_scenario_result(result.result),
        }

    def decode(self, payload: dict) -> ScenarioResult:
        from repro.store.codec import decode_scenario_result

        scenario = Scenario.from_payload(payload["scenario"])
        return ScenarioResult(scenario, decode_scenario_result(payload["result"]))


@dataclass(frozen=True)
class SweepCell:
    """One executed sweep cell plus its persistent identity.

    The provenance triple (``engine_fingerprint``, ``fingerprint``,
    ``tier``) names exactly where this cell's result lives in any store
    sharing the campaign's configuration — a manifest row built from
    these cells is re-loadable measurement by measurement.
    """

    scenario: Scenario
    #: Engine-fingerprint shard the cell caches under.
    engine_fingerprint: str
    #: The scenario's stable cache fingerprint.
    fingerprint: str
    #: ``"corun"`` (2-app bridge) or ``"scenario"`` (N-way tier).
    tier: str
    #: Foreground co-run time / foreground solo time.
    fg_slowdown: float
    #: Per-background progress relative to solo.
    bg_relative_rates: tuple[float, ...]


@dataclass
class ScenarioSweep:
    """A whole ScenarioSet sweep as one campaign artifact."""

    pool: tuple[str, ...]
    llc_policy: str | None
    smt: bool
    cells: list[SweepCell] = field(default_factory=list)

    def worst(self) -> SweepCell:
        return max(self.cells, key=lambda c: c.fg_slowdown)

    def by_tier(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for c in self.cells:
            counts[c.tier] = counts.get(c.tier, 0) + 1
        return counts

    def verdicts(self, *, threshold: float = VICTIM_THRESHOLD) -> list[NWayVerdict]:
        """N-way verdicts over every complete rotation group in the
        sweep.  Members are identified by their placement label (so an
        asymmetric ``G-CC:2`` and ``G-CC:4`` never merge), and the
        group key carries the engine overrides — the same placements
        under two LLC policies classify independently."""
        rows = []
        for c in self.cells:
            s = c.scenario
            labels = tuple(p.label for p in s.placements)
            rows.append(
                (
                    (tuple(sorted(labels)), s.llc_policy, s.smt),
                    labels,
                    labels[0],
                    c.fg_slowdown,
                )
            )
        return rotation_verdicts(rows, threshold=threshold)

    def render(self, *, top: int = 10) -> str:
        tiers = ", ".join(f"{n} {t}" for t, n in sorted(self.by_tier().items()))
        policy = self.llc_policy if self.llc_policy is not None else "default"
        ranked = sorted(self.cells, key=lambda c: -c.fg_slowdown)[:top]
        rows = [
            [
                c.scenario.label,
                c.tier,
                f"{c.fg_slowdown:.3f}",
                c.fingerprint,
            ]
            for c in ranked
        ]
        table = ascii_table(
            ["scenario", "tier", "fg slowdown", "cell fingerprint"],
            rows,
            title=(
                f"ScenarioSet sweep: {len(self.cells)} cells ({tiers}), "
                f"llc={policy}, smt={'on' if self.smt else 'off'} — "
                f"{min(top, len(self.cells))} most degraded"
            ),
        )
        verdicts = self.verdicts()
        if verdicts:
            counts: dict[str, int] = {}
            for v in verdicts:
                counts[v.relationship.value] = counts.get(v.relationship.value, 0) + 1
            table += (
                f"verdicts over {len(verdicts)} complete rotation group(s): "
                + ", ".join(f"{n} {rel}" for rel, n in sorted(counts.items()))
                + "\n"
            )
        return table


def default_sweep(session, *, llc_policy: str | None = None, smt: bool = False) -> ScenarioSet:
    """The argument-free ``scenario-set`` sweep: the Fig 5 pairwise
    product plus the ``consolidate-n`` rotation set (same pools, same
    thread fits), declared as one ScenarioSet.  Inside a ``run-all`` /
    ``repro campaign`` pass those cells are already persisted, so the
    sweep artifact materializes their provenance from cache hits alone.
    """
    config = session.config
    spec = config.spec.smt_variant() if smt else config.spec
    sweep = ScenarioSet.pairwise(
        config.workloads, threads=config.threads, llc_policy=llc_policy, smt=smt
    )
    pool = config.workloads[:MAX_DEFAULT_POOL]
    n, threads = fit_placements(spec, len(pool), config.threads)
    if n >= 3:
        sweep = sweep + ScenarioSet.consolidations(
            pool, n=n, threads=threads, llc_policy=llc_policy, smt=smt
        )
    return sweep


@register_runner(
    "scenario-set",
    title="persisted ScenarioSet sweep with per-cell provenance (extension)",
    artifact=False,
    order=147,
)
class ScenarioSetRunner(Runner):
    """Persist a whole :class:`ScenarioSet` sweep as one artifact.

    Cells fan out over the session executor through the shared caches;
    every cell is recorded with the (engine fingerprint, scenario
    fingerprint, cache tier) triple that locates its persisted result —
    the PR 3 follow-on: a sweep is now a first-class campaign artifact,
    not just a loop that warms caches.

    ``shard="I/N"`` executes only the round-robin cell slice
    (:meth:`ScenarioSet.shard`), which is how ``run-all --shard I/N``
    splits the sweep at *cell* granularity: every shard warms its
    disjoint slice of the shared store, then whichever shard owns the
    ``scenario-set`` artifact name materializes the canonical full
    record from cache hits.
    """

    def execute(
        self,
        session,
        *,
        scenarios: "ScenarioSet | tuple[Scenario, ...] | None" = None,
        llc_policy: str | None = None,
        smt: bool = False,
        shard: str | None = None,
    ) -> ScenarioSweep:
        sweep = (
            default_sweep(session, llc_policy=llc_policy, smt=smt)
            if scenarios is None
            else ScenarioSet(tuple(scenarios))
        )
        if not len(sweep):
            raise ScenarioError("scenario-set needs at least one scenario")
        if shard is not None:
            from repro.store.campaign import parse_shard

            index, count = parse_shard(shard)
            sweep = sweep.shard(index, count)
            if not len(sweep):
                raise ScenarioError(
                    f"shard {shard} selects no cells "
                    f"(the sweep has fewer scenarios than shards)"
                )
        for s in sweep:
            if not s.cacheable:
                raise ScenarioError(
                    "scenario-set requires registry-named placements "
                    "(in-band profiles have no stable cell identity)"
                )
        result = ScenarioSweep(
            pool=session.config.workloads, llc_policy=llc_policy, smt=smt
        )
        for sres in session.run_scenarios(sweep):
            engine_fp, cell_fp, tier = session.scenario_identity(sres.scenario)
            result.cells.append(
                SweepCell(
                    scenario=sres.scenario,
                    engine_fingerprint=engine_fp,
                    fingerprint=cell_fp,
                    tier=tier,
                    fg_slowdown=sres.normalized_time,
                    bg_relative_rates=tuple(sres.bg_relative_rates),
                )
            )
        return result

    def render(self, result: ScenarioSweep, **_) -> str:
        worst = result.worst()
        return (
            result.render()
            + f"worst hit: {worst.scenario.label} at {worst.fg_slowdown:.3f}x"
        )

    def encode(self, result: ScenarioSweep) -> dict:
        return {
            "pool": list(result.pool),
            "llc_policy": result.llc_policy,
            "smt": result.smt,
            "verdicts": [
                [list(v.apps), list(v.slowdowns), v.relationship.value]
                for v in result.verdicts()
            ],
            "cells": [
                [
                    c.scenario.payload(),
                    c.engine_fingerprint,
                    c.fingerprint,
                    c.tier,
                    c.fg_slowdown,
                    list(c.bg_relative_rates),
                ]
                for c in result.cells
            ],
        }

    def decode(self, payload: dict) -> ScenarioSweep:
        return ScenarioSweep(
            pool=tuple(payload["pool"]),
            llc_policy=payload["llc_policy"],
            smt=payload["smt"],
            cells=[
                SweepCell(
                    scenario=Scenario.from_payload(spec),
                    engine_fingerprint=engine_fp,
                    fingerprint=cell_fp,
                    tier=tier,
                    fg_slowdown=slowdown,
                    bg_relative_rates=tuple(rates),
                )
                for spec, engine_fp, cell_fp, tier, slowdown, rates in payload["cells"]
            ],
        )


@dataclass(frozen=True)
class NWayCell:
    """One N-way consolidation outcome: a foreground measured against
    N-1 looping backgrounds."""

    fg: str
    backgrounds: tuple[str, ...]
    threads: int
    #: Foreground co-run time / foreground solo time.
    fg_slowdown: float
    #: Per-background progress relative to solo, ordered like
    #: ``backgrounds``.
    bg_relative_rates: tuple[float, ...]


@dataclass
class NWayDegradationTable:
    """The >=3-app degradation table (``consolidate-n``)."""

    n: int
    threads: int
    llc_policy: str | None
    smt: bool
    cells: list[NWayCell] = field(default_factory=list)
    #: The workload pool the combinations were drawn from.
    pool: tuple[str, ...] = ()
    #: Original pool size when the default cap truncated it (no silent
    #: caps: the render reports the truncation), else ``None``.
    pool_truncated_from: int | None = None

    def cell(self, fg: str, backgrounds: tuple[str, ...]) -> NWayCell:
        for c in self.cells:
            if c.fg == fg and c.backgrounds == tuple(backgrounds):
                return c
        raise KeyError((fg, tuple(backgrounds)))

    def worst(self) -> NWayCell:
        """The most-degraded foreground across all consolidations."""
        return max(self.cells, key=lambda c: c.fg_slowdown)

    def verdicts(self, *, threshold: float = VICTIM_THRESHOLD) -> list[NWayVerdict]:
        """One :class:`NWayVerdict` per complete rotation group: the
        pair taxonomy generalized over each consolidation's foreground
        rotations (derived from the cells, so stored tables re-classify
        identically)."""
        return rotation_verdicts(
            [
                (
                    tuple(sorted((c.fg,) + c.backgrounds)),
                    (c.fg,) + c.backgrounds,
                    c.fg,
                    c.fg_slowdown,
                )
                for c in self.cells
            ],
            threshold=threshold,
        )

    def render(self) -> str:
        headers = ["foreground", "backgrounds", "fg slowdown", "bg rel. rates"]
        rows = [
            [
                c.fg,
                " + ".join(c.backgrounds),
                f"{c.fg_slowdown:.3f}",
                ", ".join(f"{r:.3f}" for r in c.bg_relative_rates),
            ]
            for c in self.cells
        ]
        policy = self.llc_policy if self.llc_policy is not None else "default"
        table = ascii_table(
            headers,
            rows,
            title=(
                f"{self.n}-way consolidation ({self.threads} threads/app, "
                f"llc={policy}, smt={'on' if self.smt else 'off'})"
            ),
        )
        if self.pool_truncated_from is not None:
            table += (
                f"note: default pool capped to the first {len(self.pool)} of "
                f"{self.pool_truncated_from} workloads; pass apps= "
                "(or a smaller --workloads) for the full sweep\n"
            )
        verdicts = self.verdicts()
        if verdicts:
            table += ascii_table(
                ["consolidation", "verdict", "roles"],
                [
                    [
                        " + ".join(v.apps),
                        v.relationship.value,
                        ", ".join(f"{a}={v.role(a)}" for a in v.apps),
                    ]
                    for v in verdicts
                ],
                title=(
                    f"N-way verdicts ({VICTIM_THRESHOLD}x threshold, "
                    "aggregated across fg rotations)"
                ),
            )
        return table


@register_runner(
    "consolidate-n",
    title="N-way consolidation degradation table (extension)",
    artifact=False,
    order=146,
)
class NWayConsolidationRunner(Runner):
    """Every size-N combination of the workload pool, each member taking
    a turn as the measured foreground — the degradation surface the
    pair-only API could not express.  Scenarios fan out over the
    session executor and land in the scenario cache tier."""

    def execute(
        self,
        session,
        *,
        apps: tuple[str, ...] | None = None,
        n: int | None = None,
        threads: int | None = None,
        llc_policy: str | None = None,
        smt: bool = False,
    ) -> NWayDegradationTable:
        config = session.config
        spec = config.spec.smt_variant() if smt else config.spec
        pool = tuple(apps) if apps is not None else config.workloads
        truncated_from = None
        if apps is None and len(pool) > MAX_DEFAULT_POOL:
            # The full roster would be C(25, 3) * 3 ~ 7k simulations;
            # cap the *default* pool and say so in the render (explicit
            # apps= sweeps whatever it is given).
            truncated_from = len(pool)
            pool = pool[:MAX_DEFAULT_POOL]
        fit_n, fit_threads = fit_placements(spec, len(pool), config.threads, n)
        n = fit_n
        threads = threads if threads is not None else fit_threads
        sweep = ScenarioSet.consolidations(
            pool, n=n, threads=threads, llc_policy=llc_policy, smt=smt
        )
        table = NWayDegradationTable(
            n=n, threads=threads, llc_policy=llc_policy, smt=smt,
            pool=pool, pool_truncated_from=truncated_from,
        )
        for sres in session.run_scenarios(sweep):
            table.cells.append(
                NWayCell(
                    fg=sres.fg,
                    backgrounds=sres.backgrounds,
                    threads=threads,
                    fg_slowdown=sres.normalized_time,
                    bg_relative_rates=tuple(sres.bg_relative_rates),
                )
            )
        return table

    def render(self, result: NWayDegradationTable, **_) -> str:
        worst = result.worst()
        return (
            result.render()
            + f"worst hit: {worst.fg} at {worst.fg_slowdown:.3f}x "
            f"behind {' + '.join(worst.backgrounds)}"
        )

    def encode(self, result: NWayDegradationTable) -> dict:
        return {
            "n": result.n,
            "threads": result.threads,
            "llc_policy": result.llc_policy,
            "smt": result.smt,
            "pool": list(result.pool),
            "pool_truncated_from": result.pool_truncated_from,
            "cells": [
                [c.fg, list(c.backgrounds), c.threads, c.fg_slowdown,
                 list(c.bg_relative_rates)]
                for c in result.cells
            ],
            # Derived, re-derivable from the cells; persisted so stored
            # records carry the classification without a decode pass.
            "verdicts": [
                [list(v.apps), list(v.slowdowns), v.relationship.value]
                for v in result.verdicts()
            ],
        }

    def decode(self, payload: dict) -> NWayDegradationTable:
        table = NWayDegradationTable(
            n=payload["n"],
            threads=payload["threads"],
            llc_policy=payload["llc_policy"],
            smt=payload["smt"],
            pool=tuple(payload.get("pool", ())),
            pool_truncated_from=payload.get("pool_truncated_from"),
        )
        table.cells = [
            NWayCell(
                fg=fg,
                backgrounds=tuple(bgs),
                threads=threads,
                fg_slowdown=slow,
                bg_relative_rates=tuple(rates),
            )
            for fg, bgs, threads, slow, rates in payload["cells"]
        ]
        return table


def run_nway_consolidation(
    apps: tuple[str, ...],
    *,
    n: int = 3,
    threads: int | None = None,
    llc_policy: str | None = None,
    smt: bool = False,
    config=None,
) -> NWayDegradationTable:
    """Run the N-way degradation table (thin wrapper over
    ``Session.run("consolidate-n")``)."""
    from repro.session import Session

    return Session(config).run(
        "consolidate-n", apps=apps, n=n, threads=threads,
        llc_policy=llc_policy, smt=smt,
    ).result
