"""Experiment: thread scalability (Fig 2 and Table II).

Runs every application solo at 1..8 threads and reports the speedup
curve (execution-phase time only — the paper excludes the one-time
preprocessing, which the calibrated profiles likewise exclude) and the
Low/Medium/High classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.workloads.calibration import SUITES
from repro.workloads.registry import suite_of

#: Table II thresholds on the 8-thread speedup.
LOW_THRESHOLD = 2.5
HIGH_THRESHOLD = 5.5


class ScalabilityClass(Enum):
    """Table II's three categories."""

    LOW = "Low"
    MEDIUM = "Medium"
    HIGH = "High"


def classify_speedup(speedup_at_max: float) -> ScalabilityClass:
    """Classify an 8-thread speedup into Table II's bands."""
    if speedup_at_max < 0:
        raise ExperimentError("speedup cannot be negative")
    if speedup_at_max < LOW_THRESHOLD:
        return ScalabilityClass.LOW
    if speedup_at_max < HIGH_THRESHOLD:
        return ScalabilityClass.MEDIUM
    return ScalabilityClass.HIGH


@dataclass
class ScalabilityResult:
    """Speedup curves plus classification for all apps."""

    max_threads: int
    curves: dict[str, dict[int, float]] = field(default_factory=dict)

    def speedup(self, app: str, threads: int) -> float:
        return self.curves[app][threads]

    def classification(self, app: str) -> ScalabilityClass:
        return classify_speedup(self.curves[app][self.max_threads])

    def table2(self) -> dict[str, dict[ScalabilityClass, list[str]]]:
        """Table II: suite -> class -> applications."""
        out: dict[str, dict[ScalabilityClass, list[str]]] = {}
        for app in self.curves:
            suite = suite_of(app)
            out.setdefault(suite, {c: [] for c in ScalabilityClass})
            out[suite][self.classification(app)].append(app)
        return out

    def render_fig2(self) -> str:
        """Fig 2 as one table: speedup per thread count per app."""
        threads = list(range(1, self.max_threads + 1))
        headers = ["suite", "app"] + [f"{t}T" for t in threads]
        rows = []
        for suite, members in SUITES.items():
            for app in members:
                if app in self.curves:
                    rows.append(
                        [suite, app] + [self.curves[app][t] for t in threads]
                    )
        return ascii_table(headers, rows, title="Fig 2: speedup vs thread count")

    def render_table2(self) -> str:
        """Table II rendering."""
        rows = []
        for suite, classes in self.table2().items():
            rows.append(
                [
                    suite,
                    ", ".join(sorted(classes[ScalabilityClass.LOW])) or "-",
                    ", ".join(sorted(classes[ScalabilityClass.MEDIUM])) or "-",
                    ", ".join(sorted(classes[ScalabilityClass.HIGH])) or "-",
                ]
            )
        return ascii_table(
            ["suite", "Low", "Medium", "High"],
            rows,
            title="Table II: thread scalability characterization",
        )


@register_runner("fig2", title="thread scalability curves", order=20)
class ScalabilityRunner(Runner):
    """Fig 2 through the session substrate (solo runs shared)."""

    def execute(self, session, *, max_threads: int = 8) -> ScalabilityResult:
        result = ScalabilityResult(max_threads=max_threads)
        for app in session.config.workloads:
            t1 = session.jitter("fig2", app, 1).measure(
                session.solo_runtime(app, threads=1)
            )
            curve: dict[int, float] = {}
            for t in range(1, max_threads + 1):
                rt = (
                    session.jitter("fig2", app, t).measure(
                        session.solo_runtime(app, threads=t)
                    )
                    if t > 1
                    else t1
                )
                curve[t] = t1 / rt
            result.curves[app] = curve
        return result

    def render(self, result: ScalabilityResult, **_) -> str:
        return result.render_fig2()


@register_runner("table2", title="Low/Medium/High scalability classes", order=21)
class ScalabilityClassRunner(Runner):
    """Table II: same measurement as Fig 2, rendered as classes."""

    def execute(self, session, *, max_threads: int = 8) -> ScalabilityResult:
        return session.run("fig2", max_threads=max_threads).result

    def render(self, result: ScalabilityResult, **_) -> str:
        return result.render_table2()


def run_scalability(config: ExperimentConfig | None = None, *, max_threads: int = 8) -> ScalabilityResult:
    """Run Fig 2 / Table II (thin wrapper over ``Session.run("fig2")``)."""
    from repro.session import Session

    return Session(config).run("fig2", max_threads=max_threads).result
