"""CAT way-mask allocation sweep: the ``cat-sweep`` artifact.

Intel's Cache Allocation Technology partitions the shared LLC with
per-CLOS way bitmaps; the interesting question for a consolidation
scheduler is *where to draw the line*: every way handed to the
foreground protects its working set, every way handed back to the
background buys aggregate throughput.  This runner sweeps contiguous
two-way partitions of the machine's LLC (foreground takes the top
``k`` ways, background the remaining ``W - k``) alongside the three
global sharing policies as reference points, then reports the **Pareto
frontier** of foreground slowdown (lower is better) vs. background
throughput (higher is better).

Every point is an ordinary cacheable :class:`Scenario`, so the sweep
fans out over the session executor, lands in the store's scenario
tier under the session's *base* engine fingerprint (way masks live in
the scenario payload, not the engine config — ``store gc`` can never
orphan them), and re-renders from a warm store with zero simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import ascii_table
from repro.errors import ScenarioError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.session.scenario import Scenario


def contiguous_split(n_ways: int, fg_ways: int) -> tuple[int, int]:
    """The (fg, bg) bitmaps of a contiguous two-way partition: the
    foreground owns the top ``fg_ways`` ways, the background the rest
    (``contiguous_split(8, 4) == (0xF0, 0x0F)``)."""
    if not 1 <= fg_ways < n_ways:
        raise ScenarioError(
            f"fg_ways must lie in [1, {n_ways - 1}], got {fg_ways}"
        )
    bg_ways = n_ways - fg_ways
    return ((1 << fg_ways) - 1) << bg_ways, (1 << bg_ways) - 1


@dataclass(frozen=True)
class CatSweepPoint:
    """One swept allocation: a mask pair or a global-policy reference."""

    label: str
    #: Foreground / background way bitmaps (``None`` for policy points).
    fg_mask: int | None
    bg_mask: int | None
    #: Global LLC policy of a reference point (``None`` for mask points).
    llc_policy: str | None
    #: Foreground co-run time / foreground solo time.
    fg_slowdown: float
    #: Background progress relative to its solo rate.
    bg_throughput: float

    @property
    def masked(self) -> bool:
        return self.fg_mask is not None


@dataclass
class CatSweepResult:
    """The full sweep plus its Pareto frontier."""

    fg: str
    bg: str
    threads: int
    #: Total LLC ways of the machine the sweep partitioned.
    n_ways: int
    points: list[CatSweepPoint] = field(default_factory=list)

    def point(self, label: str) -> CatSweepPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    def pareto(self) -> list[CatSweepPoint]:
        """Non-dominated points: no other point is at least as good on
        both axes and strictly better on one."""
        out = []
        for p in self.points:
            dominated = any(
                q.fg_slowdown <= p.fg_slowdown
                and q.bg_throughput >= p.bg_throughput
                and (
                    q.fg_slowdown < p.fg_slowdown
                    or q.bg_throughput > p.bg_throughput
                )
                for q in self.points
            )
            if not dominated:
                out.append(p)
        return out

    def best_masked_vs_policy(self, policy: str = "pressure") -> float:
        """Foreground-slowdown headroom of the best mask split over a
        global policy (positive = partitioning protects the fg)."""
        ref = self.point(policy)
        best = min(
            (p for p in self.points if p.masked),
            key=lambda p: p.fg_slowdown,
        )
        return ref.fg_slowdown - best.fg_slowdown

    def render(self) -> str:
        frontier = {id(p) for p in self.pareto()}
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.label,
                    f"{p.fg_mask:#x}" if p.fg_mask is not None else "-",
                    f"{p.bg_mask:#x}" if p.bg_mask is not None else "-",
                    f"{p.fg_slowdown:.3f}",
                    f"{p.bg_throughput:.3f}",
                    "*" if id(p) in frontier else "",
                ]
            )
        table = ascii_table(
            ["allocation", "fg mask", "bg mask", "fg slowdown", "bg rate", "pareto"],
            rows,
            title=(
                f"CAT way-mask sweep: {self.fg}:{self.threads} vs "
                f"{self.bg}:{self.threads} over {self.n_ways} LLC ways"
            ),
        )
        headroom = self.best_masked_vs_policy("pressure")
        table += (
            f"best mask split beats 'pressure' by {headroom:+.3f}x fg slowdown; "
            f"{len(frontier)} Pareto point(s)\n"
        )
        return table


@register_runner(
    "cat-sweep",
    title="CAT way-mask allocation sweep with Pareto frontier (extension)",
    artifact=False,
    order=149,
)
class CatSweepRunner(Runner):
    """Sweep contiguous CAT partitions of the LLC for one fg/bg pair
    (plus the three global policies as reference points) and report the
    Pareto of fg slowdown vs. bg throughput."""

    def execute(
        self,
        session,
        *,
        fg: str | None = None,
        bg: str | None = None,
        threads: int | None = None,
    ) -> CatSweepResult:
        config = session.config
        fg = fg if fg is not None else config.workloads[0]
        bg = bg if bg is not None else "Stream"
        if threads is None:
            threads = max(1, min(config.threads, config.spec.n_slots // 2))
        if 2 * threads > config.spec.n_slots:
            raise ScenarioError(
                f"{threads}+{threads} threads exceed {config.spec.n_slots} slots"
            )
        n_ways = config.spec.llc_ways
        base = Scenario.pair(fg, bg, threads=threads)
        scenarios = [base.with_policy(p) for p in ("pressure", "even", "static")]
        labels = ["pressure", "even", "static"]
        for k in range(1, n_ways):
            fg_mask, bg_mask = contiguous_split(n_ways, k)
            scenarios.append(base.with_ways([fg_mask, bg_mask]))
            labels.append(f"{k}/{n_ways - k}")
        result = CatSweepResult(fg=fg, bg=bg, threads=threads, n_ways=n_ways)
        for label, s, sres in zip(
            labels, scenarios, session.run_scenarios(scenarios)
        ):
            fg_place, bg_place = s.placements
            result.points.append(
                CatSweepPoint(
                    label=label,
                    fg_mask=fg_place.llc_ways,
                    bg_mask=bg_place.llc_ways,
                    llc_policy=s.llc_policy,
                    fg_slowdown=sres.normalized_time,
                    bg_throughput=sres.bg_relative_rates[0],
                )
            )
        return result

    def render(self, result: CatSweepResult, **_) -> str:
        return result.render()

    def encode(self, result: CatSweepResult) -> dict:
        return {
            "fg": result.fg,
            "bg": result.bg,
            "threads": result.threads,
            "n_ways": result.n_ways,
            "points": [
                [p.label, p.fg_mask, p.bg_mask, p.llc_policy,
                 p.fg_slowdown, p.bg_throughput]
                for p in result.points
            ],
        }

    def decode(self, payload: dict) -> CatSweepResult:
        return CatSweepResult(
            fg=payload["fg"],
            bg=payload["bg"],
            threads=payload["threads"],
            n_ways=payload["n_ways"],
            points=[
                CatSweepPoint(
                    label=label,
                    fg_mask=fg_mask,
                    bg_mask=bg_mask,
                    llc_policy=policy,
                    fg_slowdown=slowdown,
                    bg_throughput=throughput,
                )
                for label, fg_mask, bg_mask, policy, slowdown, throughput
                in payload["points"]
            ],
        )


def run_cat_sweep(
    fg: str,
    bg: str = "Stream",
    *,
    threads: int | None = None,
    config=None,
) -> CatSweepResult:
    """Run the CAT sweep (thin wrapper over ``Session.run("cat-sweep")``)."""
    from repro.session import Session

    return Session(config).run("cat-sweep", fg=fg, bg=bg, threads=threads).result
