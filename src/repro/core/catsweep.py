"""CAT way-mask allocation sweep: the ``cat-sweep`` artifact.

Intel's Cache Allocation Technology partitions the shared LLC with
per-CLOS way bitmaps; the interesting question for a consolidation
scheduler is *where to draw the line*: every way handed to the
foreground protects its working set, every way handed back to the
background buys aggregate throughput.  This runner sweeps contiguous
two-way partitions of the machine's LLC (foreground takes the top
``k`` ways, background the remaining ``W - k``) alongside the three
global sharing policies as reference points, then reports the **Pareto
frontier** of foreground slowdown (lower is better) vs. background
throughput (higher is better).

Every point is an ordinary cacheable :class:`Scenario`, so the sweep
fans out over the session executor, lands in the store's scenario
tier under the session's *base* engine fingerprint (way masks live in
the scenario payload, not the engine config — ``store gc`` can never
orphan them), and re-renders from a warm store with zero simulations.

Beyond the classic contiguous pair sweep, the runner supports
**interleaved** (non-contiguous, way-striped) splits and **N >= 3**
layouts (one foreground vs several backgrounds sharing the remaining
ways) — the same :func:`way_partition` / :func:`equal_way_shares`
helpers the scheduler's departure re-planner uses to re-fence the
residents of a vacated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import ascii_table
from repro.errors import ScenarioError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.session.scenario import AppPlacement, Scenario


def contiguous_split(n_ways: int, fg_ways: int) -> tuple[int, int]:
    """The (fg, bg) bitmaps of a contiguous two-way partition: the
    foreground owns the top ``fg_ways`` ways, the background the rest
    (``contiguous_split(8, 4) == (0xF0, 0x0F)``)."""
    if not 1 <= fg_ways < n_ways:
        raise ScenarioError(
            f"fg_ways must lie in [1, {n_ways - 1}], got {fg_ways}"
        )
    bg_ways = n_ways - fg_ways
    return ((1 << fg_ways) - 1) << bg_ways, (1 << bg_ways) - 1


def interleaved_split(n_ways: int, fg_ways: int) -> tuple[int, int]:
    """The (fg, bg) bitmaps of a *non-contiguous* two-way partition:
    the foreground's ways are striped evenly across the cache index
    range (``interleaved_split(8, 4) == (0x55, 0xAA)``), which spreads
    both partitions over all set-index regions instead of fencing each
    into one contiguous block."""
    if not 1 <= fg_ways < n_ways:
        raise ScenarioError(
            f"fg_ways must lie in [1, {n_ways - 1}], got {fg_ways}"
        )
    fg_mask = 0
    for i in range(fg_ways):
        fg_mask |= 1 << (i * n_ways) // fg_ways
    return fg_mask, ((1 << n_ways) - 1) ^ fg_mask


def equal_way_shares(n_ways: int, parts: int) -> tuple[int, ...]:
    """``parts`` way counts as equal as integers allow (larger shares
    first), summing to ``n_ways`` — the share vector an N-way equal
    re-partition hands to :func:`way_partition`."""
    if parts < 1:
        raise ScenarioError(f"parts must be >= 1, got {parts}")
    if parts > n_ways:
        raise ScenarioError(
            f"cannot split {n_ways} way(s) into {parts} non-empty share(s)"
        )
    base, extra = divmod(n_ways, parts)
    return tuple(base + (1 if i < extra else 0) for i in range(parts))


def way_partition(n_ways: int, shares: "tuple[int, ...] | list[int]") -> tuple[int, ...]:
    """Disjoint contiguous way bitmaps covering the whole LLC, one per
    share, first share on top (``way_partition(8, (4, 4)) ==
    contiguous_split(8, 4)``).  Generalizes the two-way split to the
    N-way layouts a multi-tenant re-partition needs."""
    shares = tuple(shares)
    if not shares or any(s < 1 for s in shares):
        raise ScenarioError(f"every share needs >= 1 way, got {shares}")
    if sum(shares) != n_ways:
        raise ScenarioError(
            f"shares {shares} must sum to the {n_ways} LLC ways"
        )
    masks: list[int] = []
    top = n_ways
    for s in shares:
        masks.append(((1 << s) - 1) << (top - s))
        top -= s
    return tuple(masks)


def _chunk_positions(mask: int, parts: int) -> tuple[int, ...]:
    """Split one bitmap's set positions into ``parts`` disjoint masks of
    near-equal population, highest ways first — how a (possibly
    non-contiguous) background region is shared among N backgrounds."""
    positions = [i for i in range(mask.bit_length()) if mask >> i & 1]
    positions.reverse()
    shares = equal_way_shares(len(positions), parts)
    masks: list[int] = []
    taken = 0
    for s in shares:
        masks.append(sum(1 << p for p in positions[taken:taken + s]))
        taken += s
    return tuple(masks)


@dataclass(frozen=True)
class CatSweepPoint:
    """One swept allocation: a mask pair or a global-policy reference."""

    label: str
    #: Foreground / background way bitmaps (``None`` for policy points).
    #: With several backgrounds ``bg_mask`` is their union.
    fg_mask: int | None
    bg_mask: int | None
    #: Global LLC policy of a reference point (``None`` for mask points).
    llc_policy: str | None
    #: Foreground co-run time / foreground solo time.
    fg_slowdown: float
    #: Background progress relative to its solo rate (mean over
    #: backgrounds when there are several).
    bg_throughput: float
    #: Full per-app mask tuple (fg first) for N-way / non-contiguous
    #: layouts; ``None`` for classic pair points and policy references.
    masks: tuple[int, ...] | None = None

    @property
    def masked(self) -> bool:
        return self.fg_mask is not None


@dataclass
class CatSweepResult:
    """The full sweep plus its Pareto frontier."""

    fg: str
    bg: str
    threads: int
    #: Total LLC ways of the machine the sweep partitioned.
    n_ways: int
    points: list[CatSweepPoint] = field(default_factory=list)
    #: All backgrounds of an N-way sweep (``(bg,)`` for the classic pair).
    bgs: tuple[str, ...] = ()
    #: Mask layout swept: ``"contiguous"`` or ``"interleaved"``.
    layout: str = "contiguous"

    def point(self, label: str) -> CatSweepPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    def pareto(self) -> list[CatSweepPoint]:
        """Non-dominated points: no other point is at least as good on
        both axes and strictly better on one."""
        out = []
        for p in self.points:
            dominated = any(
                q.fg_slowdown <= p.fg_slowdown
                and q.bg_throughput >= p.bg_throughput
                and (
                    q.fg_slowdown < p.fg_slowdown
                    or q.bg_throughput > p.bg_throughput
                )
                for q in self.points
            )
            if not dominated:
                out.append(p)
        return out

    def best_masked_vs_policy(self, policy: str = "pressure") -> float:
        """Foreground-slowdown headroom of the best mask split over a
        global policy (positive = partitioning protects the fg)."""
        ref = self.point(policy)
        best = min(
            (p for p in self.points if p.masked),
            key=lambda p: p.fg_slowdown,
        )
        return ref.fg_slowdown - best.fg_slowdown

    def render(self) -> str:
        frontier = {id(p) for p in self.pareto()}
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.label,
                    f"{p.fg_mask:#x}" if p.fg_mask is not None else "-",
                    f"{p.bg_mask:#x}" if p.bg_mask is not None else "-",
                    f"{p.fg_slowdown:.3f}",
                    f"{p.bg_throughput:.3f}",
                    "*" if id(p) in frontier else "",
                ]
            )
        table = ascii_table(
            ["allocation", "fg mask", "bg mask", "fg slowdown", "bg rate", "pareto"],
            rows,
            title=(
                f"CAT way-mask sweep: {self.fg}:{self.threads} vs "
                f"{self.bg}:{self.threads} over {self.n_ways} LLC ways"
            ),
        )
        headroom = self.best_masked_vs_policy("pressure")
        table += (
            f"best mask split beats 'pressure' by {headroom:+.3f}x fg slowdown; "
            f"{len(frontier)} Pareto point(s)\n"
        )
        return table


@register_runner(
    "cat-sweep",
    title="CAT way-mask allocation sweep with Pareto frontier (extension)",
    artifact=False,
    order=149,
)
class CatSweepRunner(Runner):
    """Sweep contiguous CAT partitions of the LLC for one fg/bg pair
    (plus the three global policies as reference points) and report the
    Pareto of fg slowdown vs. bg throughput."""

    def execute(
        self,
        session,
        *,
        fg: str | None = None,
        bg: str | None = None,
        threads: int | None = None,
        bgs: "tuple[str, ...] | list[str] | None" = None,
        layout: str = "contiguous",
    ) -> CatSweepResult:
        config = session.config
        fg = fg if fg is not None else config.workloads[0]
        if layout not in ("contiguous", "interleaved"):
            raise ScenarioError(
                f"unknown layout {layout!r}; use 'contiguous' or 'interleaved'"
            )
        bg_list = tuple(bgs) if bgs else (bg if bg is not None else "Stream",)
        bg = bg_list[0] if len(bg_list) == 1 else "+".join(bg_list)
        if threads is None:
            threads = max(
                1, min(config.threads, config.spec.n_slots // (1 + len(bg_list)))
            )
        if (1 + len(bg_list)) * threads > config.spec.n_slots:
            raise ScenarioError(
                f"{1 + len(bg_list)} apps x {threads} threads exceed "
                f"{config.spec.n_slots} slots"
            )
        n_ways = config.spec.llc_ways
        if n_ways < 1 + len(bg_list):
            raise ScenarioError(
                f"{1 + len(bg_list)} apps need at least that many of the "
                f"{n_ways} LLC ways"
            )
        split = contiguous_split if layout == "contiguous" else interleaved_split
        base = Scenario(
            (AppPlacement(fg, threads),)
            + tuple(AppPlacement(b, threads) for b in bg_list)
        )
        scenarios = [base.with_policy(p) for p in ("pressure", "even", "static")]
        labels = ["pressure", "even", "static"]
        mask_sets: list[tuple[int, ...] | None] = [None, None, None]
        prefix = "" if layout == "contiguous" else "i:"
        for k in range(1, n_ways - len(bg_list) + 1):
            fg_mask, bg_region = split(n_ways, k)
            masks = (fg_mask,) + _chunk_positions(bg_region, len(bg_list))
            scenarios.append(base.with_ways(list(masks)))
            labels.append(f"{prefix}{k}/{n_ways - k}")
            mask_sets.append(masks)
        result = CatSweepResult(
            fg=fg, bg=bg, threads=threads, n_ways=n_ways,
            bgs=bg_list, layout=layout,
        )
        plain_pair = len(bg_list) == 1 and layout == "contiguous"
        for label, s, masks, sres in zip(
            labels, scenarios, mask_sets, session.run_scenarios(scenarios)
        ):
            fg_place = s.placements[0]
            bg_places = s.placements[1:]
            bg_masks = [p.llc_ways for p in bg_places]
            bg_union = (
                None
                if bg_masks[0] is None
                else sum(m for m in bg_masks if m is not None)
            )
            rates = sres.bg_relative_rates[: len(bg_places)]
            result.points.append(
                CatSweepPoint(
                    label=label,
                    fg_mask=fg_place.llc_ways,
                    bg_mask=bg_union,
                    llc_policy=s.llc_policy,
                    fg_slowdown=sres.normalized_time,
                    bg_throughput=sum(rates) / len(rates),
                    # Pair points on the classic contiguous sweep keep the
                    # 6-element encoding (and the old payload identity).
                    masks=None if plain_pair else masks,
                )
            )
        return result

    def render(self, result: CatSweepResult, **_) -> str:
        return result.render()

    def encode(self, result: CatSweepResult) -> dict:
        # The 7th element (the full mask tuple) joins a point's row only
        # when set, so classic pair sweeps keep the legacy 6-element shape
        # and previously persisted records decode unchanged.
        out = {
            "fg": result.fg,
            "bg": result.bg,
            "threads": result.threads,
            "n_ways": result.n_ways,
            "points": [
                [p.label, p.fg_mask, p.bg_mask, p.llc_policy,
                 p.fg_slowdown, p.bg_throughput]
                + ([list(p.masks)] if p.masks is not None else [])
                for p in result.points
            ],
        }
        if result.bgs and (len(result.bgs) > 1 or result.layout != "contiguous"):
            out["bgs"] = list(result.bgs)
            out["layout"] = result.layout
        return out

    def decode(self, payload: dict) -> CatSweepResult:
        return CatSweepResult(
            fg=payload["fg"],
            bg=payload["bg"],
            threads=payload["threads"],
            n_ways=payload["n_ways"],
            bgs=tuple(payload.get("bgs", ())),
            layout=payload.get("layout", "contiguous"),
            points=[
                CatSweepPoint(
                    label=row[0],
                    fg_mask=row[1],
                    bg_mask=row[2],
                    llc_policy=row[3],
                    fg_slowdown=row[4],
                    bg_throughput=row[5],
                    masks=tuple(row[6]) if len(row) > 6 else None,
                )
                for row in payload["points"]
            ],
        )


def run_cat_sweep(
    fg: str,
    bg: str = "Stream",
    *,
    threads: int | None = None,
    bgs: "tuple[str, ...] | None" = None,
    layout: str = "contiguous",
    config=None,
) -> CatSweepResult:
    """Run the CAT sweep (thin wrapper over ``Session.run("cat-sweep")``)."""
    from repro.session import Session

    return Session(config).run(
        "cat-sweep", fg=fg, bg=bg, threads=threads, bgs=bgs, layout=layout
    ).result
