"""Experiment: the application roster (Table I) and solo cards.

Table I is pure metadata — which application belongs to which suite —
but registering it as a runner gives it the same record/provenance
treatment as every measured artifact.  The ``solo`` runner produces the
full characterization card the CLI prints per application (runtime,
bandwidth, VTune metrics, scalability class), all through the session's
shared caches.
"""

from __future__ import annotations

from repro.core.report import ascii_table
from repro.core.scalability import classify_speedup
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.tools.vtune import VtuneProfiler
from repro.units import GB
from repro.workloads.registry import list_workloads, suite_of


@register_runner("table1", title="application roster", order=10)
class RosterRunner(Runner):
    """Table I: applications chosen for each suite."""

    def execute(self, session) -> list[tuple[str, str]]:
        return [(suite_of(n), n) for n in list_workloads()]

    def render(self, result: list[tuple[str, str]], **_) -> str:
        return ascii_table(
            ["suite", "application"],
            [list(row) for row in result],
            title="Table I: applications chosen for each suite",
        )


@register_runner(
    "solo",
    title="full solo characterization card per workload",
    artifact=False,
    order=100,
)
class SoloCardRunner(Runner):
    """One characterization card per configured workload."""

    def execute(self, session) -> str:
        config = session.config
        vtune = VtuneProfiler()
        cards = []
        for app in config.workloads:
            solo = session.solo(app, threads=config.threads)
            t1 = session.solo_runtime(app, threads=1)
            t8 = session.solo_runtime(app, threads=8)
            tot = solo.metrics.total
            cards.append("\n".join([
                f"== {app} ({suite_of(app)}) ==",
                f"runtime @{config.threads}T : {solo.runtime_s:.1f} s",
                f"bandwidth       : {solo.metrics.avg_bandwidth_bytes / GB:.1f} GB/s",
                f"CPI / L2_PCP    : {tot.cpi:.2f} / {tot.l2_pcp:.1%}",
                f"LLC MPKI / LL   : {tot.llc_mpki:.1f} / {tot.ll:.1f}",
                f"8T speedup      : {t1 / t8:.1f}x -> {classify_speedup(t1 / t8).value}",
                vtune.report(solo.metrics),
            ]))
        return "\n\n".join(cards)
