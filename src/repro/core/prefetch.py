"""Experiment: prefetcher sensitivity (Fig 4).

Runs each application at the fixed 4-thread configuration with all four
hardware prefetchers enabled vs disabled (the MSR 0x1A4 experiment) and
reports T_on / T_off — the paper's normalization, where values below
1.0 mean the application is slowed down when prefetchers are off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.workloads.calibration import SUITES
from repro.workloads.registry import suite_of

#: Apps at or below this ratio count as prefetcher-sensitive (the paper
#: calls out a 1.18x slowdown, i.e. ratio ~0.85).
SENSITIVE_THRESHOLD = 0.88


@dataclass
class PrefetchResult:
    """T_on / T_off per application (Fig 4's bars)."""

    ratios: dict[str, float] = field(default_factory=dict)

    def sensitive_apps(self) -> list[str]:
        """Applications meaningfully hurt by disabling prefetchers."""
        return sorted(a for a, r in self.ratios.items() if r <= SENSITIVE_THRESHOLD)

    def render_fig4(self) -> str:
        headers = ["suite", "app", "T_on/T_off", "sensitive"]
        rows = []
        for suite, members in SUITES.items():
            for app in members:
                if app in self.ratios:
                    r = self.ratios[app]
                    rows.append([suite, app, r, "yes" if r <= SENSITIVE_THRESHOLD else ""])
        for app, r in self.ratios.items():
            if suite_of(app) == "mini-benchmarks":
                rows.append(["mini-benchmarks", app, r, "yes" if r <= SENSITIVE_THRESHOLD else ""])
        return ascii_table(
            headers, rows,
            title="Fig 4: slowdown if prefetchers are turned off (T_on/T_off)",
        )


@register_runner("fig4", title="prefetcher sensitivity (MSR 0x1A4)", order=40)
class PrefetchSensitivityRunner(Runner):
    """Fig 4 through the session substrate: the prefetcher-off engine is
    a second engine configuration with its own fingerprinted solo cache."""

    def execute(self, session) -> PrefetchResult:
        config = session.config
        if not config.engine_config.prefetchers_on:
            raise ExperimentError("baseline config must have prefetchers enabled")
        off_config = replace(config.engine_config, prefetchers_on=False)
        result = PrefetchResult()
        for app in config.workloads:
            t_on = session.jitter("fig4", app, "on").measure(
                session.solo_runtime(app, threads=config.threads)
            )
            t_off = session.jitter("fig4", app, "off").measure(
                session.solo_runtime(
                    app, threads=config.threads, engine_config=off_config
                )
            )
            result.ratios[app] = t_on / t_off if t_off > 0 else 1.0
        return result

    def render(self, result: PrefetchResult, **_) -> str:
        return result.render_fig4()


def run_prefetch_sensitivity(config: ExperimentConfig | None = None) -> PrefetchResult:
    """Run Fig 4 (thin wrapper over ``Session.run("fig4")``)."""
    from repro.session import Session

    return Session(config).run("fig4").result
