"""Rendering helpers: ASCII tables, heat maps and CSV output.

Every experiment result renders through these so the benchmark harness
prints the same rows/series the paper reports.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence

from repro.errors import ExperimentError


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Fixed-width table with auto-sized columns."""
    str_rows: list[list[str]] = []
    for row in rows:
        out_row = []
        for cell in row:
            if isinstance(cell, float):
                out_row.append(float_fmt.format(cell))
            else:
                out_row.append(str(cell))
        str_rows.append(out_row)
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    buf = io.StringIO()
    if title:
        buf.write(title + "\n")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    buf.write(line + "\n")
    buf.write("-" * len(line) + "\n")
    for row in str_rows:
        buf.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    return buf.getvalue()


def csv_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Comma-separated rendering (benchmark artifacts)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.6g}"
        text = str(cell)
        return f'"{text}"' if "," in text else text

    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(fmt(c) for c in row))
    return "\n".join(lines) + "\n"


#: Shade ramp for the text heat map (low -> high).
_SHADES = " .:-=+*#%@"


def text_heatmap(
    matrix: dict[tuple[str, str], float],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    *,
    lo: float = 1.0,
    hi: float = 2.0,
    cell_fmt: str = "{:.1f}",
) -> str:
    """Fig 5-style heat map: numeric cells plus a shade column legend."""
    buf = io.StringIO()
    label_w = max(len(r) for r in row_labels) + 1
    cell_w = max(len(cell_fmt.format(hi)), 4)
    # Column header (vertical-ish: truncated names).
    buf.write(" " * label_w)
    for c in col_labels:
        buf.write(c[: cell_w - 1].rjust(cell_w))
    buf.write("\n")
    for r in row_labels:
        buf.write(r.ljust(label_w))
        for c in col_labels:
            v = matrix.get((r, c))
            if v is None:
                buf.write("?".rjust(cell_w))
            else:
                buf.write(cell_fmt.format(v).rjust(cell_w))
        buf.write("\n")
    buf.write(f"(shade scale: {lo} {_SHADES} {hi}+)\n")
    return buf.getvalue()


def shade(value: float, *, lo: float = 1.0, hi: float = 2.0) -> str:
    """One shade character for a heat-map value."""
    if hi <= lo:
        raise ExperimentError("hi must exceed lo")
    t = (value - lo) / (hi - lo)
    idx = int(max(0.0, min(0.999, t)) * len(_SHADES))
    return _SHADES[idx]
