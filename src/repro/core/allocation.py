"""Experiment: asymmetric core-allocation sweep (extension).

The paper fixes 4+4 cores per pair ("fair sharing setup", Section V)
and notes that its solo analysis "can help choose the right
configuration" — this experiment closes that loop.  For one pair it
sweeps every split of the 8 cores (1+7 ... 7+1) and reports, per split:

* the foreground slowdown vs its *same-thread-count* solo run (so the
  interference effect is isolated from the parallelism change);
* the background's relative progress rate;
* a weighted-speedup throughput metric (sum of each side's progress
  relative to its own 4-thread solo).

For a victim/offender pair the sweep shows the policy lever: shrinking
the offender's core share buys the victim back far more than
proportionally, because cores are only one of the three contended
resources (the offender's bandwidth pressure scales with its threads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.session.scenario import Scenario


@dataclass(frozen=True)
class AllocationPoint:
    """Outcome of one core split."""

    fg_threads: int
    bg_threads: int
    #: fg co-run time / fg solo time at the same thread count.
    fg_slowdown: float
    #: bg instruction rate / bg solo rate at the same thread count.
    bg_relative_rate: float
    #: fg progress rate / fg 4T-solo rate + bg progress / bg 4T-solo rate.
    weighted_speedup: float


@dataclass
class AllocationSweep:
    """All splits for one (fg, bg) pair."""

    fg: str
    bg: str
    points: list[AllocationPoint] = field(default_factory=list)

    def point(self, fg_threads: int) -> AllocationPoint:
        for p in self.points:
            if p.fg_threads == fg_threads:
                return p
        raise ExperimentError(f"no split with fg_threads={fg_threads}")

    def best_split(self) -> AllocationPoint:
        """The split maximizing weighted speedup."""
        return max(self.points, key=lambda p: p.weighted_speedup)

    def render(self) -> str:
        headers = ["split (fg+bg)", "fg slowdown", "bg rel. rate", "weighted speedup"]
        rows = [
            [f"{p.fg_threads}+{p.bg_threads}", p.fg_slowdown,
             p.bg_relative_rate, p.weighted_speedup]
            for p in self.points
        ]
        return ascii_table(
            headers, rows,
            title=f"Core-allocation sweep: {self.fg} (fg) vs {self.bg} (bg)",
        )


@register_runner(
    "allocation",
    title="asymmetric core-allocation sweep (extension)",
    artifact=False,
    order=140,
)
class AllocationSweepRunner(Runner):
    """Core-split sweep through the session substrate: every split is a
    2-app :class:`~repro.session.scenario.Scenario` with asymmetric
    thread counts; the per-split solo references land in the shared
    cache and the independent splits (7 on the paper's 8-core socket)
    fan out over the session executor."""

    def execute(self, session, *, fg: str | None = None, bg: str | None = None) -> AllocationSweep:
        config = session.config
        if fg is None or bg is None:
            if len(config.workloads) < 2:
                raise ExperimentError("need exactly two workloads (--workloads fg,bg)")
            fg = fg if fg is not None else config.workloads[0]
            bg = bg if bg is not None else config.workloads[1]
        n_cores = config.spec.n_cores
        sweep = AllocationSweep(fg=fg, bg=bg)
        fg_ref_rate = session.solo_rate(fg, threads=4)
        bg_ref_rate = session.solo_rate(bg, threads=4)
        splits = [(fg_t, n_cores - fg_t) for fg_t in range(1, n_cores)]
        scenarios = [
            Scenario.pair(fg, bg, threads=fg_t, bg_threads=bg_t)
            for fg_t, bg_t in splits
        ]
        for (fg_t, bg_t), sres in zip(splits, session.run_scenarios(scenarios)):
            res = sres.result.to_corun()
            fg_rate = res.fg.total.instructions / res.fg.runtime_s
            bg_rate = res.bg.total.instructions / res.fg.runtime_s
            sweep.points.append(
                AllocationPoint(
                    fg_threads=fg_t,
                    bg_threads=bg_t,
                    fg_slowdown=res.normalized_time,
                    bg_relative_rate=res.bg_relative_rate,
                    weighted_speedup=fg_rate / fg_ref_rate + bg_rate / bg_ref_rate,
                )
            )
        return sweep

    def render(self, result: AllocationSweep, **_) -> str:
        best = result.best_split()
        return (
            result.render()
            + f"best split: {best.fg_threads}+{best.bg_threads} "
            f"(weighted speedup {best.weighted_speedup:.2f})"
        )


def run_allocation_sweep(
    fg: str,
    bg: str,
    config: ExperimentConfig | None = None,
) -> AllocationSweep:
    """Sweep all fg+bg core splits (thin wrapper over ``Session.run``)."""
    from repro.session import Session

    return Session(config).run("allocation", fg=fg, bg=bg).result
