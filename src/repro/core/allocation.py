"""Experiment: asymmetric core-allocation sweep (extension).

The paper fixes 4+4 cores per pair ("fair sharing setup", Section V)
and notes that its solo analysis "can help choose the right
configuration" — this experiment closes that loop.  For one pair it
sweeps every split of the 8 cores (1+7 ... 7+1) and reports, per split:

* the foreground slowdown vs its *same-thread-count* solo run (so the
  interference effect is isolated from the parallelism change);
* the background's relative progress rate;
* a weighted-speedup throughput metric (sum of each side's progress
  relative to its own 4-thread solo).

For a victim/offender pair the sweep shows the policy lever: shrinking
the offender's core share buys the victim back far more than
proportionally, because cores are only one of the three contended
resources (the offender's bandwidth pressure scales with its threads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.engine import CoRunResult, IntervalEngine
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.workloads.registry import get_profile


@dataclass(frozen=True)
class AllocationPoint:
    """Outcome of one core split."""

    fg_threads: int
    bg_threads: int
    #: fg co-run time / fg solo time at the same thread count.
    fg_slowdown: float
    #: bg instruction rate / bg solo rate at the same thread count.
    bg_relative_rate: float
    #: fg progress rate / fg 4T-solo rate + bg progress / bg 4T-solo rate.
    weighted_speedup: float


@dataclass
class AllocationSweep:
    """All splits for one (fg, bg) pair."""

    fg: str
    bg: str
    points: list[AllocationPoint] = field(default_factory=list)

    def point(self, fg_threads: int) -> AllocationPoint:
        for p in self.points:
            if p.fg_threads == fg_threads:
                return p
        raise ExperimentError(f"no split with fg_threads={fg_threads}")

    def best_split(self) -> AllocationPoint:
        """The split maximizing weighted speedup."""
        return max(self.points, key=lambda p: p.weighted_speedup)

    def render(self) -> str:
        headers = ["split (fg+bg)", "fg slowdown", "bg rel. rate", "weighted speedup"]
        rows = [
            [f"{p.fg_threads}+{p.bg_threads}", p.fg_slowdown,
             p.bg_relative_rate, p.weighted_speedup]
            for p in self.points
        ]
        return ascii_table(
            headers, rows,
            title=f"Core-allocation sweep: {self.fg} (fg) vs {self.bg} (bg)",
        )


class _SplitTask(NamedTuple):
    """One core split shipped to a pool worker (picklable primitives)."""

    config: ExperimentConfig
    fg: str
    bg: str
    fg_threads: int
    bg_threads: int
    fg_solo_runtime_s: float
    bg_solo_rate: float


def _split_corun(task: _SplitTask) -> CoRunResult:
    """Co-run one split (runs inside pool workers).  The engine is
    rebuilt from the task's spec + engine config and the per-split solo
    references come pre-resolved from the parent session's cache, so
    the result is bit-identical to the serial path's."""
    config = task.config
    engine = IntervalEngine(spec=config.spec, config=config.engine_config)
    return engine.co_run(
        get_profile(task.fg),
        get_profile(task.bg),
        threads=task.fg_threads,
        bg_threads=task.bg_threads,
        fg_solo_runtime_s=task.fg_solo_runtime_s,
        bg_solo_rate=task.bg_solo_rate,
    )


@register_runner(
    "allocation",
    title="asymmetric core-allocation sweep (extension)",
    artifact=False,
    order=140,
)
class AllocationSweepRunner(Runner):
    """Core-split sweep through the session substrate; the per-split
    solo references land in the shared cache and the independent
    splits (7 on the paper's 8-core socket) fan out over the session
    executor."""

    def execute(self, session, *, fg: str | None = None, bg: str | None = None) -> AllocationSweep:
        config = session.config
        if fg is None or bg is None:
            if len(config.workloads) < 2:
                raise ExperimentError("need exactly two workloads (--workloads fg,bg)")
            fg = fg if fg is not None else config.workloads[0]
            bg = bg if bg is not None else config.workloads[1]
        n_cores = config.spec.n_cores
        sweep = AllocationSweep(fg=fg, bg=bg)
        fg_ref_rate = session.solo_rate(fg, threads=4)
        bg_ref_rate = session.solo_rate(bg, threads=4)
        splits = [(fg_t, n_cores - fg_t) for fg_t in range(1, n_cores)]
        if session.executor.parallel and len(splits) > 1:
            # Resolve every split's solo references through the shared
            # cache first, then fan the uncached co-runs out and store
            # the workers' results back like any serial measurement.
            todo = [
                (fg_t, bg_t)
                for fg_t, bg_t in splits
                if session.cached_co_run(fg, bg, threads=fg_t, bg_threads=bg_t) is None
            ]
            tasks = [
                _SplitTask(
                    config,
                    fg,
                    bg,
                    fg_t,
                    bg_t,
                    session.solo_runtime(fg, threads=fg_t),
                    session.solo_rate(bg, threads=bg_t),
                )
                for fg_t, bg_t in todo
            ]
            for (fg_t, bg_t), res in zip(todo, session.executor.map(_split_corun, tasks)):
                session.store_co_run(fg, bg, res, threads=fg_t, bg_threads=bg_t)
        for fg_t in range(1, n_cores):
            bg_t = n_cores - fg_t
            res = session.co_run(fg, bg, threads=fg_t, bg_threads=bg_t)
            fg_rate = res.fg.total.instructions / res.fg.runtime_s
            bg_rate = res.bg.total.instructions / res.fg.runtime_s
            sweep.points.append(
                AllocationPoint(
                    fg_threads=fg_t,
                    bg_threads=bg_t,
                    fg_slowdown=res.normalized_time,
                    bg_relative_rate=res.bg_relative_rate,
                    weighted_speedup=fg_rate / fg_ref_rate + bg_rate / bg_ref_rate,
                )
            )
        return sweep

    def render(self, result: AllocationSweep, **_) -> str:
        best = result.best_split()
        return (
            result.render()
            + f"best split: {best.fg_threads}+{best.bg_threads} "
            f"(weighted speedup {best.weighted_speedup:.2f})"
        )


def run_allocation_sweep(
    fg: str,
    bg: str,
    config: ExperimentConfig | None = None,
) -> AllocationSweep:
    """Sweep all fg+bg core splits (thin wrapper over ``Session.run``)."""
    from repro.session import Session

    return Session(config).run("allocation", fg=fg, bg=bg).result
