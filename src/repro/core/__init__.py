"""The paper's contribution: the interference characterization harness.

One registered :class:`~repro.session.base.Runner` per paper artifact,
all executing through the shared :class:`~repro.session.session.Session`
substrate (``Session(config).run("fig5")``, ``session.run_all()``):

========  ==========================================  ============
artifact  experiment                                  registry id
========  ==========================================  ============
Table I   application roster                          ``table1``
Fig 2     thread scalability curves                   ``fig2``
Table II  Low/Medium/High scalability classes         ``table2``
Fig 3     solo bandwidth at 1/4/8 threads             ``fig3``
Fig 4     prefetcher sensitivity (MSR 0x1A4)          ``fig4``
Fig 5     625-pair consolidation heat map             ``fig5``
—         Harmony / Victim-Offender / Both-Victim     :func:`classify_pair`
Table III problematic-pair bandwidth                  ``table3``
Fig 6     co-run with Bandit / STREAM                 ``fig6``
Fig 7     Gemini metrics under STREAM                 ``fig7``
Fig 8     Gemini metrics under real offenders         ``fig8``
Table IV  region-level profiles (gather / UUS)        ``table4``
========  ==========================================  ============

The historical ``run_*`` functions remain as thin wrappers delegating
to the registry, so existing callers keep working unchanged.
"""

from repro.core.bandwidth_sweep import (
    FIG3_THREADS,
    BandwidthResult,
    run_bandwidth_sweep,
)
from repro.core.classify import (
    VICTIM_THRESHOLD,
    NWayVerdict,
    PairClass,
    PairVerdict,
    classify_nway,
    classify_pair,
)
from repro.core.catsweep import (
    CatSweepPoint,
    CatSweepResult,
    contiguous_split,
    run_cat_sweep,
)
from repro.core.consolidation import ConsolidationMatrix, run_consolidation
from repro.core.allocation import (
    AllocationPoint,
    AllocationSweep,
    run_allocation_sweep,
)
from repro.core.efficiency import EfficiencyResult, EfficiencyRow, run_efficiency
from repro.core.experiment import ExperimentConfig, Jitter, SoloCache
from repro.core.insights import AppRoleScores, MatrixInsights
from repro.core.predictor import (
    DEFAULT_LEVELS,
    BubbleUpPredictor,
    PredictionReport,
    SensitivityCurve,
    bubble_profile,
)
from repro.core import roster  # noqa: F401  (registers table1/solo runners)
from repro.core.minibench import (
    MINI_BENCH_BACKGROUNDS,
    MiniBenchResult,
    run_minibench,
)
from repro.core.nway import (
    NWayCell,
    NWayDegradationTable,
    run_nway_consolidation,
)
from repro.core.pair_bandwidth import (
    TABLE3_PAIRS,
    PairBandwidthResult,
    PairBandwidthRow,
    run_pair_bandwidth,
)
from repro.core.prefetch import (
    SENSITIVE_THRESHOLD,
    PrefetchResult,
    run_prefetch_sensitivity,
)
from repro.core.provenance import (
    GEMINI_APPS,
    OFFENDERS,
    TABLE4_SUBJECTS,
    MetricQuad,
    ProvenanceResult,
    run_gemini_vs_offenders,
    run_gemini_vs_stream,
    run_table4,
)
from repro.core.report import ascii_table, csv_table, shade, text_heatmap
from repro.sched import runner as _sched_runner  # noqa: F401  (registers sched-replay)
from repro.traffic import runner as _traffic_runner  # noqa: F401  (registers traffic-replay)
from repro.core.scalability import (
    HIGH_THRESHOLD,
    LOW_THRESHOLD,
    ScalabilityClass,
    ScalabilityResult,
    classify_speedup,
    run_scalability,
)

__all__ = [
    "AllocationPoint",
    "AllocationSweep",
    "AppRoleScores",
    "run_allocation_sweep",
    "BandwidthResult",
    "BubbleUpPredictor",
    "ConsolidationMatrix",
    "DEFAULT_LEVELS",
    "EfficiencyResult",
    "EfficiencyRow",
    "ExperimentConfig",
    "MatrixInsights",
    "SensitivityCurve",
    "bubble_profile",
    "run_efficiency",
    "FIG3_THREADS",
    "GEMINI_APPS",
    "HIGH_THRESHOLD",
    "Jitter",
    "LOW_THRESHOLD",
    "MINI_BENCH_BACKGROUNDS",
    "MetricQuad",
    "MiniBenchResult",
    "CatSweepPoint",
    "CatSweepResult",
    "NWayCell",
    "NWayVerdict",
    "classify_nway",
    "contiguous_split",
    "run_cat_sweep",
    "NWayDegradationTable",
    "OFFENDERS",
    "PairBandwidthResult",
    "PairBandwidthRow",
    "PairClass",
    "PairVerdict",
    "PredictionReport",
    "PrefetchResult",
    "ProvenanceResult",
    "SENSITIVE_THRESHOLD",
    "ScalabilityClass",
    "ScalabilityResult",
    "SoloCache",
    "TABLE3_PAIRS",
    "TABLE4_SUBJECTS",
    "VICTIM_THRESHOLD",
    "ascii_table",
    "classify_pair",
    "classify_speedup",
    "csv_table",
    "run_bandwidth_sweep",
    "run_consolidation",
    "run_gemini_vs_offenders",
    "run_gemini_vs_stream",
    "run_minibench",
    "run_nway_consolidation",
    "run_pair_bandwidth",
    "run_prefetch_sensitivity",
    "run_scalability",
    "run_table4",
    "shade",
    "text_heatmap",
]
