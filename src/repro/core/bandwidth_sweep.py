"""Experiment: solo memory-bandwidth consumption (Fig 3).

Measures each application's bus bandwidth with the PCM monitor at 1, 4
and 8 threads, exactly the three configurations Fig 3 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.tools.pcm import PcmMemoryMonitor
from repro.units import MB
from repro.workloads.calibration import SUITES
from repro.workloads.registry import suite_of

#: Thread counts Fig 3 plots.
FIG3_THREADS: tuple[int, ...] = (1, 4, 8)


@dataclass
class BandwidthResult:
    """Per-app average bandwidth (bytes/s) per thread count."""

    bandwidth: dict[str, dict[int, float]] = field(default_factory=dict)

    def mb_s(self, app: str, threads: int) -> float:
        """Fig 3's unit: MB/s."""
        return self.bandwidth[app][threads] / MB

    def render_fig3(self) -> str:
        headers = ["suite", "app"] + [f"{t}-thread MB/s" for t in FIG3_THREADS]
        rows = []
        for suite, members in SUITES.items():
            for app in members:
                if app in self.bandwidth:
                    rows.append(
                        [suite, app] + [round(self.mb_s(app, t)) for t in FIG3_THREADS]
                    )
        for app in self.bandwidth:
            if suite_of(app) == "mini-benchmarks":
                rows.append(
                    ["mini-benchmarks", app]
                    + [round(self.mb_s(app, t)) for t in FIG3_THREADS]
                )
        return ascii_table(
            headers, rows, title="Fig 3: memory bandwidth of each application"
        )


@register_runner("fig3", title="solo memory bandwidth at 1/4/8 threads", order=30)
class BandwidthSweepRunner(Runner):
    """Fig 3 through the session substrate (solo runs shared)."""

    def execute(
        self,
        session,
        *,
        threads: tuple[int, ...] = FIG3_THREADS,
        pcm_granularity_s: float = 10.0,
    ) -> BandwidthResult:
        monitor = PcmMemoryMonitor(granularity_s=pcm_granularity_s)
        result = BandwidthResult()
        for app in session.config.workloads:
            per_threads: dict[int, float] = {}
            for t in threads:
                solo = session.solo(app, threads=t)
                report = monitor.observe(solo.timeline)
                bw = report.average_bytes_per_s(app)
                if bw == 0.0:  # run shorter than one PCM window: use exact
                    bw = solo.metrics.avg_bandwidth_bytes
                per_threads[t] = bw
            result.bandwidth[app] = per_threads
        return result

    def render(self, result: BandwidthResult, **_) -> str:
        return result.render_fig3()


def run_bandwidth_sweep(
    config: ExperimentConfig | None = None,
    *,
    threads: tuple[int, ...] = FIG3_THREADS,
    pcm_granularity_s: float = 10.0,
) -> BandwidthResult:
    """Run Fig 3 (thin wrapper over ``Session.run("fig3")``)."""
    from repro.session import Session

    return Session(config).run(
        "fig3", threads=threads, pcm_granularity_s=pcm_granularity_s
    ).result
