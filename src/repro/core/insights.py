"""Automated findings extraction from a consolidation matrix.

Turns a Fig 5 matrix into the paper's Section V narrative: who the
offenders and victims are, which suites coexist, which pairings to
avoid — as data, so schedulers and reports can consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.core.classify import PairClass
from repro.core.consolidation import ConsolidationMatrix
from repro.core.report import ascii_table
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.workloads.registry import suite_of


@dataclass(frozen=True)
class AppRoleScores:
    """How one application behaves in consolidation."""

    app: str
    #: Mean slowdown this app suffers across all backgrounds (row mean).
    victim_score: float
    #: Mean slowdown this app inflicts across all foregrounds (col mean).
    offender_score: float
    #: Worst slowdown suffered and who caused it.
    worst_case: float
    worst_neighbour: str


@dataclass
class MatrixInsights:
    """Derived findings over a consolidation matrix."""

    matrix: ConsolidationMatrix
    roles: dict[str, AppRoleScores] = field(default_factory=dict)

    @staticmethod
    def derive(matrix: ConsolidationMatrix) -> "MatrixInsights":
        """Compute all role scores."""
        out = MatrixInsights(matrix=matrix)
        apps = matrix.workloads
        for app in apps:
            row = {bg: matrix.value(app, bg) for bg in apps if bg != app}
            col = [matrix.value(fg, app) for fg in apps if fg != app]
            worst_bg = max(row, key=row.get)
            out.roles[app] = AppRoleScores(
                app=app,
                victim_score=mean(row.values()),
                offender_score=mean(col),
                worst_case=row[worst_bg],
                worst_neighbour=worst_bg,
            )
        return out

    # -- rankings -------------------------------------------------------------

    def top_offenders(self, n: int = 5) -> list[str]:
        """Applications that hurt their co-runners the most."""
        return sorted(
            self.roles, key=lambda a: self.roles[a].offender_score, reverse=True
        )[:n]

    def top_victims(self, n: int = 5) -> list[str]:
        """Applications hurt the most by their co-runners."""
        return sorted(
            self.roles, key=lambda a: self.roles[a].victim_score, reverse=True
        )[:n]

    def harmless(self, *, limit: float = 1.05) -> list[str]:
        """Applications whose mean inflicted slowdown is below ``limit``."""
        return sorted(
            a for a, r in self.roles.items() if r.offender_score < limit
        )

    def suite_victimhood(self) -> dict[str, float]:
        """Mean victim score per suite (the paper: graph suites lead)."""
        by_suite: dict[str, list[float]] = {}
        for app, r in self.roles.items():
            by_suite.setdefault(suite_of(app), []).append(r.victim_score)
        return {s: mean(v) for s, v in by_suite.items()}

    def avoid_list(self) -> list[tuple[str, str]]:
        """Unordered Both-Victim pairs ("should definitely be avoided")."""
        apps = self.matrix.workloads
        out = []
        for i, a in enumerate(apps):
            for b in apps[i + 1 :]:
                if self.matrix.classify(a, b).relationship is PairClass.BOTH_VICTIM:
                    out.append((a, b))
        return out

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        rows = [
            [
                r.app,
                r.victim_score,
                r.offender_score,
                f"{r.worst_case:.2f}x by {r.worst_neighbour}",
            ]
            for r in sorted(
                self.roles.values(), key=lambda r: r.victim_score, reverse=True
            )
        ]
        table = ascii_table(
            ["app", "victim score", "offender score", "worst case"],
            rows,
            title="Consolidation roles (mean normalized time suffered / inflicted)",
        )
        lines = [
            table,
            "top offenders : " + ", ".join(self.top_offenders()),
            "top victims   : " + ", ".join(self.top_victims()),
            "harmless      : " + ", ".join(self.harmless()),
            "avoid pairs   : "
            + (", ".join(f"{a}+{b}" for a, b in self.avoid_list()) or "(none)"),
        ]
        return "\n".join(lines)


@register_runner(
    "insights",
    title="derived Section V findings from the Fig 5 matrix",
    artifact=False,
    order=110,
)
class InsightsRunner(Runner):
    """Matrix insights: reuses the session's Fig 5 record."""

    def execute(self, session) -> MatrixInsights:
        return MatrixInsights.derive(session.run("fig5").result)

    def render(self, result: MatrixInsights, **_) -> str:
        return result.render()
