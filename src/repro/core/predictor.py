"""Bubble-Up-style interference prediction (extension).

The paper's related work (Mars et al., Bubble-Up, MICRO'11) predicts a
pair's slowdown *without co-running the pair*: each application is
characterized once against a tunable synthetic memory "bubble", giving

* a **sensitivity curve** — the app's slowdown as a function of bubble
  pressure, and
* a **pressure score** — the bubble level that reproduces the app's
  impact on a fixed reporter.

The predicted slowdown of (fg, bg) is ``sensitivity_fg(pressure_bg)``.
With N applications this costs O(N) characterizations instead of O(N^2)
co-runs.  ``evaluate`` scores the prediction against the engine's full
Fig 5 matrix — reproducing the methodology the paper positions itself
against, on top of this repo's substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.consolidation import ConsolidationMatrix
from repro.core.experiment import ExperimentConfig, SoloCache
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.session.scenario import AppPlacement, Scenario
from repro.trace.mrc import MissRatioCurve
from repro.units import KiB, MiB
from repro.workloads.base import CodeRegion, RegionProfile, WorkloadProfile
from repro.workloads.registry import get_profile

#: Default bubble pressure grid (0 = idle neighbour, 1 = STREAM-class).
DEFAULT_LEVELS: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def bubble_profile(level: float, *, kinstr: float = 2.0e8) -> WorkloadProfile:
    """The tunable memory balloon at ``level`` in [0, 1].

    Scales both bandwidth appetite (L2 MPKI) and LLC footprint, the two
    pressure dimensions the paper's interference analysis identifies.
    """
    if not (0.0 <= level <= 1.0):
        raise ExperimentError(f"bubble level must be in [0, 1], got {level}")
    mpki = 0.05 + 40.0 * level
    footprint = 64 * KiB + level * 40 * MiB
    return WorkloadProfile(
        name=f"bubble[{level:.2f}]",
        suite="synthetic",
        total_kinstr=kinstr,
        regions=(
            RegionProfile(
                region=CodeRegion("balloon", "bubble.c", 10, 40),
                weight=1.0,
                ipc_core=2.0,
                l2_mpki=mpki,
                mrc=MissRatioCurve.constant(0.9),
                regularity=0.8,
                mlp=8.0,
                write_fraction=0.3,
                footprint_bytes=footprint,
            ),
        ),
    )


@dataclass
class SensitivityCurve:
    """An application's slowdown vs bubble pressure."""

    app: str
    levels: tuple[float, ...]
    slowdowns: tuple[float, ...]

    def slowdown_at(self, level: float) -> float:
        """Interpolated slowdown at a pressure level."""
        return float(np.interp(level, self.levels, self.slowdowns))

    def pressure_for(self, slowdown: float) -> float:
        """Inverse lookup: the *smallest* level producing a slowdown.

        Sensitivity curves saturate once the bubble fills the bus, so
        the inverse of the flat tail is taken at its left edge.
        """
        s = np.asarray(self.slowdowns)
        if slowdown <= s[0]:
            return self.levels[0]
        if slowdown > s[-1]:
            return self.levels[-1]
        idx = int(np.searchsorted(s, slowdown, side="left"))
        s0, s1 = s[idx - 1], s[idx]
        l0, l1 = self.levels[idx - 1], self.levels[idx]
        if s1 == s0:
            return float(l0)
        return float(l0 + (slowdown - s0) / (s1 - s0) * (l1 - l0))


#: Solo-rate sentinel for the balloon background: its own progress is
#: meaningless, so the rate reference is an arbitrary large constant
#: (it never influences the foreground's measured time).
_BUBBLE_RATE = 1e9


def _sensitivity_scenario(
    app_placement: AppPlacement, level: float, threads: int
) -> Scenario:
    """(app vs balloon-at-level) — in-band profile, hence uncacheable,
    exactly the pre-redesign behaviour of the predictor's co-runs."""
    balloon = bubble_profile(level)
    return Scenario(
        (
            app_placement,
            AppPlacement(
                balloon.name, threads, profile=balloon,
                solo_rate_override=_BUBBLE_RATE,
            ),
        )
    )


@dataclass
class BubbleUpPredictor:
    """O(N) characterization, O(1) per-pair prediction."""

    config: ExperimentConfig
    levels: tuple[float, ...] = DEFAULT_LEVELS
    #: The reporter used to score pressure: a mid-sensitivity bubble
    #: consumer (level 0.5 bubble is its own reporter by default).
    reporter: WorkloadProfile | None = None
    sensitivity: dict[str, SensitivityCurve] = field(default_factory=dict)
    pressure: dict[str, float] = field(default_factory=dict)
    _reporter_curve: SensitivityCurve | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if len(self.levels) < 2 or sorted(self.levels) != list(self.levels):
            raise ExperimentError("levels must be ascending, >= 2 entries")
        if self.reporter is None:
            self.reporter = get_profile("G-BFS")

    # -- characterization ---------------------------------------------------

    def fit(
        self,
        apps: tuple[str, ...] | None = None,
        *,
        session=None,
    ) -> "BubbleUpPredictor":
        """Characterize sensitivity and pressure for all apps.

        Pass a :class:`~repro.session.session.Session` to measure
        through the declarative scenario machinery: every balloon
        co-run becomes an (uncacheable, in-band-profile) 2-app
        :class:`~repro.session.scenario.Scenario`, the solo baselines
        resolve through the session's shared cache, and the
        fine-grained cells fan out over the session executor in
        per-app chunks.  Without a session a private engine + cache is
        built, as before.
        """
        apps = apps if apps is not None else self.config.workloads
        threads = self.config.threads
        if session is not None:
            return self._fit_scenarios(apps, session)
        engine = self.config.make_engine()
        cache = SoloCache(engine)

        def curve_for(profile: WorkloadProfile, name: str) -> SensitivityCurve:
            solo = cache.get(profile.name, threads=threads, profile=profile)
            slows = []
            for level in self.levels:
                if level == 0.0:
                    slows.append(1.0)
                    continue
                res = engine.co_run(
                    profile, bubble_profile(level), threads=threads,
                    fg_solo_runtime_s=solo.runtime_s, bg_solo_rate=_BUBBLE_RATE,
                )
                slows.append(res.normalized_time)
            # Enforce monotonicity (tiny fixed-point wiggles).
            mono = np.maximum.accumulate(slows)
            return SensitivityCurve(app=name, levels=self.levels, slowdowns=tuple(mono))

        self._reporter_curve = curve_for(self.reporter, self.reporter.name)
        rep_solo = cache.get(self.reporter.name, threads=threads, profile=self.reporter)
        for app in apps:
            profile = get_profile(app)
            self.sensitivity[app] = curve_for(profile, app)
            # Pressure: how hard does `app` squeeze the reporter?
            res = engine.co_run(
                self.reporter, profile, threads=threads,
                fg_solo_runtime_s=rep_solo.runtime_s,
                bg_solo_rate=cache.instruction_rate(app, threads=threads),
            )
            self.pressure[app] = self._reporter_curve.pressure_for(res.normalized_time)
        return self

    def _fit_scenarios(self, apps: tuple[str, ...], session) -> "BubbleUpPredictor":
        """Session path: one flat scenario sweep, chunked per app."""
        threads = self.config.threads
        reporter_seat = AppPlacement(self.reporter.name, threads, profile=self.reporter)
        nz_levels = [lv for lv in self.levels if lv != 0.0]
        scenarios: list[Scenario] = [
            _sensitivity_scenario(reporter_seat, lv, threads) for lv in nz_levels
        ]
        for app in apps:
            seat = AppPlacement(app, threads)
            scenarios.extend(
                _sensitivity_scenario(seat, lv, threads) for lv in nz_levels
            )
            # Pressure probe: how hard does `app` squeeze the reporter?
            scenarios.append(Scenario((reporter_seat, seat)))
        results = session.run_scenarios(
            scenarios, chunksize=max(1, len(nz_levels))
        )

        def curve(name: str, head: list) -> SensitivityCurve:
            slows, i = [], 0
            for level in self.levels:
                if level == 0.0:
                    slows.append(1.0)
                else:
                    slows.append(head[i].normalized_time)
                    i += 1
            # Enforce monotonicity (tiny fixed-point wiggles).
            mono = np.maximum.accumulate(slows)
            return SensitivityCurve(app=name, levels=self.levels, slowdowns=tuple(mono))

        k = len(nz_levels)
        self._reporter_curve = curve(self.reporter.name, results[:k])
        pos = k
        for app in apps:
            self.sensitivity[app] = curve(app, results[pos:pos + k])
            pos += k
            self.pressure[app] = self._reporter_curve.pressure_for(
                results[pos].normalized_time
            )
            pos += 1
        return self

    # -- prediction -----------------------------------------------------------

    def predict(self, fg: str, bg: str) -> float:
        """Predicted normalized execution time of fg with bg looping."""
        try:
            curve = self.sensitivity[fg]
            level = self.pressure[bg]
        except KeyError as missing:
            raise ExperimentError(f"{missing} was not fitted") from None
        return curve.slowdown_at(level)

    def predict_matrix(self, apps: tuple[str, ...] | None = None) -> dict[tuple[str, str], float]:
        """Predicted Fig 5 matrix over fitted apps."""
        apps = apps if apps is not None else tuple(self.sensitivity)
        return {(fg, bg): self.predict(fg, bg) for fg in apps for bg in apps}

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, truth: ConsolidationMatrix) -> dict[str, float]:
        """Score predictions against a ground-truth matrix.

        Returns mean absolute error, the fraction of cells within 10%,
        and the Spearman rank correlation over all cells.
        """
        from scipy.stats import spearmanr

        pred, real = [], []
        for fg in truth.workloads:
            for bg in truth.workloads:
                if fg in self.sensitivity and bg in self.pressure:
                    pred.append(self.predict(fg, bg))
                    real.append(truth.value(fg, bg))
        if not pred:
            raise ExperimentError("no overlapping cells to evaluate")
        pred_a, real_a = np.asarray(pred), np.asarray(real)
        err = np.abs(pred_a - real_a)
        rho = float(spearmanr(pred_a, real_a).statistic)
        return {
            "cells": float(len(pred)),
            "mae": float(err.mean()),
            "within_10pct": float((err <= 0.1 * real_a).mean()),
            "rank_correlation": rho,
        }


@dataclass
class PredictionReport:
    """Bubble-Up evaluation: accuracy scores + per-app pressure."""

    scores: dict[str, float]
    pressure: dict[str, float]

    def render(self) -> str:
        lines = ["Bubble-Up predictor vs engine ground truth:"]
        lines += [f"  {k}: {v:.3f}" for k, v in self.scores.items()]
        lines.append(
            "pressure scores: "
            + ", ".join(
                f"{a}={p:.2f}"
                for a, p in sorted(self.pressure.items(), key=lambda kv: -kv[1])
            )
        )
        return "\n".join(lines)


@register_runner(
    "predict",
    title="Bubble-Up prediction vs engine ground truth (extension)",
    artifact=False,
    order=120,
)
class PredictorRunner(Runner):
    """Fit the O(N) predictor and score it against the session's Fig 5."""

    def execute(self, session) -> PredictionReport:
        predictor = BubbleUpPredictor(config=session.config).fit(session=session)
        truth = session.run("fig5").result
        return PredictionReport(
            scores=predictor.evaluate(truth),
            pressure=dict(predictor.pressure),
        )

    def render(self, result: PredictionReport, **_) -> str:
        return result.render()
