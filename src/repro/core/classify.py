"""Pair-relationship classification (Section V's taxonomy).

The paper classifies a consolidation pair (A, B) by the runtime
increase each side suffers, with a 1.5x threshold:

* **Harmony** — both sides below 1.5x;
* **Victim-Offender** — exactly one side at or above 1.5x (that side is
  the victim, the other the offender);
* **Both-Victim** — both sides at or above 1.5x ("should definitely be
  avoided for cloud/warehouse-scale computing").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ExperimentError

#: The paper's slowdown threshold for calling an application a victim.
VICTIM_THRESHOLD = 1.5


class PairClass(Enum):
    """Section V's three consolidation relationships."""

    HARMONY = "Harmony"
    VICTIM_OFFENDER = "Victim-Offender"
    BOTH_VICTIM = "Both-Victim"


@dataclass(frozen=True)
class PairVerdict:
    """Classification of one (A, B) pair from both slowdowns."""

    app_a: str
    app_b: str
    slowdown_a: float
    slowdown_b: float
    relationship: PairClass

    @property
    def victim(self) -> str | None:
        """The victim in a Victim-Offender pair (None otherwise)."""
        if self.relationship is not PairClass.VICTIM_OFFENDER:
            return None
        return self.app_a if self.slowdown_a >= VICTIM_THRESHOLD else self.app_b

    @property
    def offender(self) -> str | None:
        """The offender in a Victim-Offender pair (None otherwise)."""
        victim = self.victim
        if victim is None:
            return None
        return self.app_b if victim == self.app_a else self.app_a


def classify_pair(
    app_a: str,
    app_b: str,
    slowdown_a: float,
    slowdown_b: float,
    *,
    threshold: float = VICTIM_THRESHOLD,
) -> PairVerdict:
    """Classify one pair from its two normalized execution times."""
    if slowdown_a <= 0 or slowdown_b <= 0:
        raise ExperimentError("slowdowns must be positive")
    a_victim = slowdown_a >= threshold
    b_victim = slowdown_b >= threshold
    if a_victim and b_victim:
        rel = PairClass.BOTH_VICTIM
    elif a_victim or b_victim:
        rel = PairClass.VICTIM_OFFENDER
    else:
        rel = PairClass.HARMONY
    return PairVerdict(
        app_a=app_a, app_b=app_b,
        slowdown_a=slowdown_a, slowdown_b=slowdown_b,
        relationship=rel,
    )
