"""Consolidation-relationship classification (Section V's taxonomy).

The paper classifies a consolidation pair (A, B) by the runtime
increase each side suffers, with a 1.5x threshold:

* **Harmony** — both sides below 1.5x;
* **Victim-Offender** — exactly one side at or above 1.5x (that side is
  the victim, the other the offender);
* **Both-Victim** — both sides at or above 1.5x ("should definitely be
  avoided for cloud/warehouse-scale computing").

:func:`classify_nway` generalizes the same taxonomy to N-way
consolidations measured by *foreground rotation* (every member takes a
turn as the measured foreground against the rest): an app whose own
rotation slows at or past the threshold is a **victim**; when someone
is victimized, every co-runner that stays under the threshold is an
**offender** of that consolidation.  For N = 2 the verdict reduces
exactly to the pair taxonomy (:meth:`NWayVerdict.to_pair`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.errors import ExperimentError

#: The paper's slowdown threshold for calling an application a victim.
VICTIM_THRESHOLD = 1.5


class PairClass(Enum):
    """Section V's three consolidation relationships."""

    HARMONY = "Harmony"
    VICTIM_OFFENDER = "Victim-Offender"
    BOTH_VICTIM = "Both-Victim"


@dataclass(frozen=True)
class PairVerdict:
    """Classification of one (A, B) pair from both slowdowns."""

    app_a: str
    app_b: str
    slowdown_a: float
    slowdown_b: float
    relationship: PairClass

    @property
    def victim(self) -> str | None:
        """The victim in a Victim-Offender pair (None otherwise)."""
        if self.relationship is not PairClass.VICTIM_OFFENDER:
            return None
        return self.app_a if self.slowdown_a >= VICTIM_THRESHOLD else self.app_b

    @property
    def offender(self) -> str | None:
        """The offender in a Victim-Offender pair (None otherwise)."""
        victim = self.victim
        if victim is None:
            return None
        return self.app_b if victim == self.app_a else self.app_a


def classify_pair(
    app_a: str,
    app_b: str,
    slowdown_a: float,
    slowdown_b: float,
    *,
    threshold: float = VICTIM_THRESHOLD,
) -> PairVerdict:
    """Classify one pair from its two normalized execution times."""
    if slowdown_a <= 0 or slowdown_b <= 0:
        raise ExperimentError("slowdowns must be positive")
    a_victim = slowdown_a >= threshold
    b_victim = slowdown_b >= threshold
    if a_victim and b_victim:
        rel = PairClass.BOTH_VICTIM
    elif a_victim or b_victim:
        rel = PairClass.VICTIM_OFFENDER
    else:
        rel = PairClass.HARMONY
    return PairVerdict(
        app_a=app_a, app_b=app_b,
        slowdown_a=slowdown_a, slowdown_b=slowdown_b,
        relationship=rel,
    )


@dataclass(frozen=True)
class NWayVerdict:
    """Classification of one N-way consolidation from every member's
    foreground-rotation slowdown.

    ``apps[i]`` slowed by ``slowdowns[i]`` while it was the measured
    foreground against the other N-1 members (the ``consolidate-n``
    rotation protocol).  The taxonomy is the pair one generalized:

    * ``HARMONY`` — nobody reaches the threshold;
    * ``VICTIM_OFFENDER`` — some members are victimized, the rest are
      the offenders;
    * ``BOTH_VICTIM`` — every member is a victim (the paper's
      "definitely avoid" class, at any N).
    """

    apps: tuple[str, ...]
    slowdowns: tuple[float, ...]
    relationship: PairClass
    threshold: float = VICTIM_THRESHOLD

    @property
    def victims(self) -> tuple[str, ...]:
        """Members whose own rotation reached the threshold."""
        return tuple(
            a for a, s in zip(self.apps, self.slowdowns) if s >= self.threshold
        )

    @property
    def offenders(self) -> tuple[str, ...]:
        """Members that stay under the threshold while someone else is
        victimized (empty under Harmony — nobody offends — and under
        Both-Victim — everybody is a victim first)."""
        if self.relationship is not PairClass.VICTIM_OFFENDER:
            return ()
        return tuple(
            a for a, s in zip(self.apps, self.slowdowns) if s < self.threshold
        )

    def role(self, app: str) -> str:
        """``"victim"`` / ``"offender"`` / ``"harmony"`` for one member."""
        if app not in self.apps:
            raise ExperimentError(f"{app!r} is not part of this consolidation")
        if app in self.victims:
            return "victim"
        if app in self.offenders:
            return "offender"
        return "harmony"

    def to_pair(self) -> PairVerdict:
        """The exact :class:`PairVerdict` this verdict reduces to when
        N = 2 — the equivalence that anchors the generalization."""
        if len(self.apps) != 2:
            raise ExperimentError(
                f"only 2-app verdicts reduce to PairVerdict, got {len(self.apps)}"
            )
        return classify_pair(
            self.apps[0],
            self.apps[1],
            self.slowdowns[0],
            self.slowdowns[1],
            threshold=self.threshold,
        )

    @property
    def label(self) -> str:
        """Compact render, e.g. ``Victim-Offender (victims: G-CC)``."""
        text = self.relationship.value
        if self.relationship is PairClass.VICTIM_OFFENDER:
            text += f" (victims: {', '.join(self.victims)})"
        return text


def classify_nway(
    apps: Sequence[str],
    slowdowns: Sequence[float],
    *,
    threshold: float = VICTIM_THRESHOLD,
) -> NWayVerdict:
    """Classify one N-way consolidation from per-member foreground
    slowdowns (aggregated across the rotation sweep)."""
    if len(apps) < 2:
        raise ExperimentError(
            "a consolidation verdict needs at least two apps (nobody can "
            "be a victim or offender alone)"
        )
    if len(apps) != len(slowdowns):
        raise ExperimentError(
            f"{len(apps)} apps but {len(slowdowns)} slowdowns"
        )
    if any(s <= 0 for s in slowdowns):
        raise ExperimentError("slowdowns must be positive")
    n_victims = sum(1 for s in slowdowns if s >= threshold)
    if n_victims == 0:
        rel = PairClass.HARMONY
    elif n_victims == len(apps):
        rel = PairClass.BOTH_VICTIM
    else:
        rel = PairClass.VICTIM_OFFENDER
    return NWayVerdict(
        apps=tuple(apps),
        slowdowns=tuple(float(s) for s in slowdowns),
        relationship=rel,
        threshold=threshold,
    )
