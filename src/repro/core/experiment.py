"""Shared experiment infrastructure.

Every paper experiment runs through :class:`ExperimentConfig`: which
applications, how many threads (the paper pins 4 per app), how many
repetitions (the paper runs each pair three times), and a seeded
measurement-jitter model so the repetition protocol is exercised the
way it is on real hardware.  :class:`SoloCache` memoizes solo runs —
the 625-pair sweep reuses 25 solo references instead of recomputing
them 1250 times.
"""

from __future__ import annotations

import statistics
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.engine import EngineConfig, IntervalEngine, SoloRunResult
from repro.errors import ExperimentError
from repro.machine.spec import MachineSpec, xeon_e5_4650
from repro.workloads.base import WorkloadProfile
from repro.workloads.calibration import APPLICATIONS
from repro.workloads.registry import get_profile


@dataclass
class ExperimentConfig:
    """Common knobs for all experiments."""

    threads: int = 4
    repetitions: int = 3
    #: Fractional stddev of multiplicative measurement noise applied to
    #: runtimes per repetition (0 disables the jitter model).
    jitter: float = 0.01
    seed: int = 0
    workloads: tuple[str, ...] = APPLICATIONS
    spec: MachineSpec = field(default_factory=xeon_e5_4650)
    engine_config: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ExperimentError("repetitions must be >= 1")
        if self.jitter < 0:
            raise ExperimentError("jitter must be >= 0")
        if not self.workloads:
            raise ExperimentError("need at least one workload")

    def make_engine(self) -> IntervalEngine:
        """A fresh engine honouring this config."""
        return IntervalEngine(spec=self.spec, config=self.engine_config)


class Jitter:
    """Seeded multiplicative measurement noise (the 'three runs' model).

    Constructed bare, draws come from one sequential stream seeded by
    ``config.seed``.  Constructed via :meth:`for_key`, the stream is
    derived from ``(config.seed, key)`` so each named measurement gets
    its own independent, order-free noise — the property that lets the
    parallel executor reproduce the serial sweep bit-for-bit.
    """

    def __init__(self, config: ExperimentConfig, *, key: str | None = None) -> None:
        if key is None:
            self._rng = np.random.default_rng(config.seed)
        else:
            # crc32 (not hash()) so the derivation is stable across
            # processes and interpreter runs.
            self._rng = np.random.default_rng([config.seed, zlib.crc32(key.encode())])
        self._sigma = config.jitter
        self._reps = config.repetitions

    @classmethod
    def for_key(cls, config: ExperimentConfig, *parts: object) -> "Jitter":
        """Jitter stream for one named measurement (e.g. a Fig 5 cell)."""
        return cls(config, key="|".join(str(p) for p in parts))

    def measure(self, true_value: float) -> float:
        """Median of ``repetitions`` noisy observations of a value."""
        if self._sigma == 0 or true_value == 0:
            return true_value
        obs = true_value * (1.0 + self._rng.normal(0.0, self._sigma, self._reps))
        return float(statistics.median(obs))


class SoloCache:
    """Memoized solo runs keyed by (workload, threads)."""

    def __init__(self, engine: IntervalEngine) -> None:
        self.engine = engine
        self._cache: dict[tuple[str, int], SoloRunResult] = {}

    def get(self, name: str, *, threads: int, profile: WorkloadProfile | None = None) -> SoloRunResult:
        """Solo result for one workload at a thread count."""
        key = (name, threads)
        if key not in self._cache:
            prof = profile if profile is not None else get_profile(name)
            self._cache[key] = self.engine.solo_run(prof, threads=threads)
        return self._cache[key]

    def runtime(self, name: str, *, threads: int) -> float:
        """Solo runtime (seconds)."""
        return self.get(name, threads=threads).runtime_s

    def instruction_rate(self, name: str, *, threads: int) -> float:
        """Solo instruction throughput (instructions / second)."""
        res = self.get(name, threads=threads)
        return res.metrics.total.instructions / res.runtime_s
