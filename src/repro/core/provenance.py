"""Experiment: provenance of interference (Section VI; Figs 7-8, Table IV).

Deep-dives into *why* victims slow down: the VTune-analogue attributes
CPI, L2_PCP, LLC MPKI and LL to each application's hot region, solo vs
co-running with chosen aggressors.

* Fig 7 — the five GeminiGraph apps against STREAM;
* Fig 8 — the same apps against the three real offenders (IRSmk,
  fotonik3d, CIFAR);
* Table IV — region-level profiles of P-PR's ``gather`` and fotonik3d's
  ``UUS`` under each other's offenders (and the harmless G-SSSP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.engine.results import RegionMetrics
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.tools.vtune import VtuneProfiler
from repro.workloads.registry import get_profile

#: Fig 7/8 foreground set.
GEMINI_APPS: tuple[str, ...] = ("G-SSSP", "G-PR", "G-CC", "G-BC", "G-BFS")
#: Fig 8's offender backgrounds.
OFFENDERS: tuple[str, ...] = ("IRSmk", "fotonik3d", "CIFAR")
#: Table IV's subjects: (fg app, region, backgrounds).
TABLE4_SUBJECTS: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("P-PR", "gather", ("IRSmk", "CIFAR", "fotonik3d")),
    ("fotonik3d", "UUS", ("IRSmk", "CIFAR", "G-SSSP")),
)


@dataclass(frozen=True)
class MetricQuad:
    """The four metrics the paper profiles (Section VI-A)."""

    cpi: float
    l2_pcp: float
    llc_mpki: float
    ll: float

    @staticmethod
    def from_region(rm: RegionMetrics) -> "MetricQuad":
        return MetricQuad(cpi=rm.cpi, l2_pcp=rm.l2_pcp, llc_mpki=rm.llc_mpki, ll=rm.ll)


@dataclass
class ProvenanceResult:
    """Metric quads per (fg app, background) cell; 'solo' = no neighbour."""

    #: (app, background-or-'solo') -> hot-region metrics.
    cells: dict[tuple[str, str], MetricQuad] = field(default_factory=dict)
    #: app -> profiled region name.
    regions: dict[str, str] = field(default_factory=dict)

    def quad(self, app: str, background: str = "solo") -> MetricQuad:
        try:
            return self.cells[(app, background)]
        except KeyError:
            raise ExperimentError(f"no cell ({app}, {background})") from None

    def inflation(self, app: str, background: str) -> MetricQuad:
        """Co-run / solo ratios for the four metrics."""
        s, c = self.quad(app), self.quad(app, background)
        return MetricQuad(
            cpi=c.cpi / s.cpi if s.cpi else float("inf"),
            l2_pcp=c.l2_pcp / s.l2_pcp if s.l2_pcp else float("inf"),
            llc_mpki=c.llc_mpki / s.llc_mpki if s.llc_mpki else float("inf"),
            ll=c.ll / s.ll if s.ll else float("inf"),
        )

    def render(self, title: str) -> str:
        headers = ["app (region)", "neighbour", "CPI", "L2_PCP", "LLC MPKI", "LL"]
        rows = []
        for (app, bg), q in sorted(self.cells.items()):
            rows.append(
                [f"{app} ({self.regions[app]})", bg, q.cpi,
                 round(100 * q.l2_pcp, 1), q.llc_mpki, q.ll]
            )
        return ascii_table(headers, rows, title=title)


def _profile_cells(
    session,
    subjects: tuple[tuple[str, str, tuple[str, ...]], ...],
) -> ProvenanceResult:
    """Profile hot regions solo and under each background, through the
    session's shared solo/co-run caches (Fig 8's offender co-runs are
    free once the Fig 5 sweep ran)."""
    threads = session.config.threads
    vtune = VtuneProfiler()
    result = ProvenanceResult()
    for app, region, backgrounds in subjects:
        solo = session.solo(app, threads=threads)
        if region not in solo.metrics.by_region:
            raise ExperimentError(f"{app} has no region {region!r}")
        result.regions[app] = region
        result.cells[(app, "solo")] = MetricQuad.from_region(
            solo.metrics.by_region[region]
        )
        for bg in backgrounds:
            co = session.co_run(app, bg, threads=threads)
            result.cells[(app, bg)] = MetricQuad.from_region(
                co.fg.by_region[region]
            )
        # Sanity: the profiled region must be the app's hotspot.
        top = vtune.top_hotspot(solo.metrics)
        if top.region != region and top.cycles_share > 0.6:
            raise ExperimentError(
                f"{app}: hotspot is {top.region!r}, expected {region!r}"
            )
    return result


def _gemini_subjects(backgrounds: tuple[str, ...]) -> tuple[tuple[str, str, tuple[str, ...]], ...]:
    return tuple(
        (app, get_profile(app).dominant_region.region.name, backgrounds)
        for app in GEMINI_APPS
    )


@register_runner("fig7", title="Gemini metrics under STREAM", order=80)
class GeminiVsStreamRunner(Runner):
    """Fig 7: GeminiGraph applications co-running with STREAM."""

    def execute(self, session) -> ProvenanceResult:
        return _profile_cells(session, _gemini_subjects(("Stream",)))

    def render(self, result: ProvenanceResult, **_) -> str:
        return result.render("Fig 7: Gemini applications co-running with Stream")


@register_runner("fig8", title="Gemini metrics under real offenders", order=81)
class GeminiVsOffendersRunner(Runner):
    """Fig 8: GeminiGraph applications vs IRSmk / fotonik3d / CIFAR."""

    def execute(self, session) -> ProvenanceResult:
        return _profile_cells(session, _gemini_subjects(OFFENDERS))

    def render(self, result: ProvenanceResult, **_) -> str:
        return result.render("Fig 8: Gemini applications co-running with offenders")


@register_runner("table4", title="region-level profiles (gather / UUS)", order=90)
class Table4Runner(Runner):
    """Table IV: P-PR (gather) and fotonik3d (UUS) region profiles."""

    def execute(self, session) -> ProvenanceResult:
        return _profile_cells(session, TABLE4_SUBJECTS)

    def render(self, result: ProvenanceResult, **_) -> str:
        return result.render("Table IV: profiling results of P-PR and fotonik3d")


def run_gemini_vs_stream(config: ExperimentConfig | None = None) -> ProvenanceResult:
    """Fig 7 (thin wrapper over ``Session.run("fig7")``)."""
    from repro.session import Session

    return Session(config).run("fig7").result


def run_gemini_vs_offenders(config: ExperimentConfig | None = None) -> ProvenanceResult:
    """Fig 8 (thin wrapper over ``Session.run("fig8")``)."""
    from repro.session import Session

    return Session(config).run("fig8").result


def run_table4(config: ExperimentConfig | None = None) -> ProvenanceResult:
    """Table IV (thin wrapper over ``Session.run("table4")``)."""
    from repro.session import Session

    return Session(config).run("table4").result
