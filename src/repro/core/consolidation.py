"""Experiment: the 625-pair consolidation sweep (Fig 5).

Every application is paired with every application (including itself),
foreground x background, 4+4 exclusive cores.  The background loops
for as long as the foreground runs; the cell value is the foreground's
execution time normalized to its solo run — exactly Fig 5's heat map.
The symmetric classification of Section V derives from the matrix:
pair (A, B)'s two slowdowns are cell (A, B) and cell (B, A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import PairClass, PairVerdict, classify_pair
from repro.core.experiment import ExperimentConfig, Jitter, SoloCache
from repro.core.report import csv_table, text_heatmap
from repro.errors import ExperimentError
from repro.workloads.registry import get_profile


@dataclass
class ConsolidationMatrix:
    """Fig 5: normalized foreground times for all fg x bg pairs."""

    workloads: tuple[str, ...]
    #: (foreground, background) -> normalized execution time.
    cells: dict[tuple[str, str], float] = field(default_factory=dict)

    def value(self, fg: str, bg: str) -> float:
        try:
            return self.cells[(fg, bg)]
        except KeyError:
            raise ExperimentError(f"no cell for fg={fg!r} bg={bg!r}") from None

    def classify(self, app_a: str, app_b: str) -> PairVerdict:
        """Section V relationship of the unordered pair (A, B)."""
        return classify_pair(
            app_a, app_b, self.value(app_a, app_b), self.value(app_b, app_a)
        )

    def classification_counts(self) -> dict[PairClass, int]:
        """How many unordered pairs fall in each relationship."""
        counts = {c: 0 for c in PairClass}
        apps = self.workloads
        for i, a in enumerate(apps):
            for b in apps[i + 1 :]:
                counts[self.classify(a, b).relationship] += 1
        return counts

    def victims_of(self, offender: str, *, threshold: float = 1.5) -> list[str]:
        """Foreground apps slowed >= threshold by this background app."""
        return sorted(
            fg for fg in self.workloads
            if fg != offender and self.value(fg, offender) >= threshold
        )

    def friendly_backgrounds(self, *, limit: float = 1.1) -> list[str]:
        """Backgrounds that never slow any foreground beyond ``limit``
        (the paper's swaptions/nab/deepsjeng/blackscholes set)."""
        return sorted(
            bg for bg in self.workloads
            if all(self.value(fg, bg) <= limit for fg in self.workloads)
        )

    def render_fig5(self) -> str:
        return text_heatmap(
            self.cells, list(self.workloads), list(self.workloads)
        )

    def to_csv(self) -> str:
        headers = ["fg\\bg"] + list(self.workloads)
        rows = [
            [fg] + [self.cells[(fg, bg)] for bg in self.workloads]
            for fg in self.workloads
        ]
        return csv_table(headers, rows)


def run_consolidation(
    config: ExperimentConfig | None = None,
    *,
    foregrounds: tuple[str, ...] | None = None,
    backgrounds: tuple[str, ...] | None = None,
) -> ConsolidationMatrix:
    """Run the Fig 5 sweep (subsets allowed for quick looks)."""
    config = config if config is not None else ExperimentConfig()
    fgs = foregrounds if foregrounds is not None else config.workloads
    bgs = backgrounds if backgrounds is not None else config.workloads
    engine = config.make_engine()
    cache = SoloCache(engine)
    jitter = Jitter(config)
    matrix = ConsolidationMatrix(workloads=tuple(dict.fromkeys(fgs + bgs)))
    profiles = {name: get_profile(name) for name in matrix.workloads}
    for fg in fgs:
        fg_solo = cache.runtime(fg, threads=config.threads)
        for bg in bgs:
            res = engine.co_run(
                profiles[fg],
                profiles[bg],
                threads=config.threads,
                fg_solo_runtime_s=fg_solo,
                bg_solo_rate=cache.instruction_rate(bg, threads=config.threads),
            )
            measured = jitter.measure(res.fg.runtime_s)
            matrix.cells[(fg, bg)] = measured / fg_solo
    return matrix
