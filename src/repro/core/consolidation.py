"""Experiment: the 625-pair consolidation sweep (Fig 5).

Every application is paired with every application (including itself),
foreground x background, 4+4 exclusive cores.  The background loops
for as long as the foreground runs; the cell value is the foreground's
execution time normalized to its solo run — exactly Fig 5's heat map.
The symmetric classification of Section V derives from the matrix:
pair (A, B)'s two slowdowns are cell (A, B) and cell (B, A).

The sweep runs through the :class:`~repro.session.session.Session`
substrate: solo references and co-runs are shared with every other
artifact, measurement jitter is keyed per cell, and the independent
matrix rows fan out over the session's executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import PairClass, PairVerdict, classify_pair
from repro.core.experiment import ExperimentConfig, Jitter
from repro.core.report import csv_table, text_heatmap
from repro.errors import ExperimentError
from repro.session.base import Runner
from repro.session.registry import register_runner
from repro.session.scenario import ScenarioSet


@dataclass
class ConsolidationMatrix:
    """Fig 5: normalized foreground times for all fg x bg pairs."""

    workloads: tuple[str, ...]
    #: (foreground, background) -> normalized execution time.
    cells: dict[tuple[str, str], float] = field(default_factory=dict)

    def value(self, fg: str, bg: str) -> float:
        try:
            return self.cells[(fg, bg)]
        except KeyError:
            raise ExperimentError(f"no cell for fg={fg!r} bg={bg!r}") from None

    def classify(self, app_a: str, app_b: str) -> PairVerdict:
        """Section V relationship of the unordered pair (A, B)."""
        return classify_pair(
            app_a, app_b, self.value(app_a, app_b), self.value(app_b, app_a)
        )

    def classification_counts(self) -> dict[PairClass, int]:
        """How many unordered pairs fall in each relationship."""
        counts = {c: 0 for c in PairClass}
        apps = self.workloads
        for i, a in enumerate(apps):
            for b in apps[i + 1 :]:
                counts[self.classify(a, b).relationship] += 1
        return counts

    def victims_of(self, offender: str, *, threshold: float = 1.5) -> list[str]:
        """Foreground apps slowed >= threshold by this background app."""
        return sorted(
            fg for fg in self.workloads
            if fg != offender and self.value(fg, offender) >= threshold
        )

    def friendly_backgrounds(self, *, limit: float = 1.1) -> list[str]:
        """Backgrounds that never slow any foreground beyond ``limit``
        (the paper's swaptions/nab/deepsjeng/blackscholes set)."""
        return sorted(
            bg for bg in self.workloads
            if all(self.value(fg, bg) <= limit for fg in self.workloads)
        )

    def render_fig5(self) -> str:
        return text_heatmap(
            self.cells, list(self.workloads), list(self.workloads)
        )

    def to_csv(self) -> str:
        headers = ["fg\\bg"] + list(self.workloads)
        rows = [
            [fg] + [self.cells[(fg, bg)] for bg in self.workloads]
            for fg in self.workloads
        ]
        return csv_table(headers, rows)


def cell_value(
    config: ExperimentConfig,
    fg: str,
    bg: str,
    *,
    fg_runtime_s: float,
    fg_solo_runtime_s: float,
    threads: int,
    bg_threads: int,
) -> float:
    """One Fig 5 cell: jittered co-run time normalized to the solo run.

    The jitter stream is keyed by the cell coordinates, so the value is
    identical whether the cell is computed in a serial loop, a worker
    process, or as part of a different foreground subset.
    """
    measured = Jitter.for_key(config, "cell", fg, bg, threads, bg_threads).measure(
        fg_runtime_s
    )
    return measured / fg_solo_runtime_s


@register_runner("fig5", title="625-pair consolidation heat map", order=50)
class ConsolidationRunner(Runner):
    """Fig 5 through the session substrate (subsets allowed).

    The matrix is one :class:`~repro.session.scenario.ScenarioSet`
    pairwise product; uncached cells fan out over the session executor
    through the generic scenario machinery and land in the shared
    co-run cache, so later artifacts (Table III, Figs 7-8) reuse them
    like any serial measurement.
    """

    def execute(
        self,
        session,
        *,
        foregrounds: tuple[str, ...] | None = None,
        backgrounds: tuple[str, ...] | None = None,
    ) -> ConsolidationMatrix:
        config = session.config
        fgs = tuple(foregrounds) if foregrounds is not None else config.workloads
        bgs = tuple(backgrounds) if backgrounds is not None else config.workloads
        matrix = ConsolidationMatrix(workloads=tuple(dict.fromkeys(fgs + bgs)))
        threads = config.threads
        # Foreground solo references resolve through the shared cache
        # (cell_value normalizes against them); background rates are
        # resolved on demand by the scenario planner, and only for
        # cells the caches do not already hold.
        fg_solos = {fg: session.solo_runtime(fg, threads=threads) for fg in fgs}
        sweep = ScenarioSet.pairwise(fgs, bgs, threads=threads)
        for scenario, sres in zip(sweep, session.run_scenarios(sweep)):
            fg, bg = (p.workload for p in scenario.placements)
            matrix.cells[(fg, bg)] = cell_value(
                config,
                fg,
                bg,
                fg_runtime_s=sres.result.fg.runtime_s,
                fg_solo_runtime_s=fg_solos[fg],
                threads=threads,
                bg_threads=threads,
            )
        return matrix

    def render(self, result: ConsolidationMatrix, *, csv: bool = False, **_) -> str:
        if csv:
            return result.to_csv()
        counts = result.classification_counts()
        return "\n".join(
            [
                result.render_fig5(),
                "pair relationships: "
                + ", ".join(f"{k.value}={v}" for k, v in counts.items()),
                "friendly backgrounds (<=1.1x to all): "
                + ", ".join(result.friendly_backgrounds()),
            ]
        )

    def encode(self, result: ConsolidationMatrix) -> dict:
        return {
            "workloads": list(result.workloads),
            "cells": [[fg, bg, v] for (fg, bg), v in result.cells.items()],
        }

    def decode(self, payload: dict) -> ConsolidationMatrix:
        matrix = ConsolidationMatrix(workloads=tuple(payload["workloads"]))
        matrix.cells = {(fg, bg): v for fg, bg, v in payload["cells"]}
        return matrix


def run_consolidation(
    config: ExperimentConfig | None = None,
    *,
    foregrounds: tuple[str, ...] | None = None,
    backgrounds: tuple[str, ...] | None = None,
) -> ConsolidationMatrix:
    """Run the Fig 5 sweep (thin wrapper over ``Session.run("fig5")``)."""
    from repro.session import Session

    return Session(config).run(
        "fig5", foregrounds=foregrounds, backgrounds=backgrounds
    ).result
