"""Experiment: the consolidation energy/throughput trade-off.

The paper's Section I motivation, quantified: for a pair (A, B),
compare

* **time-shared** execution — A then B, each alone on the machine
  (the other half of the machine idle but powered);
* **consolidated** execution — A and B co-run 4+4 cores until both
  work amounts finish.

and report the energy saved and the slowdown paid.  Harmony pairs save
nearly the whole static-power overlap; Both-Victim pairs burn the
savings in stretched runtimes — the quantitative version of "Harmony
is the most preferable relationship" (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.core.report import ascii_table
from repro.errors import ExperimentError
from repro.machine.energy import EnergySpec, energy_of_window
from repro.session.base import Runner
from repro.session.registry import register_runner


@dataclass(frozen=True)
class EfficiencyRow:
    """One pair's time-shared vs consolidated comparison."""

    app_a: str
    app_b: str
    timeshared_seconds: float
    consolidated_seconds: float
    timeshared_joules: float
    consolidated_joules: float

    @property
    def energy_saving(self) -> float:
        """Fractional energy saved by consolidating (can be negative)."""
        if self.timeshared_joules == 0:
            return 0.0
        return 1.0 - self.consolidated_joules / self.timeshared_joules

    @property
    def makespan_change(self) -> float:
        """Consolidated / time-shared wall-clock (lower is better)."""
        if self.timeshared_seconds == 0:
            return 0.0
        return self.consolidated_seconds / self.timeshared_seconds


@dataclass
class EfficiencyResult:
    """Energy/throughput outcomes per evaluated pair."""

    rows: list[EfficiencyRow] = field(default_factory=list)

    def row(self, app_a: str, app_b: str) -> EfficiencyRow:
        for r in self.rows:
            if (r.app_a, r.app_b) == (app_a, app_b):
                return r
        raise KeyError((app_a, app_b))

    def render(self) -> str:
        headers = ["pair", "time-shared s", "consolidated s",
                   "makespan", "energy saving"]
        rows = [
            [f"{r.app_a}+{r.app_b}", r.timeshared_seconds, r.consolidated_seconds,
             f"{r.makespan_change:.2f}x", f"{100 * r.energy_saving:.1f}%"]
            for r in self.rows
        ]
        return ascii_table(
            headers, rows,
            title="Consolidation efficiency: time-shared vs co-run",
        )


@register_runner(
    "efficiency",
    title="consolidation energy/throughput trade-off (extension)",
    artifact=False,
    order=130,
)
class EfficiencyRunner(Runner):
    """Time-shared vs consolidated comparison through the session."""

    def execute(
        self,
        session,
        *,
        pairs: tuple[tuple[str, str], ...] | None = None,
        energy: EnergySpec | None = None,
    ) -> EfficiencyResult:
        config = session.config
        if pairs is None:
            apps = config.workloads
            pairs = tuple(
                (apps[i], apps[i + 1]) for i in range(0, len(apps) - 1, 2)
            )
        if not pairs:
            raise ExperimentError("need at least two workloads (--workloads a,b)")
        energy = energy if energy is not None else EnergySpec()
        result = EfficiencyResult()
        threads = config.threads
        for a, b in pairs:
            solo_a = session.solo(a, threads=threads)
            solo_b = session.solo(b, threads=threads)
            # Time-shared: A then B, each alone.
            ts_seconds = solo_a.runtime_s + solo_b.runtime_s
            ts_energy = energy_of_window(
                energy,
                duration_s=ts_seconds,
                busy_core_seconds=(solo_a.runtime_s + solo_b.runtime_s) * threads,
                bus_bytes=solo_a.metrics.total.bus_bytes + solo_b.metrics.total.bus_bytes,
            ).total_j

            # Consolidated: co-run; B's remainder finishes alone after A.
            co = session.co_run(a, b, threads=threads)
            overlap = co.fg.runtime_s
            b_total_instr = solo_b.metrics.total.instructions
            b_done = min(co.bg.total.instructions, b_total_instr)
            b_rate_solo = session.solo_rate(b, threads=threads)
            tail = max(0.0, (b_total_instr - b_done) / b_rate_solo)
            co_seconds = overlap + tail
            co_bus_bytes = (
                co.fg.total.bus_bytes
                + co.bg.total.bus_bytes * (b_done / max(co.bg.total.instructions, 1.0))
                + solo_b.metrics.total.bus_bytes * (tail / max(solo_b.runtime_s, 1e-12))
            )
            co_energy = energy_of_window(
                energy,
                duration_s=co_seconds,
                busy_core_seconds=overlap * 2 * threads + tail * threads,
                bus_bytes=co_bus_bytes,
            ).total_j

            result.rows.append(
                EfficiencyRow(
                    app_a=a, app_b=b,
                    timeshared_seconds=ts_seconds,
                    consolidated_seconds=co_seconds,
                    timeshared_joules=ts_energy,
                    consolidated_joules=co_energy,
                )
            )
        return result

    def render(self, result: EfficiencyResult, **_) -> str:
        return result.render()


def run_efficiency(
    pairs: tuple[tuple[str, str], ...],
    config: ExperimentConfig | None = None,
    energy: EnergySpec | None = None,
) -> EfficiencyResult:
    """Evaluate the consolidation trade-off (wrapper over ``Session.run``)."""
    from repro.session import Session

    return Session(config).run("efficiency", pairs=pairs, energy=energy).result
