"""A deliberately small HTTP/1.1 layer over asyncio streams.

The service tier speaks JSON over HTTP, but the container bakes in
nothing beyond the standard library — so instead of gating the daemon
on aiohttp, this module implements the ~5% of HTTP the daemon and its
client actually exchange:

* requests and responses carry ``Content-Length`` bodies (or none);
* every exchange is one request, one response, ``Connection: close`` —
  the drain's replay loop is sequential anyway, and one-shot
  connections keep both ends trivially correct;
* the single streaming endpoint (``GET /events``) is Server-Sent
  Events: a ``text/event-stream`` response whose body is an unbounded
  sequence of ``event:``/``data:`` frames, terminated by the peer
  closing the connection.

Nothing here knows about schedulers; :mod:`repro.serve.daemon` routes,
:mod:`repro.serve.client` consumes.  Malformed traffic raises
:class:`~repro.errors.ServeError` rather than tearing the loop down.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ServeError

__all__ = [
    "Request",
    "json_response",
    "read_request",
    "read_response",
    "request_bytes",
    "response_bytes",
    "sse_event",
    "sse_preamble",
]

#: Reason phrases for the handful of statuses the daemon emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}

#: Hard cap on request/response bodies (the biggest legitimate payload,
#: a long replay's decision log, is well under 1 MiB).
MAX_BODY = 16 * 1024 * 1024


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (``None`` for an empty body)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None


async def _read_head(reader: asyncio.StreamReader) -> "list[str] | None":
    """Start-line + header lines, or ``None`` on a cleanly closed peer."""
    lines: list[str] = []
    while True:
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ServeError("oversized header line") from None
        if not raw:
            if lines:
                raise ServeError("connection closed mid-headers")
            return None
        line = raw.decode("latin-1").rstrip("\r\n")
        if not line:
            return lines
        lines.append(line)


def _parse_headers(lines: "list[str]") -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise ServeError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY:
        raise ServeError(f"unreasonable content-length {length}")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ServeError("connection closed mid-body") from None


async def read_request(reader: asyncio.StreamReader) -> "Request | None":
    """Parse one request; ``None`` when the peer closed before sending."""
    head = await _read_head(reader)
    if head is None:
        return None
    parts = head[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServeError(f"malformed request line {head[0]!r}")
    method, target, _ = parts
    split = urlsplit(target)
    headers = _parse_headers(head[1:])
    body = await _read_body(reader, headers)
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
) -> bytes:
    """One complete ``Connection: close`` response."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


def json_response(status: int, payload: Any) -> bytes:
    """A canonical-JSON response: ``sort_keys`` so responses for equal
    payloads are byte-identical (the drain's determinism contract rides
    on JSON's exact float round-trip)."""
    return response_bytes(
        status, json.dumps(payload, sort_keys=True).encode("utf-8")
    )


def request_bytes(
    method: str, path: str, payload: Any = None, *, host: str = "daemon"
) -> bytes:
    """One complete client request (JSON body when ``payload`` given)."""
    body = (
        json.dumps(payload, sort_keys=True).encode("utf-8")
        if payload is not None
        else b""
    )
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


async def read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Parse one response: ``(status, headers, body)``."""
    head = await _read_head(reader)
    if head is None:
        raise ServeError("connection closed before any response")
    parts = head[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ServeError(f"malformed status line {head[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ServeError(f"malformed status line {head[0]!r}") from None
    headers = _parse_headers(head[1:])
    body = await _read_body(reader, headers)
    return status, headers, body


# -- server-sent events ------------------------------------------------------


def sse_preamble() -> bytes:
    """Response head opening an event stream (no Content-Length — the
    body ends when the connection does)."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-store\r\n"
        b"Connection: close\r\n\r\n"
    )


def sse_event(payload: Any, *, event: "str | None" = None) -> bytes:
    """One SSE frame: optional ``event:`` name plus a JSON ``data:`` line."""
    data = json.dumps(payload, sort_keys=True)
    frame = f"event: {event}\n" if event else ""
    return (frame + f"data: {data}\n\n").encode("utf-8")
